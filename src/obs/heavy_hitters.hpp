// Per-key and per-range load attribution: a Space-Saving heavy-hitter
// sketch and a fixed-fanout id-range heat map.
//
// Live resharding (ROADMAP item 1) needs to know WHERE the load lands,
// not just how much of it there is. Two complementary views:
//
//   • SpaceSavingSketch — "which exact keys are hot". The classic
//     Space-Saving algorithm (Metwally et al.): a fixed table of
//     `capacity` (key, count, error) entries; an unseen key arriving at a
//     full table evicts the minimum-count entry and inherits its count as
//     its error bound. Guarantees, per stripe: every key with true
//     frequency > N/capacity is in the table, and every entry
//     overestimates its true count by at most its `error` field, itself
//     ≤ N/capacity (N = keys offered to that stripe). Both bounds are
//     pinned by obs_test. Lock-striped: keys hash-partition across
//     `stripes` independent tables (one mutex each), so concurrent
//     recorders contend 1/stripes as often and per-key counts stay exact
//     within their stripe.
//
//   • RangeHeatMap — "which contiguous id ranges are hot". A fixed
//     fanout of `buckets` equal-width bins over the shard's [row_begin,
//     row_end) slice, one relaxed atomic add per record. Merged per-range
//     counts over a known interval are per-range QPS — exactly the
//     split/merge input live resharding needs.
//
// Merge contract (both): snapshots merge by exact integer addition keyed
// by key (sketch) or by [row_begin, row_end) range (heat map), then
// canonical sort — commutative, associative, and bit-identical in any
// merge order, the same discipline as HistogramSnapshot. A merged sketch
// may hold more than `capacity` entries (union of the inputs); its
// per-entry `error` fields stay authoritative because errors add too.
// Consumers that want a top-k view call SketchSnapshot::top(k).
//
// Cluster note: backends record LOCAL row ids. ClusterClient::heat()
// shifts each shard's sketch keys and heat ranges by the shard's global
// row_begin before merging, so the fleet view is in global id space.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace anchor::obs {

/// One sketch entry: `count` overestimates the key's true frequency by at
/// most `error` (the minimum count it inherited when it entered the
/// table; 0 for keys present since their first occurrence).
struct HeavyHitter {
  std::uint64_t key = 0;
  std::uint64_t count = 0;
  std::uint64_t error = 0;
};

/// Plain-value copy of a sketch: what the HEAT RPC carries and the router
/// merges. Entries are canonically sorted (count desc, key asc).
struct SketchSnapshot {
  std::uint64_t capacity = 0;  // tightest contributing capacity (merge: min)
  std::uint64_t total = 0;     // N: total key occurrences offered
  std::vector<HeavyHitter> entries;

  /// Exact merge: union of keys with count and error added, total added,
  /// capacity = min of the nonzero capacities, then canonical re-sort.
  /// Commutative and associative — bit-identical in any merge order.
  void merge(const SketchSnapshot& other);

  /// First k entries of the canonical order.
  std::vector<HeavyHitter> top(std::size_t k) const;
};

class SpaceSavingSketch {
 public:
  struct Config {
    /// Total entry budget, split evenly across stripes. The documented
    /// per-stripe error bound is N_stripe / (capacity / stripes).
    std::size_t capacity = 512;
    std::size_t stripes = 8;
  };

  explicit SpaceSavingSketch(Config config);
  SpaceSavingSketch(const SpaceSavingSketch&) = delete;
  SpaceSavingSketch& operator=(const SpaceSavingSketch&) = delete;

  /// Records `n` occurrences of `key`. Takes the key's stripe mutex.
  void offer(std::uint64_t key, std::uint64_t n = 1);

  /// Consistent per stripe (each stripe snapshots under its mutex);
  /// cross-stripe skew is bounded by in-flight offers, same discipline
  /// as ServeStats counters.
  SketchSnapshot snapshot() const;

  void reset();

  std::size_t stripe_capacity() const { return stripe_capacity_; }

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, std::size_t> index;  // key → entry
    std::vector<HeavyHitter> entries;
    std::uint64_t total = 0;
  };

  std::size_t stripe_capacity_ = 0;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

/// One contiguous id range's heat buckets: `buckets[i]` counts records in
/// the i-th of buckets.size() equal-width bins over [row_begin, row_end).
struct HeatRange {
  std::uint64_t row_begin = 0;
  std::uint64_t row_end = 0;
  std::vector<std::uint64_t> buckets;
};

/// Plain-value heat map: one range per recorder slice, sorted by
/// (row_begin, row_end). Replica merges add same-range buckets; shard
/// merges concatenate disjoint ranges — both exact integer operations.
struct HeatMapSnapshot {
  std::uint64_t total = 0;
  std::uint64_t elapsed_us = 0;  // recorder uptime at capture (merge: max)
  std::vector<HeatRange> ranges;

  /// Exact merge: identical [row_begin, row_end) ranges add bucket-wise
  /// (bucket fanouts must match — throws otherwise); distinct ranges
  /// insert in canonical order. Commutative, associative, bit-identical.
  void merge(const HeatMapSnapshot& other);

  /// Adds `shift` to every range bound — how ClusterClient lifts a
  /// backend's local-id heat map into global id space.
  void shift_rows(std::uint64_t shift);

  /// Σ buckets of the range covering global row `row`, 0 if uncovered.
  std::uint64_t range_total(std::uint64_t row) const;
};

class RangeHeatMap {
 public:
  struct Config {
    std::uint64_t row_begin = 0;
    std::uint64_t row_end = 0;  // ids ≥ row_end clamp into the last bucket
    std::size_t buckets = 256;
  };

  explicit RangeHeatMap(Config config);
  RangeHeatMap(const RangeHeatMap&) = delete;
  RangeHeatMap& operator=(const RangeHeatMap&) = delete;

  /// One relaxed atomic add; ids outside the range clamp to the edge
  /// bins (an OOV-synthesized id is still load on this shard).
  void record(std::uint64_t id, std::uint64_t n = 1);

  HeatMapSnapshot snapshot() const;
  HeatMapSnapshot snapshot_at(std::uint64_t now_us) const;

  const Config& config() const { return config_; }

 private:
  Config config_;
  std::uint64_t start_us_ = 0;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> total_{0};
};

/// The two per-key recorders behind one pointer, so serving layers
/// (LookupService, ClusterClient) attribute load with a single hook.
struct KeyLoadRecorder {
  SpaceSavingSketch sketch;
  RangeHeatMap heat;

  KeyLoadRecorder(SpaceSavingSketch::Config sketch_config,
                  RangeHeatMap::Config heat_config)
      : sketch(sketch_config), heat(heat_config) {}

  void record(std::uint64_t id, std::uint64_t n = 1) {
    sketch.offer(id, n);
    heat.record(id, n);
  }
  void record_ids(const std::size_t* ids, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      record(static_cast<std::uint64_t>(ids[i]));
    }
  }
};

}  // namespace anchor::obs
