#include "text/latent_space.hpp"

#include <cmath>

namespace anchor::text {

LatentSpace::LatentSpace(const LatentSpaceConfig& config) : config_(config) {
  ANCHOR_CHECK_GT(config.vocab_size, 0u);
  ANCHOR_CHECK_GT(config.latent_dim, 0u);
  ANCHOR_CHECK_GT(config.num_topics, 0u);
  Rng rng(config.seed);

  topic_centers_ = la::Matrix(config.num_topics, config.latent_dim);
  for (std::size_t k = 0; k < config.num_topics; ++k) {
    for (std::size_t j = 0; j < config.latent_dim; ++j) {
      topic_centers_(k, j) = rng.normal(0.0, 1.0);
    }
  }

  word_vectors_ = la::Matrix(config.vocab_size, config.latent_dim);
  word_topics_.resize(config.vocab_size);
  for (std::size_t w = 0; w < config.vocab_size; ++w) {
    const std::size_t topic = rng.index(config.num_topics);
    word_topics_[w] = topic;
    for (std::size_t j = 0; j < config.latent_dim; ++j) {
      word_vectors_(w, j) =
          topic_centers_(topic, j) + rng.normal(0.0, config.topic_spread);
    }
  }

  unigram_prior_.resize(config.vocab_size);
  for (std::size_t w = 0; w < config.vocab_size; ++w) {
    unigram_prior_[w] =
        1.0 / std::pow(static_cast<double>(w) + 1.0, config.zipf_exponent);
  }
}

LatentSpace LatentSpace::drifted(double drift, std::uint64_t drift_seed,
                                 double doc_fraction_delta) const {
  ANCHOR_CHECK_GE(drift, 0.0);
  LatentSpace next = *this;
  Rng rng(drift_seed ^ 0xd1f7ed5eedULL);
  for (std::size_t w = 0; w < vocab_size(); ++w) {
    for (std::size_t j = 0; j < latent_dim(); ++j) {
      next.word_vectors_(w, j) += rng.normal(0.0, drift);
    }
  }
  next.doc_fraction_delta_ = doc_fraction_delta;
  return next;
}

}  // namespace anchor::text
