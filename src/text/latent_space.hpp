// Latent semantic ground truth shared by the corpus generator and the
// synthetic downstream tasks.
//
// The paper trains embeddings on Wiki'17 and Wiki'18 — two corpora whose
// co-occurrence statistics share latent semantic structure but differ by a
// year of edits. We reproduce that stimulus with an explicit generative
// model: every word w has a ground-truth vector g_w ∈ R^D drawn around one
// of K topic centers, plus a Zipf unigram prior. A "next year" corpus is
// generated from a *drifted* copy of the same space (g_w + ε) with extra
// documents, which is precisely the small-training-data-change regime whose
// downstream effect the paper studies.
//
// The same latent vectors also generate task labels (sentiment direction,
// NER gazetteer clusters), so downstream tasks are learnable from any
// embedding that recovers the co-occurrence structure — mirroring how real
// NLP tasks are learnable from distributional embeddings.
#pragma once

#include <cstdint>
#include <vector>

#include "la/matrix.hpp"
#include "util/rng.hpp"

namespace anchor::text {

struct LatentSpaceConfig {
  std::size_t vocab_size = 2000;
  std::size_t latent_dim = 24;   // D: rank of the ground-truth structure
  std::size_t num_topics = 12;   // K: topic centers words cluster around
  double topic_spread = 0.65;    // within-topic std of word vectors
  double zipf_exponent = 1.05;   // unigram frequency prior ∝ 1/rank^s
  std::uint64_t seed = 17;
};

/// Immutable ground-truth semantics for one corpus "year".
class LatentSpace {
 public:
  explicit LatentSpace(const LatentSpaceConfig& config);

  /// Returns a drifted copy: each word vector receives independent Gaussian
  /// noise of scale `drift`, and a `doc_fraction_delta` is recorded so the
  /// corpus generator emits proportionally more documents. Models the
  /// Wiki'17 → Wiki'18 temporal change.
  LatentSpace drifted(double drift, std::uint64_t drift_seed,
                      double doc_fraction_delta = 0.01) const;

  const LatentSpaceConfig& config() const { return config_; }
  std::size_t vocab_size() const { return config_.vocab_size; }
  std::size_t latent_dim() const { return config_.latent_dim; }

  /// Ground-truth word vectors, one row per word (vocab × D).
  const la::Matrix& word_vectors() const { return word_vectors_; }
  /// Topic id of each word (used by NER gazetteers).
  const std::vector<std::size_t>& word_topics() const { return word_topics_; }
  /// Topic centers (K × D).
  const la::Matrix& topic_centers() const { return topic_centers_; }
  /// Zipf unigram prior, unnormalized, ordered by word id (id 0 = most
  /// frequent).
  const std::vector<double>& unigram_prior() const { return unigram_prior_; }
  /// Extra fraction of documents relative to the base year (0 for the base).
  double doc_fraction_delta() const { return doc_fraction_delta_; }

 private:
  LatentSpace() = default;

  LatentSpaceConfig config_;
  la::Matrix word_vectors_;
  la::Matrix topic_centers_;
  std::vector<std::size_t> word_topics_;
  std::vector<double> unigram_prior_;
  double doc_fraction_delta_ = 0.0;
};

}  // namespace anchor::text
