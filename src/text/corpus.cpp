#include "text/corpus.hpp"

#include <cmath>
#include <cstdio>

namespace anchor::text {

std::int64_t Corpus::total_tokens() const {
  std::int64_t total = 0;
  for (const auto& s : sentences) total += static_cast<std::int64_t>(s.size());
  return total;
}

std::string Corpus::word_string(std::int32_t id) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "w%04d", id);
  return buf;
}

Corpus generate_corpus(const LatentSpace& space, const CorpusConfig& config) {
  ANCHOR_CHECK_GT(config.num_documents, 0u);
  const std::size_t vocab = space.vocab_size();
  const std::size_t dim = space.latent_dim();

  Corpus corpus;
  corpus.vocab_size = vocab;
  corpus.word_counts.assign(vocab, 0);

  const std::size_t extra_docs = static_cast<std::size_t>(
      std::llround(space.doc_fraction_delta() *
                   static_cast<double>(config.num_documents)));
  const std::size_t total_docs = config.num_documents + extra_docs;
  corpus.sentences.reserve(total_docs * config.sentences_per_document);

  Rng doc_rng(config.seed);
  std::vector<double> weights(vocab);
  std::vector<double> topic(dim);

  for (std::size_t doc = 0; doc < total_docs; ++doc) {
    // Forking per document keeps documents aligned across corpus "years":
    // document i consumes the same stream position regardless of how the
    // drifted space changes individual word draws.
    Rng rng = doc_rng.fork(doc);

    const std::size_t k = rng.index(space.config().num_topics);
    for (std::size_t j = 0; j < dim; ++j) {
      topic[j] = space.topic_centers()(k, j) +
                 rng.normal(0.0, config.topic_mix_noise);
    }

    // Document word distribution ∝ prior(w) · exp(β·⟨t, g_w⟩), computed with
    // a max-shift for overflow safety.
    double max_logit = -1e300;
    for (std::size_t w = 0; w < vocab; ++w) {
      double dot = 0.0;
      const double* gw = space.word_vectors().row(w);
      for (std::size_t j = 0; j < dim; ++j) dot += topic[j] * gw[j];
      weights[w] = config.topic_sharpness * dot;
      max_logit = std::max(max_logit, weights[w]);
    }
    for (std::size_t w = 0; w < vocab; ++w) {
      weights[w] = space.unigram_prior()[w] * std::exp(weights[w] - max_logit);
    }
    DiscreteSampler sampler(weights);

    for (std::size_t s = 0; s < config.sentences_per_document; ++s) {
      std::vector<std::int32_t> sentence(config.tokens_per_sentence);
      for (auto& tok : sentence) {
        const std::size_t w = sampler.sample(rng);
        tok = static_cast<std::int32_t>(w);
        ++corpus.word_counts[w];
      }
      corpus.sentences.push_back(std::move(sentence));
    }
  }
  return corpus;
}

}  // namespace anchor::text
