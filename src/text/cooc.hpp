// Windowed co-occurrence counting and the PPMI transform.
//
// GloVe factors the (weighted) co-occurrence matrix; MC factors the PPMI
// matrix (Bullinaria & Levy, 2007), as in the paper's §2.2. Counts are kept
// sparse: the synthetic corpora are Zipfian, so the co-occurrence matrix is
// heavily concentrated.
#pragma once

#include <cstdint>
#include <vector>

#include "text/corpus.hpp"

namespace anchor::text {

/// One observed (row, col, value) co-occurrence cell.
struct CoocEntry {
  std::int32_t row = 0;
  std::int32_t col = 0;
  double value = 0.0;
};

/// Sparse symmetric co-occurrence statistics.
struct CoocMatrix {
  std::size_t vocab_size = 0;
  std::vector<CoocEntry> entries;     // row-major sorted, both triangles
  std::vector<double> row_sums;       // marginal counts per word
  double total = 0.0;                 // grand total of all cells

  std::size_t nnz() const { return entries.size(); }
};

struct CoocConfig {
  std::size_t window = 5;
  /// GloVe-style 1/distance weighting; when false every pair in the window
  /// counts 1 (word2vec-style expectation).
  bool distance_weighting = true;
};

/// Counts symmetric windowed co-occurrences over all sentences.
CoocMatrix count_cooccurrences(const Corpus& corpus, const CoocConfig& config);

/// Positive pointwise mutual information transform:
/// PPMI(i,j) = max(0, log(p(i,j) / (p(i)·p(j)))). Cells that round to zero
/// are dropped from the sparse result.
CoocMatrix ppmi(const CoocMatrix& cooc);

}  // namespace anchor::text
