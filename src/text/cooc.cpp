#include "text/cooc.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace anchor::text {

CoocMatrix count_cooccurrences(const Corpus& corpus, const CoocConfig& config) {
  ANCHOR_CHECK_GT(config.window, 0u);
  ANCHOR_CHECK_GT(corpus.vocab_size, 0u);

  // Key packs (row, col) into 64 bits; vocabulary sizes here are far below
  // 2^31 so this is collision-free by construction.
  std::unordered_map<std::uint64_t, double> cells;
  cells.reserve(corpus.vocab_size * 64);

  for (const auto& sentence : corpus.sentences) {
    const std::size_t len = sentence.size();
    for (std::size_t i = 0; i < len; ++i) {
      const std::size_t hi = std::min(len, i + config.window + 1);
      for (std::size_t j = i + 1; j < hi; ++j) {
        const double w =
            config.distance_weighting ? 1.0 / static_cast<double>(j - i) : 1.0;
        const auto a = static_cast<std::uint32_t>(sentence[i]);
        const auto b = static_cast<std::uint32_t>(sentence[j]);
        cells[(static_cast<std::uint64_t>(a) << 32) | b] += w;
        cells[(static_cast<std::uint64_t>(b) << 32) | a] += w;
      }
    }
  }

  CoocMatrix m;
  m.vocab_size = corpus.vocab_size;
  m.entries.reserve(cells.size());
  m.row_sums.assign(corpus.vocab_size, 0.0);
  for (const auto& [key, value] : cells) {
    CoocEntry e;
    e.row = static_cast<std::int32_t>(key >> 32);
    e.col = static_cast<std::int32_t>(key & 0xffffffffu);
    e.value = value;
    m.entries.push_back(e);
    m.row_sums[static_cast<std::size_t>(e.row)] += value;
    m.total += value;
  }
  std::sort(m.entries.begin(), m.entries.end(),
            [](const CoocEntry& a, const CoocEntry& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  return m;
}

CoocMatrix ppmi(const CoocMatrix& cooc) {
  ANCHOR_CHECK_GT(cooc.total, 0.0);
  CoocMatrix m;
  m.vocab_size = cooc.vocab_size;
  m.row_sums.assign(cooc.vocab_size, 0.0);
  m.entries.reserve(cooc.entries.size());
  for (const auto& e : cooc.entries) {
    const double pij = e.value / cooc.total;
    const double pi = cooc.row_sums[static_cast<std::size_t>(e.row)] / cooc.total;
    const double pj = cooc.row_sums[static_cast<std::size_t>(e.col)] / cooc.total;
    ANCHOR_CHECK_GT(pi, 0.0);
    ANCHOR_CHECK_GT(pj, 0.0);
    const double pmi = std::log(pij / (pi * pj));
    if (pmi <= 0.0) continue;
    CoocEntry out = e;
    out.value = pmi;
    m.entries.push_back(out);
    m.row_sums[static_cast<std::size_t>(e.row)] += pmi;
    m.total += pmi;
  }
  return m;
}

}  // namespace anchor::text
