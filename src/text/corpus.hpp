// Synthetic corpus representation and generator.
//
// A Corpus is a list of sentences of integer token ids (tokenization is the
// identity in the synthetic setting; word strings exist only for display).
// The generator realizes the LatentSpace's topic-mixture language model:
// each document samples a topic direction t, then draws tokens with
// probability ∝ zipf_prior(w) · exp(β · ⟨t, g_w⟩). Co-occurrence statistics
// of the result have the low-rank structure embedding algorithms exploit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "text/latent_space.hpp"

namespace anchor::text {

/// Token-id corpus with unigram counts.
struct Corpus {
  std::size_t vocab_size = 0;
  std::vector<std::vector<std::int32_t>> sentences;
  std::vector<std::int64_t> word_counts;  // vocab_size entries

  std::int64_t total_tokens() const;
  /// Display form of a token id ("w0042"); ids are rank-ordered by the
  /// generator's Zipf prior so low ids are frequent.
  static std::string word_string(std::int32_t id);
};

struct CorpusConfig {
  std::size_t num_documents = 3000;
  std::size_t sentences_per_document = 4;
  std::size_t tokens_per_sentence = 18;
  double topic_sharpness = 1.1;  // β: how strongly topics bias word choice
  double topic_mix_noise = 0.35; // noise added to the per-doc topic vector
  std::uint64_t seed = 1;        // document sampling stream
};

/// Generates a corpus from a latent space. The same `config.seed` with a
/// drifted space yields the paper's "next year's dump" stimulus: mostly the
/// same documents, slightly different word statistics, plus
/// `space.doc_fraction_delta()` extra documents appended at the end.
Corpus generate_corpus(const LatentSpace& space, const CorpusConfig& config);

}  // namespace anchor::text
