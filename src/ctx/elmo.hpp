// TinyElmo: a bidirectional LSTM language model used as a second contextual
// feature extractor (Peters et al., 2018 — the other contextual family the
// paper's §6.2 cites alongside transformers). A forward LSTM is trained to
// predict the next token and a backward LSTM the previous token, over a
// shared token-embedding table; contextual features are the mean-pooled
// concatenation [h_fwd; h_bwd] of the two directions' hidden states.
//
// Like TinyBert, every gradient is hand-derived (full BPTT through the LSTM
// cells and the softmax heads) and validated against finite differences in
// the tests. The hidden size is the memory axis of the Figure-11-style
// extension bench; output features are quantized the same way BERT-analog
// features are.
#pragma once

#include <cstdint>
#include <vector>

#include "text/corpus.hpp"

namespace anchor::ctx {

struct TinyElmoConfig {
  std::size_t embed_dim = 16;  // token embedding size (char-CNN stand-in)
  std::size_t hidden = 16;     // per-direction LSTM size; features are 2×this
  float learning_rate = 0.5f;  // plain SGD with gradient clipping
  float clip_norm = 5.0f;
  std::size_t epochs = 1;
  std::uint64_t seed = 1;
};

class TinyElmo {
 public:
  TinyElmo(std::size_t vocab_size, const TinyElmoConfig& config);

  /// Bidirectional-LM pretraining over the corpus.
  void pretrain(const text::Corpus& corpus);

  /// Mean-pooled [h_fwd; h_bwd] features (2·hidden) for a sentence.
  std::vector<float> features(const std::vector<std::int32_t>& sentence) const;

  /// Per-token contextual states (T × 2·hidden, row-major).
  std::vector<float> encode(const std::vector<std::int32_t>& sentence) const;

  /// Mean bidirectional-LM cross-entropy (nats/prediction) on a sentence;
  /// sentences of length < 2 contribute no predictions and return 0.
  double lm_loss(const std::vector<std::int32_t>& sentence) const;

  /// Full parameter gradient of lm_loss (exposed for the tests).
  std::vector<float> lm_gradient(
      const std::vector<std::int32_t>& sentence) const;

  std::vector<float>& parameters() { return params_; }
  const std::vector<float>& parameters() const { return params_; }
  const TinyElmoConfig& config() const { return config_; }
  std::size_t vocab_size() const { return vocab_; }
  std::size_t feature_dim() const { return 2 * config_.hidden; }

 private:
  struct DirectionCache;

  /// Runs one direction (tokens already ordered for that direction); fills
  /// the cache when non-null and returns per-step hidden states (T×hidden).
  std::vector<float> run_direction(const std::vector<std::int32_t>& tokens,
                                   std::size_t dir,
                                   DirectionCache* cache) const;

  /// LM loss + (optionally) gradient for one direction over ordered tokens.
  double direction_loss(const std::vector<std::int32_t>& tokens,
                        std::size_t dir, std::vector<float>* grad) const;

  // Parameter layout offsets: shared embedding, then per-direction
  // {W_x (4h×e), W_h (4h×h), b (4h), U (vocab×h), c (vocab)}.
  std::size_t embed_offset() const { return 0; }
  std::size_t dir_offset(std::size_t dir) const;
  std::size_t dir_size() const;

  std::size_t vocab_ = 0;
  TinyElmoConfig config_;
  std::vector<float> params_;
};

}  // namespace anchor::ctx
