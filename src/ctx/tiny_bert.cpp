#include "ctx/tiny_bert.hpp"

#include <algorithm>
#include <cmath>

#include "model/optimizer.hpp"
#include "util/rng.hpp"

namespace anchor::ctx {

namespace {

constexpr float kLnEps = 1e-5f;
constexpr float kGeluC = 0.7978845608028654f;  // √(2/π)
constexpr float kGeluA = 0.044715f;

float gelu(float x) {
  const float u = kGeluC * (x + kGeluA * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(u));
}

float gelu_grad(float x) {
  const float u = kGeluC * (x + kGeluA * x * x * x);
  const float t = std::tanh(u);
  const float du = kGeluC * (1.0f + 3.0f * kGeluA * x * x);
  return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
}

/// y[t] = W · x[t] + b, W is (out×in) row-major; x is T×in, y is T×out.
void linear_forward(const float* x, std::size_t t_count, std::size_t in,
                    const float* w, const float* b, std::size_t out,
                    float* y) {
  for (std::size_t t = 0; t < t_count; ++t) {
    const float* xt = x + t * in;
    float* yt = y + t * out;
    for (std::size_t r = 0; r < out; ++r) {
      const float* wrow = w + r * in;
      float acc = b[r];
      for (std::size_t j = 0; j < in; ++j) acc += wrow[j] * xt[j];
      yt[r] = acc;
    }
  }
}

/// Accumulates dW, db, and dx for the linear layer above.
void linear_backward(const float* x, std::size_t t_count, std::size_t in,
                     const float* w, std::size_t out, const float* dy,
                     float* dw, float* db, float* dx) {
  for (std::size_t t = 0; t < t_count; ++t) {
    const float* xt = x + t * in;
    const float* dyt = dy + t * out;
    float* dxt = dx != nullptr ? dx + t * in : nullptr;
    for (std::size_t r = 0; r < out; ++r) {
      const float g = dyt[r];
      if (g == 0.0f) continue;
      float* dwrow = dw + r * in;
      const float* wrow = w + r * in;
      for (std::size_t j = 0; j < in; ++j) {
        dwrow[j] += g * xt[j];
        if (dxt != nullptr) dxt[j] += g * wrow[j];
      }
      db[r] += g;
    }
  }
}

/// Row-wise LayerNorm with affine parameters; caches normalized rows and
/// inverse stds for the backward pass.
void layernorm_forward(const float* x, std::size_t t_count, std::size_t d,
                       const float* gamma, const float* beta, float* y,
                       float* xhat, float* inv_std) {
  for (std::size_t t = 0; t < t_count; ++t) {
    const float* xt = x + t * d;
    double mean = 0.0;
    for (std::size_t j = 0; j < d; ++j) mean += xt[j];
    mean /= static_cast<double>(d);
    double var = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double diff = xt[j] - mean;
      var += diff * diff;
    }
    var /= static_cast<double>(d);
    const float istd = 1.0f / std::sqrt(static_cast<float>(var) + kLnEps);
    inv_std[t] = istd;
    for (std::size_t j = 0; j < d; ++j) {
      const float xh = (xt[j] - static_cast<float>(mean)) * istd;
      xhat[t * d + j] = xh;
      y[t * d + j] = gamma[j] * xh + beta[j];
    }
  }
}

void layernorm_backward(std::size_t t_count, std::size_t d, const float* gamma,
                        const float* xhat, const float* inv_std,
                        const float* dy, float* dgamma, float* dbeta,
                        float* dx) {
  for (std::size_t t = 0; t < t_count; ++t) {
    const float* dyt = dy + t * d;
    const float* xht = xhat + t * d;
    float* dxt = dx + t * d;
    double sum_dxhat = 0.0, sum_dxhat_xhat = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const float dxh = dyt[j] * gamma[j];
      sum_dxhat += dxh;
      sum_dxhat_xhat += static_cast<double>(dxh) * xht[j];
      dgamma[j] += dyt[j] * xht[j];
      dbeta[j] += dyt[j];
    }
    const float mean_dxhat = static_cast<float>(sum_dxhat) / d;
    const float mean_dxhat_xhat = static_cast<float>(sum_dxhat_xhat) / d;
    for (std::size_t j = 0; j < d; ++j) {
      const float dxh = dyt[j] * gamma[j];
      dxt[j] = inv_std[t] * (dxh - mean_dxhat - xht[j] * mean_dxhat_xhat);
    }
  }
}

}  // namespace

/// Per-layer activations cached by the forward pass for BPTT.
struct TinyBert::Cache {
  struct Layer {
    std::vector<float> x;         // layer input (T×d)
    std::vector<float> q, k, v;   // projections (T×d)
    std::vector<float> attn;      // softmax probs (heads×T×T)
    std::vector<float> ctx;       // concatenated head outputs (T×d)
    std::vector<float> attnproj;  // ctx·Woᵀ+bo (T×d)
    std::vector<float> res1;      // x + attnproj
    std::vector<float> xhat1, y1; // LN1
    std::vector<float> inv_std1;  // (T)
    std::vector<float> h1;        // FFN pre-activation (T×f)
    std::vector<float> g;         // GELU(h1)
    std::vector<float> ffnout;    // (T×d)
    std::vector<float> res2;      // y1 + ffnout
    std::vector<float> xhat2, y2; // LN2 (layer output)
    std::vector<float> inv_std2;
  };
  std::vector<float> emb;  // embedded input (T×d)
  std::vector<Layer> layers;
};

std::size_t TinyBert::pos_offset() const {
  return (vocab_ + 1) * config_.dim;  // +1 for the [MASK] row
}

std::size_t TinyBert::layer_size() const {
  const std::size_t d = config_.dim;
  const std::size_t f = config_.ffn_mult * d;
  return 4 * (d * d + d)   // Wq/Wk/Wv/Wo + biases
         + 2 * d           // LN1 γ, β
         + f * d + f       // W1, b1
         + d * f + d       // W2, b2
         + 2 * d;          // LN2 γ, β
}

std::size_t TinyBert::layer_offset(std::size_t layer) const {
  return pos_offset() + config_.max_len * config_.dim + layer * layer_size();
}

std::size_t TinyBert::head_offset() const {
  return layer_offset(config_.layers);
}

TinyBert::TinyBert(std::size_t vocab_size, const TinyBertConfig& config)
    : vocab_(vocab_size), config_(config) {
  ANCHOR_CHECK_GT(vocab_size, 0u);
  ANCHOR_CHECK_EQ(config.dim % config.heads, 0u);
  const std::size_t d = config_.dim;
  const std::size_t total = head_offset() + vocab_ * d + vocab_;
  params_.assign(total, 0.0f);

  Rng rng(config.seed);
  const double emb_scale = 0.02;  // BERT's truncated-normal scale
  for (std::size_t i = 0; i < pos_offset() + config_.max_len * d; ++i) {
    params_[i] = static_cast<float>(rng.normal(0.0, emb_scale));
  }
  for (std::size_t layer = 0; layer < config_.layers; ++layer) {
    float* p = params_.data() + layer_offset(layer);
    const std::size_t f = config_.ffn_mult * d;
    const double proj_scale = 1.0 / std::sqrt(static_cast<double>(d));
    // Projections.
    for (std::size_t i = 0; i < 4 * (d * d + d); ++i) {
      p[i] = (i % (d * d + d)) < d * d
                 ? static_cast<float>(rng.normal(0.0, proj_scale))
                 : 0.0f;
    }
    std::size_t off = 4 * (d * d + d);
    // LN1: γ=1, β=0.
    for (std::size_t j = 0; j < d; ++j) p[off + j] = 1.0f;
    off += 2 * d;
    for (std::size_t i = 0; i < f * d; ++i) {
      p[off + i] = static_cast<float>(rng.normal(0.0, proj_scale));
    }
    off += f * d + f;
    const double ffn_scale = 1.0 / std::sqrt(static_cast<double>(f));
    for (std::size_t i = 0; i < d * f; ++i) {
      p[off + i] = static_cast<float>(rng.normal(0.0, ffn_scale));
    }
    off += d * f + d;
    for (std::size_t j = 0; j < d; ++j) p[off + j] = 1.0f;
  }
  {
    float* head = params_.data() + head_offset();
    const double scale = 1.0 / std::sqrt(static_cast<double>(d));
    for (std::size_t i = 0; i < vocab_ * d; ++i) {
      head[i] = static_cast<float>(rng.normal(0.0, scale));
    }
  }
}

std::vector<float> TinyBert::forward(const std::vector<std::int32_t>& sentence,
                                     const std::vector<std::size_t>& masked,
                                     Cache* cache) const {
  ANCHOR_CHECK(!sentence.empty());
  const std::size_t t_count = std::min(sentence.size(), config_.max_len);
  const std::size_t d = config_.dim;
  const std::size_t f = config_.ffn_mult * d;
  const std::size_t heads = config_.heads;
  const std::size_t dh = d / heads;
  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(dh));

  Cache local;
  Cache& c = cache != nullptr ? *cache : local;
  c.layers.resize(config_.layers);

  // Embedding: token (or [MASK]) + position.
  c.emb.assign(t_count * d, 0.0f);
  std::vector<std::uint8_t> is_masked(t_count, 0);
  for (const std::size_t m : masked) {
    if (m < t_count) is_masked[m] = 1;
  }
  const float* tok = params_.data() + tok_offset();
  const float* pos = params_.data() + pos_offset();
  for (std::size_t t = 0; t < t_count; ++t) {
    const std::size_t row =
        is_masked[t] ? mask_row() : static_cast<std::size_t>(sentence[t]);
    const float* trow = tok + row * d;
    const float* prow = pos + t * d;
    for (std::size_t j = 0; j < d; ++j) c.emb[t * d + j] = trow[j] + prow[j];
  }

  std::vector<float> x = c.emb;
  for (std::size_t layer = 0; layer < config_.layers; ++layer) {
    auto& lc = c.layers[layer];
    const float* p = params_.data() + layer_offset(layer);
    const float* wq = p;
    const float* bq = wq + d * d;
    const float* wk = bq + d;
    const float* bk = wk + d * d;
    const float* wv = bk + d;
    const float* bv = wv + d * d;
    const float* wo = bv + d;
    const float* bo = wo + d * d;
    const float* ln1g = bo + d;
    const float* ln1b = ln1g + d;
    const float* w1 = ln1b + d;
    const float* b1 = w1 + f * d;
    const float* w2 = b1 + f;
    const float* b2 = w2 + d * f;
    const float* ln2g = b2 + d;
    const float* ln2b = ln2g + d;

    lc.x = x;
    lc.q.assign(t_count * d, 0.0f);
    lc.k.assign(t_count * d, 0.0f);
    lc.v.assign(t_count * d, 0.0f);
    linear_forward(lc.x.data(), t_count, d, wq, bq, d, lc.q.data());
    linear_forward(lc.x.data(), t_count, d, wk, bk, d, lc.k.data());
    linear_forward(lc.x.data(), t_count, d, wv, bv, d, lc.v.data());

    // Scaled dot-product attention per head.
    lc.attn.assign(heads * t_count * t_count, 0.0f);
    lc.ctx.assign(t_count * d, 0.0f);
    std::vector<float> row(t_count);
    for (std::size_t hh = 0; hh < heads; ++hh) {
      const std::size_t col0 = hh * dh;
      float* a = lc.attn.data() + hh * t_count * t_count;
      for (std::size_t t1 = 0; t1 < t_count; ++t1) {
        const float* q1 = lc.q.data() + t1 * d + col0;
        float mx = -1e30f;
        for (std::size_t t2 = 0; t2 < t_count; ++t2) {
          const float* k2 = lc.k.data() + t2 * d + col0;
          float dot = 0.0f;
          for (std::size_t j = 0; j < dh; ++j) dot += q1[j] * k2[j];
          row[t2] = dot * inv_sqrt_dh;
          mx = std::max(mx, row[t2]);
        }
        float sum = 0.0f;
        for (std::size_t t2 = 0; t2 < t_count; ++t2) {
          row[t2] = std::exp(row[t2] - mx);
          sum += row[t2];
        }
        float* ctx1 = lc.ctx.data() + t1 * d + col0;
        for (std::size_t t2 = 0; t2 < t_count; ++t2) {
          const float prob = row[t2] / sum;
          a[t1 * t_count + t2] = prob;
          const float* v2 = lc.v.data() + t2 * d + col0;
          for (std::size_t j = 0; j < dh; ++j) ctx1[j] += prob * v2[j];
        }
      }
    }

    lc.attnproj.assign(t_count * d, 0.0f);
    linear_forward(lc.ctx.data(), t_count, d, wo, bo, d, lc.attnproj.data());
    lc.res1.resize(t_count * d);
    for (std::size_t i = 0; i < lc.res1.size(); ++i) {
      lc.res1[i] = lc.x[i] + lc.attnproj[i];
    }
    lc.xhat1.assign(t_count * d, 0.0f);
    lc.y1.assign(t_count * d, 0.0f);
    lc.inv_std1.assign(t_count, 0.0f);
    layernorm_forward(lc.res1.data(), t_count, d, ln1g, ln1b, lc.y1.data(),
                      lc.xhat1.data(), lc.inv_std1.data());

    lc.h1.assign(t_count * f, 0.0f);
    linear_forward(lc.y1.data(), t_count, d, w1, b1, f, lc.h1.data());
    lc.g.resize(t_count * f);
    for (std::size_t i = 0; i < lc.g.size(); ++i) lc.g[i] = gelu(lc.h1[i]);
    lc.ffnout.assign(t_count * d, 0.0f);
    linear_forward(lc.g.data(), t_count, f, w2, b2, d, lc.ffnout.data());
    lc.res2.resize(t_count * d);
    for (std::size_t i = 0; i < lc.res2.size(); ++i) {
      lc.res2[i] = lc.y1[i] + lc.ffnout[i];
    }
    lc.xhat2.assign(t_count * d, 0.0f);
    lc.y2.assign(t_count * d, 0.0f);
    lc.inv_std2.assign(t_count, 0.0f);
    layernorm_forward(lc.res2.data(), t_count, d, ln2g, ln2b, lc.y2.data(),
                      lc.xhat2.data(), lc.inv_std2.data());
    x = lc.y2;
  }
  return x;
}

std::vector<float> TinyBert::encode(
    const std::vector<std::int32_t>& sentence) const {
  return forward(sentence, {}, nullptr);
}

std::vector<float> TinyBert::features(
    const std::vector<std::int32_t>& sentence) const {
  const std::vector<float> h = encode(sentence);
  const std::size_t d = config_.dim;
  const std::size_t t_count = h.size() / d;
  std::vector<float> pooled(d, 0.0f);
  for (std::size_t t = 0; t < t_count; ++t) {
    for (std::size_t j = 0; j < d; ++j) pooled[j] += h[t * d + j];
  }
  const float inv = 1.0f / static_cast<float>(t_count);
  for (auto& v : pooled) v *= inv;
  return pooled;
}

double TinyBert::mlm_loss(const std::vector<std::int32_t>& sentence,
                          const std::vector<std::size_t>& masked) const {
  ANCHOR_CHECK(!masked.empty());
  const std::vector<float> h = forward(sentence, masked, nullptr);
  const std::size_t d = config_.dim;
  const std::size_t t_count = h.size() / d;
  const float* wout = params_.data() + head_offset();
  const float* bout = wout + vocab_ * d;

  double total = 0.0;
  std::size_t count = 0;
  std::vector<float> logits(vocab_);
  for (const std::size_t m : masked) {
    if (m >= t_count) continue;
    const float* ht = h.data() + m * d;
    float mx = -1e30f;
    for (std::size_t wv = 0; wv < vocab_; ++wv) {
      const float* wrow = wout + wv * d;
      float acc = bout[wv];
      for (std::size_t j = 0; j < d; ++j) acc += wrow[j] * ht[j];
      logits[wv] = acc;
      mx = std::max(mx, acc);
    }
    float sum = 0.0f;
    for (const float l : logits) sum += std::exp(l - mx);
    const auto gold = static_cast<std::size_t>(sentence[m]);
    total += std::log(sum) + mx - logits[gold];
    ++count;
  }
  ANCHOR_CHECK_GT(count, 0u);
  return total / static_cast<double>(count);
}

std::vector<float> TinyBert::mlm_gradient(
    const std::vector<std::int32_t>& sentence,
    const std::vector<std::size_t>& masked) const {
  ANCHOR_CHECK(!masked.empty());
  Cache cache;
  const std::vector<float> h = forward(sentence, masked, &cache);
  const std::size_t d = config_.dim;
  const std::size_t f = config_.ffn_mult * d;
  const std::size_t heads = config_.heads;
  const std::size_t dh = d / heads;
  const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(dh));
  const std::size_t t_count = h.size() / d;

  std::vector<float> grads(params_.size(), 0.0f);

  // --- MLM head ---
  const float* wout = params_.data() + head_offset();
  const float* bout = wout + vocab_ * d;
  float* gwout = grads.data() + head_offset();
  float* gbout = gwout + vocab_ * d;
  std::vector<float> dh_top(t_count * d, 0.0f);
  std::vector<float> logits(vocab_);
  std::size_t live = 0;
  for (const std::size_t m : masked) live += (m < t_count) ? 1 : 0;
  ANCHOR_CHECK_GT(live, 0u);
  const float inv_masked = 1.0f / static_cast<float>(live);

  for (const std::size_t m : masked) {
    if (m >= t_count) continue;
    const float* ht = h.data() + m * d;
    float mx = -1e30f;
    for (std::size_t wv = 0; wv < vocab_; ++wv) {
      const float* wrow = wout + wv * d;
      float acc = bout[wv];
      for (std::size_t j = 0; j < d; ++j) acc += wrow[j] * ht[j];
      logits[wv] = acc;
      mx = std::max(mx, acc);
    }
    float sum = 0.0f;
    for (auto& l : logits) {
      l = std::exp(l - mx);
      sum += l;
    }
    const auto gold = static_cast<std::size_t>(sentence[m]);
    float* dht = dh_top.data() + m * d;
    for (std::size_t wv = 0; wv < vocab_; ++wv) {
      const float delta =
          (logits[wv] / sum - (wv == gold ? 1.0f : 0.0f)) * inv_masked;
      if (delta == 0.0f) continue;
      float* gwrow = gwout + wv * d;
      const float* wrow = wout + wv * d;
      for (std::size_t j = 0; j < d; ++j) {
        gwrow[j] += delta * ht[j];
        dht[j] += delta * wrow[j];
      }
      gbout[wv] += delta;
    }
  }

  // --- Transformer layers, top down ---
  std::vector<float> dy2 = dh_top;
  for (std::size_t layer = config_.layers; layer-- > 0;) {
    const auto& lc = cache.layers[layer];
    const float* p = params_.data() + layer_offset(layer);
    float* gp = grads.data() + layer_offset(layer);
    const float* wq = p;
    const float* wk = wq + d * d + d;
    const float* wv_ = wk + d * d + d;
    const float* wo = wv_ + d * d + d;
    const float* ln1g = wo + d * d + d;
    const float* w1 = ln1g + 2 * d;
    const float* w2 = w1 + f * d + f;
    const float* ln2g = w2 + d * f + d;
    float* gwq = gp;
    float* gbq = gwq + d * d;
    float* gwk = gbq + d;
    float* gbk = gwk + d * d;
    float* gwv = gbk + d;
    float* gbv = gwv + d * d;
    float* gwo = gbv + d;
    float* gbo = gwo + d * d;
    float* gln1g = gbo + d;
    float* gln1b = gln1g + d;
    float* gw1 = gln1b + d;
    float* gb1 = gw1 + f * d;
    float* gw2 = gb1 + f;
    float* gb2 = gw2 + d * f;
    float* gln2g = gb2 + d;
    float* gln2b = gln2g + d;

    // LN2 backward: dy2 → dres2.
    std::vector<float> dres2(t_count * d, 0.0f);
    layernorm_backward(t_count, d, ln2g, lc.xhat2.data(), lc.inv_std2.data(),
                       dy2.data(), gln2g, gln2b, dres2.data());

    // res2 = y1 + ffnout.
    std::vector<float> dy1 = dres2;           // residual branch
    std::vector<float> dffnout = dres2;       // FFN branch

    // FFN backward: ffnout = W2·g + b2; g = GELU(h1); h1 = W1·y1 + b1.
    std::vector<float> dg(t_count * f, 0.0f);
    linear_backward(lc.g.data(), t_count, f, w2, d, dffnout.data(), gw2, gb2,
                    dg.data());
    std::vector<float> dh1(t_count * f);
    for (std::size_t i = 0; i < dh1.size(); ++i) {
      dh1[i] = dg[i] * gelu_grad(lc.h1[i]);
    }
    linear_backward(lc.y1.data(), t_count, d, w1, f, dh1.data(), gw1, gb1,
                    dy1.data());

    // LN1 backward: dy1 → dres1.
    std::vector<float> dres1(t_count * d, 0.0f);
    layernorm_backward(t_count, d, ln1g, lc.xhat1.data(), lc.inv_std1.data(),
                       dy1.data(), gln1g, gln1b, dres1.data());

    // res1 = x + attnproj.
    std::vector<float> dx = dres1;            // residual branch
    std::vector<float> dattnproj = dres1;     // attention branch

    // Output projection backward.
    std::vector<float> dctx(t_count * d, 0.0f);
    linear_backward(lc.ctx.data(), t_count, d, wo, d, dattnproj.data(), gwo,
                    gbo, dctx.data());

    // Attention backward per head.
    std::vector<float> dq(t_count * d, 0.0f), dk(t_count * d, 0.0f),
        dv(t_count * d, 0.0f);
    std::vector<float> da(t_count), dl(t_count);
    for (std::size_t hh = 0; hh < heads; ++hh) {
      const std::size_t col0 = hh * dh;
      const float* a = lc.attn.data() + hh * t_count * t_count;
      for (std::size_t t1 = 0; t1 < t_count; ++t1) {
        const float* dctx1 = dctx.data() + t1 * d + col0;
        // dA[t1][t2] = ⟨dC[t1], V[t2]⟩ and dV[t2] += A[t1][t2]·dC[t1].
        double dot_sum = 0.0;
        for (std::size_t t2 = 0; t2 < t_count; ++t2) {
          const float* v2 = lc.v.data() + t2 * d + col0;
          float* dv2 = dv.data() + t2 * d + col0;
          float acc = 0.0f;
          const float prob = a[t1 * t_count + t2];
          for (std::size_t j = 0; j < dh; ++j) {
            acc += dctx1[j] * v2[j];
            dv2[j] += prob * dctx1[j];
          }
          da[t2] = acc;
          dot_sum += static_cast<double>(acc) * prob;
        }
        // Softmax backward: dl = A ⊙ (dA − Σ dA⊙A).
        for (std::size_t t2 = 0; t2 < t_count; ++t2) {
          dl[t2] = a[t1 * t_count + t2] *
                   (da[t2] - static_cast<float>(dot_sum));
        }
        // dQ[t1] += Σ dl[t2]·K[t2]/√dh; dK[t2] += dl[t2]·Q[t1]/√dh.
        float* dq1 = dq.data() + t1 * d + col0;
        const float* q1 = lc.q.data() + t1 * d + col0;
        for (std::size_t t2 = 0; t2 < t_count; ++t2) {
          const float g = dl[t2] * inv_sqrt_dh;
          if (g == 0.0f) continue;
          const float* k2 = lc.k.data() + t2 * d + col0;
          float* dk2 = dk.data() + t2 * d + col0;
          for (std::size_t j = 0; j < dh; ++j) {
            dq1[j] += g * k2[j];
            dk2[j] += g * q1[j];
          }
        }
      }
    }

    // Projection backward into dx.
    linear_backward(lc.x.data(), t_count, d, wq, d, dq.data(), gwq, gbq,
                    dx.data());
    linear_backward(lc.x.data(), t_count, d, wk, d, dk.data(), gwk, gbk,
                    dx.data());
    linear_backward(lc.x.data(), t_count, d, wv_, d, dv.data(), gwv, gbv,
                    dx.data());
    dy2 = std::move(dx);
  }

  // --- Embedding tables ---
  std::vector<std::uint8_t> is_masked(t_count, 0);
  for (const std::size_t m : masked) {
    if (m < t_count) is_masked[m] = 1;
  }
  float* gtok = grads.data() + tok_offset();
  float* gpos = grads.data() + pos_offset();
  for (std::size_t t = 0; t < t_count; ++t) {
    const std::size_t row =
        is_masked[t] ? mask_row() : static_cast<std::size_t>(sentence[t]);
    for (std::size_t j = 0; j < d; ++j) {
      gtok[row * d + j] += dy2[t * d + j];
      gpos[t * d + j] += dy2[t * d + j];
    }
  }
  return grads;
}

void TinyBert::pretrain(const text::Corpus& corpus) {
  model::Adam optimizer(params_.size(), config_.learning_rate);
  Rng rng(config_.seed ^ 0x9d2c5680ULL);
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    Rng erng = rng.fork(epoch);
    for (const auto& sentence : corpus.sentences) {
      if (sentence.size() < 2) continue;
      const std::size_t t_count = std::min(sentence.size(), config_.max_len);
      std::vector<std::size_t> masked;
      for (std::size_t t = 0; t < t_count; ++t) {
        if (erng.bernoulli(config_.mask_prob)) masked.push_back(t);
      }
      if (masked.empty()) masked.push_back(erng.index(t_count));
      const std::vector<float> grads = mlm_gradient(sentence, masked);
      optimizer.step(params_, grads);
    }
  }
}

}  // namespace anchor::ctx
