// TinyBert: a small transformer encoder with masked-language-model
// pretraining, used as the contextual-embedding analog for the paper's §6.2
// study (which pre-trains 3-layer BERT models on Wiki'17/Wiki'18 and probes
// them with linear classifiers).
//
// Architecture (post-LayerNorm, as original BERT): token + position
// embeddings → N × [multi-head self-attention + residual + LayerNorm,
// GELU feed-forward + residual + LayerNorm] → untied MLM softmax head.
// All gradients are hand-derived; the tests validate every block against
// finite differences.
#pragma once

#include <cstdint>
#include <vector>

#include "text/corpus.hpp"

namespace anchor::ctx {

struct TinyBertConfig {
  std::size_t dim = 32;        // transformer output dimensionality (the
                               // memory axis of Figure 11a)
  std::size_t layers = 2;
  std::size_t heads = 2;
  std::size_t ffn_mult = 2;    // FFN hidden = ffn_mult × dim
  std::size_t max_len = 32;    // position table size
  float learning_rate = 1e-3f;
  std::size_t epochs = 1;
  double mask_prob = 0.15;
  std::uint64_t seed = 1;
};

class TinyBert {
 public:
  /// Initializes parameters for `vocab_size` real tokens (+1 internal [MASK]
  /// token). Call pretrain() before extracting features.
  TinyBert(std::size_t vocab_size, const TinyBertConfig& config);

  /// Masked-LM pretraining over the corpus (Adam, `config.epochs` passes).
  void pretrain(const text::Corpus& corpus);

  /// Mean-pooled last-layer features for a sentence (the fixed feature
  /// extractor the downstream linear probes consume).
  std::vector<float> features(const std::vector<std::int32_t>& sentence) const;

  /// Per-token last-layer hidden states (T×dim, row-major).
  std::vector<float> encode(const std::vector<std::int32_t>& sentence) const;

  /// MLM loss for given masked positions (exposed for gradient tests).
  /// `masked` lists positions whose original token must be predicted; those
  /// positions are fed the [MASK] embedding.
  double mlm_loss(const std::vector<std::int32_t>& sentence,
                  const std::vector<std::size_t>& masked) const;

  /// Full parameter gradient of mlm_loss (exposed for the tests).
  std::vector<float> mlm_gradient(const std::vector<std::int32_t>& sentence,
                                  const std::vector<std::size_t>& masked) const;

  std::vector<float>& parameters() { return params_; }
  const std::vector<float>& parameters() const { return params_; }
  const TinyBertConfig& config() const { return config_; }
  std::size_t vocab_size() const { return vocab_; }

 private:
  struct Cache;  // all per-layer activations of one forward pass

  /// Forward pass; fills `cache` when non-null. Masked positions (possibly
  /// empty) are replaced with the [MASK] embedding. Returns the final
  /// hidden states (T×dim).
  std::vector<float> forward(const std::vector<std::int32_t>& sentence,
                             const std::vector<std::size_t>& masked,
                             Cache* cache) const;

  // Parameter layout offsets.
  std::size_t tok_offset() const { return 0; }
  std::size_t pos_offset() const;
  std::size_t layer_offset(std::size_t layer) const;
  std::size_t layer_size() const;
  std::size_t head_offset() const;  // MLM output head
  std::size_t mask_row() const { return vocab_; }

  std::size_t vocab_ = 0;
  TinyBertConfig config_;
  std::vector<float> params_;
};

}  // namespace anchor::ctx
