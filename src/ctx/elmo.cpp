#include "ctx/elmo.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace anchor::ctx {

namespace {

float sigmoidf(float x) {
  if (x > 30.0f) return 1.0f;
  if (x < -30.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}

/// log-softmax denominator with the max trick; returns logsumexp(logits).
double logsumexp(const float* logits, std::size_t n) {
  float mx = logits[0];
  for (std::size_t i = 1; i < n; ++i) mx = std::max(mx, logits[i]);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += std::exp(static_cast<double>(logits[i]) - mx);
  }
  return static_cast<double>(mx) + std::log(acc);
}

}  // namespace

/// Per-timestep activations of one direction, kept for BPTT.
struct TinyElmo::DirectionCache {
  // T × hidden each; gates are post-nonlinearity.
  std::vector<float> i, f, o, g, c, h, tanh_c;
};

TinyElmo::TinyElmo(std::size_t vocab_size, const TinyElmoConfig& config)
    : vocab_(vocab_size), config_(config) {
  ANCHOR_CHECK_GT(vocab_size, 1u);
  ANCHOR_CHECK_GT(config.embed_dim, 0u);
  ANCHOR_CHECK_GT(config.hidden, 0u);
  params_.assign(dir_offset(2), 0.0f);

  Rng rng(config.seed);
  const auto init_block = [&](std::size_t offset, std::size_t count,
                              double scale) {
    for (std::size_t i = 0; i < count; ++i) {
      params_[offset + i] = static_cast<float>(rng.normal(0.0, scale));
    }
  };
  const std::size_t e = config_.embed_dim;
  const std::size_t h = config_.hidden;
  init_block(embed_offset(), vocab_ * e, 1.0 / std::sqrt(e));
  for (std::size_t dir = 0; dir < 2; ++dir) {
    std::size_t off = dir_offset(dir);
    init_block(off, 4 * h * e, 1.0 / std::sqrt(e));   // W_x
    off += 4 * h * e;
    init_block(off, 4 * h * h, 1.0 / std::sqrt(h));   // W_h
    off += 4 * h * h;
    // b stays zero (forget-gate bias of +1 below helps early training).
    for (std::size_t j = 0; j < h; ++j) params_[off + h + j] = 1.0f;
    off += 4 * h;
    init_block(off, vocab_ * h, 1.0 / std::sqrt(h));  // U
    // c stays zero.
  }
}

std::size_t TinyElmo::dir_size() const {
  const std::size_t e = config_.embed_dim;
  const std::size_t h = config_.hidden;
  return 4 * h * e + 4 * h * h + 4 * h + vocab_ * h + vocab_;
}

std::size_t TinyElmo::dir_offset(std::size_t dir) const {
  return vocab_ * config_.embed_dim + dir * dir_size();
}

std::vector<float> TinyElmo::run_direction(
    const std::vector<std::int32_t>& tokens, std::size_t dir,
    DirectionCache* cache) const {
  const std::size_t e = config_.embed_dim;
  const std::size_t h = config_.hidden;
  const std::size_t t_len = tokens.size();
  const float* emb = params_.data() + embed_offset();
  const float* wx = params_.data() + dir_offset(dir);
  const float* wh = wx + 4 * h * e;
  const float* b = wh + 4 * h * h;

  std::vector<float> hs(t_len * h, 0.0f);
  if (cache != nullptr) {
    for (auto* v : {&cache->i, &cache->f, &cache->o, &cache->g, &cache->c,
                    &cache->h, &cache->tanh_c}) {
      v->assign(t_len * h, 0.0f);
    }
  }

  std::vector<float> c_prev(h, 0.0f), h_prev(h, 0.0f), z(4 * h);
  for (std::size_t t = 0; t < t_len; ++t) {
    const float* x = emb + static_cast<std::size_t>(tokens[t]) * e;
    for (std::size_t j = 0; j < 4 * h; ++j) {
      float acc = b[j];
      const float* wxr = wx + j * e;
      for (std::size_t k = 0; k < e; ++k) acc += wxr[k] * x[k];
      const float* whr = wh + j * h;
      for (std::size_t k = 0; k < h; ++k) acc += whr[k] * h_prev[k];
      z[j] = acc;
    }
    for (std::size_t j = 0; j < h; ++j) {
      const float ig = sigmoidf(z[j]);
      const float fg = sigmoidf(z[h + j]);
      const float og = sigmoidf(z[2 * h + j]);
      const float gg = std::tanh(z[3 * h + j]);
      const float cc = fg * c_prev[j] + ig * gg;
      const float tc = std::tanh(cc);
      const float hh = og * tc;
      if (cache != nullptr) {
        cache->i[t * h + j] = ig;
        cache->f[t * h + j] = fg;
        cache->o[t * h + j] = og;
        cache->g[t * h + j] = gg;
        cache->c[t * h + j] = cc;
        cache->tanh_c[t * h + j] = tc;
        cache->h[t * h + j] = hh;
      }
      c_prev[j] = cc;
      h_prev[j] = hh;
      hs[t * h + j] = hh;
    }
  }
  return hs;
}

double TinyElmo::direction_loss(const std::vector<std::int32_t>& tokens,
                                std::size_t dir,
                                std::vector<float>* grad) const {
  const std::size_t e = config_.embed_dim;
  const std::size_t h = config_.hidden;
  const std::size_t t_len = tokens.size();
  if (t_len < 2) return 0.0;
  const std::size_t num_preds = t_len - 1;

  DirectionCache cache;
  const std::vector<float> hs = run_direction(tokens, dir, &cache);
  const float* u = params_.data() + dir_offset(dir) + 4 * h * e + 4 * h * h +
                   4 * h;
  const float* c_bias = u + vocab_ * h;

  // Softmax losses; step t (t < T−1) predicts tokens[t+1] from h_t.
  double loss = 0.0;
  std::vector<float> logits(vocab_);
  // dh from the output heads, per step (filled in the same pass).
  std::vector<float> dh_out(t_len * h, 0.0f);
  float* du = nullptr;
  float* dc_bias = nullptr;
  if (grad != nullptr) {
    du = grad->data() + dir_offset(dir) + 4 * h * e + 4 * h * h + 4 * h;
    dc_bias = du + vocab_ * h;
  }
  const double inv_preds = 1.0 / static_cast<double>(num_preds);

  for (std::size_t t = 0; t + 1 < t_len; ++t) {
    const float* ht = hs.data() + t * h;
    for (std::size_t w = 0; w < vocab_; ++w) {
      float acc = c_bias[w];
      const float* ur = u + w * h;
      for (std::size_t k = 0; k < h; ++k) acc += ur[k] * ht[k];
      logits[w] = acc;
    }
    const std::size_t target = static_cast<std::size_t>(tokens[t + 1]);
    const double lse = logsumexp(logits.data(), vocab_);
    loss += (lse - logits[target]) * inv_preds;

    if (grad != nullptr) {
      for (std::size_t w = 0; w < vocab_; ++w) {
        const float p = static_cast<float>(
            std::exp(static_cast<double>(logits[w]) - lse) * inv_preds);
        const float delta = p - (w == target ? static_cast<float>(inv_preds)
                                             : 0.0f);
        dc_bias[w] += delta;
        float* dur = du + w * h;
        float* dh = dh_out.data() + t * h;
        const float* ur = u + w * h;
        for (std::size_t k = 0; k < h; ++k) {
          dur[k] += delta * ht[k];
          dh[k] += delta * ur[k];
        }
      }
    }
  }
  if (grad == nullptr) return loss;

  // BPTT through the LSTM cells.
  const float* wx = params_.data() + dir_offset(dir);
  const float* wh = wx + 4 * h * e;
  float* dwx = grad->data() + dir_offset(dir);
  float* dwh = dwx + 4 * h * e;
  float* db = dwh + 4 * h * h;
  float* demb = grad->data() + embed_offset();
  const float* emb = params_.data() + embed_offset();

  std::vector<float> dh_next(h, 0.0f), dc_next(h, 0.0f), dz(4 * h);
  for (std::size_t t = t_len; t-- > 0;) {
    const float* x = emb + static_cast<std::size_t>(tokens[t]) * e;
    for (std::size_t j = 0; j < h; ++j) {
      const float dh = dh_out[t * h + j] + dh_next[j];
      const float og = cache.o[t * h + j];
      const float tc = cache.tanh_c[t * h + j];
      const float ig = cache.i[t * h + j];
      const float fg = cache.f[t * h + j];
      const float gg = cache.g[t * h + j];
      const float c_prev =
          t > 0 ? cache.c[(t - 1) * h + j] : 0.0f;

      const float d_o = dh * tc;
      const float dc = dh * og * (1.0f - tc * tc) + dc_next[j];
      const float d_i = dc * gg;
      const float d_f = dc * c_prev;
      const float d_g = dc * ig;
      dc_next[j] = dc * fg;

      dz[j] = d_i * ig * (1.0f - ig);
      dz[h + j] = d_f * fg * (1.0f - fg);
      dz[2 * h + j] = d_o * og * (1.0f - og);
      dz[3 * h + j] = d_g * (1.0f - gg * gg);
    }
    // dh_{t−1} = W_hᵀ dz; parameter grads accumulate outer products.
    std::fill(dh_next.begin(), dh_next.end(), 0.0f);
    const float* h_prev_vec =
        t > 0 ? cache.h.data() + (t - 1) * h : nullptr;
    float* dx = demb + static_cast<std::size_t>(tokens[t]) * e;
    for (std::size_t j = 0; j < 4 * h; ++j) {
      const float dzj = dz[j];
      if (dzj == 0.0f) continue;
      db[j] += dzj;
      float* dwxr = dwx + j * e;
      for (std::size_t k = 0; k < e; ++k) {
        dwxr[k] += dzj * x[k];
        dx[k] += dz[j] * wx[j * e + k];
      }
      if (h_prev_vec != nullptr) {
        float* dwhr = dwh + j * h;
        const float* whr = wh + j * h;
        for (std::size_t k = 0; k < h; ++k) {
          dwhr[k] += dzj * h_prev_vec[k];
          dh_next[k] += dzj * whr[k];
        }
      }
    }
  }
  return loss;
}

double TinyElmo::lm_loss(const std::vector<std::int32_t>& sentence) const {
  if (sentence.size() < 2) return 0.0;
  std::vector<std::int32_t> reversed(sentence.rbegin(), sentence.rend());
  return 0.5 * (direction_loss(sentence, 0, nullptr) +
                direction_loss(reversed, 1, nullptr));
}

std::vector<float> TinyElmo::lm_gradient(
    const std::vector<std::int32_t>& sentence) const {
  std::vector<float> grad(params_.size(), 0.0f);
  if (sentence.size() < 2) return grad;
  std::vector<std::int32_t> reversed(sentence.rbegin(), sentence.rend());
  direction_loss(sentence, 0, &grad);
  direction_loss(reversed, 1, &grad);
  for (float& g : grad) g *= 0.5f;
  return grad;
}

void TinyElmo::pretrain(const text::Corpus& corpus) {
  Rng rng(config_.seed ^ 0xe1a0e1a0ULL);
  std::vector<std::size_t> order(corpus.sentences.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    Rng erng = rng.fork(epoch);
    erng.shuffle(order);
    for (const std::size_t idx : order) {
      const auto& sentence = corpus.sentences[idx];
      if (sentence.size() < 2) continue;
      std::vector<float> grad = lm_gradient(sentence);
      // Global-norm clip, as in the tagger.
      double norm_sq = 0.0;
      for (const float g : grad) norm_sq += static_cast<double>(g) * g;
      const double norm = std::sqrt(norm_sq);
      float scale = config_.learning_rate;
      if (norm > config_.clip_norm) {
        scale *= static_cast<float>(config_.clip_norm / norm);
      }
      for (std::size_t i = 0; i < params_.size(); ++i) {
        params_[i] -= scale * grad[i];
      }
    }
  }
}

std::vector<float> TinyElmo::encode(
    const std::vector<std::int32_t>& sentence) const {
  const std::size_t h = config_.hidden;
  const std::size_t t_len = sentence.size();
  std::vector<float> out(t_len * 2 * h, 0.0f);
  if (t_len == 0) return out;
  const std::vector<float> fwd = run_direction(sentence, 0, nullptr);
  std::vector<std::int32_t> reversed(sentence.rbegin(), sentence.rend());
  const std::vector<float> bwd = run_direction(reversed, 1, nullptr);
  for (std::size_t t = 0; t < t_len; ++t) {
    for (std::size_t j = 0; j < h; ++j) {
      out[t * 2 * h + j] = fwd[t * h + j];
      // Backward state for position t sits at reversed index T−1−t.
      out[t * 2 * h + h + j] = bwd[(t_len - 1 - t) * h + j];
    }
  }
  return out;
}

std::vector<float> TinyElmo::features(
    const std::vector<std::int32_t>& sentence) const {
  const std::size_t fd = feature_dim();
  std::vector<float> pooled(fd, 0.0f);
  if (sentence.empty()) return pooled;
  const std::vector<float> states = encode(sentence);
  const std::size_t t_len = sentence.size();
  for (std::size_t t = 0; t < t_len; ++t) {
    for (std::size_t j = 0; j < fd; ++j) pooled[j] += states[t * fd + j];
  }
  const float inv = 1.0f / static_cast<float>(t_len);
  for (float& v : pooled) v *= inv;
  return pooled;
}

}  // namespace anchor::ctx
