#include "serve/embedding_store.hpp"

#include <algorithm>
#include <cstring>

#include "compress/pq.hpp"
#include "compress/quantize.hpp"
#include "embed/io.hpp"
#include "la/kernels.hpp"
#include "la/procrustes.hpp"
#include "util/check.hpp"

namespace anchor::serve {

namespace {

// Codes per packed byte for b-bit quantization (b ∈ {1, 2, 4, 8}).
std::size_t codes_per_byte(int bits) {
  return 8u / static_cast<std::size_t>(bits);
}

std::size_t packed_bytes(std::size_t values, int bits) {
  const std::size_t per = codes_per_byte(bits);
  return (values + per - 1) / per;
}

}  // namespace

EmbeddingSnapshot::EmbeddingSnapshot(std::string version,
                                     const embed::Embedding& source,
                                     const SnapshotConfig& config,
                                     std::uint64_t epoch, bool aligned)
    : version_(std::move(version)),
      config_(config),
      vocab_size_(source.vocab_size),
      dim_(source.dim),
      epoch_(epoch),
      aligned_(aligned) {
  ANCHOR_CHECK_GT(vocab_size_, 0u);
  ANCHOR_CHECK_GT(dim_, 0u);
  ANCHOR_CHECK_GT(config.num_shards, 0u);
  ANCHOR_CHECK_MSG(config.bits == 1 || config.bits == 2 || config.bits == 4 ||
                       config.bits == 8 || config.bits == 32,
                   "serve snapshots support bits in {1,2,4,8,32}");
  if (config_.pq_m > 0) {
    ANCHOR_CHECK_MSG(config_.bits == 32,
                     "pq mode replaces uniform quantization; leave bits at 32 "
                     "when setting pq_m");
    ANCHOR_CHECK_MSG(config_.pq_bits >= 1 && config_.pq_bits <= 8,
                     "pq codes are stored one byte each; pq_bits must be in "
                     "1..8");
    ANCHOR_CHECK_MSG(dim_ % config_.pq_m == 0,
                     "pq_m must divide the embedding dimension");
  }
  // Reject dead knobs loudly instead of encoding with them silently
  // ignored: a deployment that *thinks* it shares a clip (or codebooks)
  // across shards but doesn't would quietly lose bit-identity.
  ANCHOR_CHECK_MSG(config_.clip_override <= 0.0f || config_.bits < 32,
                   "clip_override applies only to uniform 1/2/4/8-bit "
                   "quantization; it is meaningless for fp32 and pq "
                   "snapshots");
  ANCHOR_CHECK_MSG(config_.pq_codebooks_override.empty() || config_.pq_m > 0,
                   "pq_codebooks_override requires pq mode (set pq_m > 0)");

  if (config_.bits < 32) {
    clip_ = config_.clip_override > 0.0f
                ? config_.clip_override
                : compress::optimal_clip_threshold(source.data, config_.bits);
  }

  const std::size_t num_shards = std::min(config.num_shards, vocab_size_);
  shards_.resize(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    shards_[s].rows = vocab_size_ / num_shards +
                      (s < vocab_size_ % num_shards ? 1 : 0);
    if (config_.pq_m > 0) {
      shards_[s].codes.resize(shards_[s].rows * config_.pq_m);
    } else if (config_.bits == 32) {
      shards_[s].fp32.resize(shards_[s].rows * dim_);
    } else {
      shards_[s].codes.resize(shards_[s].rows *
                              packed_bytes(dim_, config_.bits));
    }
  }
  if (config_.pq_m > 0) {
    // Train (or reuse) codebooks over the FULL vocabulary, then scatter the
    // byte-per-code rows into shards. Encoding against fixed codebooks is a
    // pure function of the row bytes, which is what makes shared-codebook
    // shards merge bit-identically to a single-process store.
    compress::PqConfig pq;
    pq.num_subvectors = config_.pq_m;
    pq.bits = config_.pq_bits;
    pq.codebooks_override = config_.pq_codebooks_override;
    const compress::PqResult coded = compress::pq_quantize(source, pq);
    const std::size_t m = config_.pq_m;
    const std::size_t sub_dim = dim_ / m;
    const std::size_t ksub = std::size_t{1} << config_.pq_bits;
    pq_flat_.resize(m * ksub * sub_dim);
    for (std::size_t s = 0; s < m; ++s) {
      std::copy(coded.codebooks[s].begin(), coded.codebooks[s].end(),
                pq_flat_.begin() + s * ksub * sub_dim);
    }
    for (std::size_t w = 0; w < vocab_size_; ++w) {
      std::uint8_t* row =
          shards_[w % num_shards].codes.data() + (w / num_shards) * m;
      for (std::size_t s = 0; s < m; ++s) {
        row[s] = static_cast<std::uint8_t>(coded.codes[w * m + s]);
      }
    }
  } else {
    for (std::size_t w = 0; w < vocab_size_; ++w) {
      encode_shard_row(shards_[w % num_shards], w / num_shards, source.row(w));
    }
  }

  if (config_.build_oov_table) build_oov_table(source);
}

void EmbeddingSnapshot::encode_shard_row(Shard& shard, std::size_t local_row,
                                         const float* src) {
  if (config_.bits == 32) {
    std::memcpy(shard.fp32.data() + local_row * dim_, src,
                dim_ * sizeof(float));
    return;
  }
  const std::size_t per = codes_per_byte(config_.bits);
  std::uint8_t* row_bytes =
      shard.codes.data() + local_row * packed_bytes(dim_, config_.bits);
  for (std::size_t j = 0; j < dim_; ++j) {
    const std::uint32_t code =
        compress::quantize_code(src[j], clip_, config_.bits);
    const std::size_t shift = (j % per) * static_cast<std::size_t>(config_.bits);
    row_bytes[j / per] |= static_cast<std::uint8_t>(code << shift);
  }
}

void EmbeddingSnapshot::copy_row(std::size_t w, float* out) const {
  ANCHOR_CHECK_LT(w, vocab_size_);
  const Shard& shard = shards_[w % shards_.size()];
  const std::size_t local_row = w / shards_.size();
  if (config_.pq_m > 0) {
    const std::size_t m = config_.pq_m;
    la::kernels::pq_decode_rows(shard.codes.data() + local_row * m, 1, m,
                                dim_ / m, std::size_t{1} << config_.pq_bits,
                                pq_flat_.data(), out);
    return;
  }
  if (config_.bits == 32) {
    std::memcpy(out, shard.fp32.data() + local_row * dim_,
                dim_ * sizeof(float));
    return;
  }
  la::kernels::dequantize_rows(
      shard.codes.data() + local_row * packed_bytes(dim_, config_.bits), 1,
      dim_, config_.bits, clip_, out);
}

void EmbeddingSnapshot::copy_rows(const std::size_t* ids, std::size_t n,
                                  float* out) const {
  if (config_.pq_m == 0) {
    for (std::size_t i = 0; i < n; ++i) copy_row(ids[i], out + i * dim_);
    return;
  }
  // PQ: gather the scattered rows' codes (m bytes each) into one contiguous
  // block, then decode the whole batch with a single fused kernel call —
  // the batched unit the LookupService miss path hands us.
  const std::size_t m = config_.pq_m;
  thread_local std::vector<std::uint8_t> gathered;
  if (gathered.size() < n * m) gathered.resize(n * m);
  for (std::size_t i = 0; i < n; ++i) {
    ANCHOR_CHECK_LT(ids[i], vocab_size_);
    const Shard& shard = shards_[ids[i] % shards_.size()];
    std::memcpy(gathered.data() + i * m,
                shard.codes.data() + (ids[i] / shards_.size()) * m, m);
  }
  la::kernels::pq_decode_rows(gathered.data(), n, m, dim_ / m,
                              std::size_t{1} << config_.pq_bits,
                              pq_flat_.data(), out);
}

std::size_t EmbeddingSnapshot::memory_bytes() const {
  // Every owned buffer: row storage, shared PQ codebooks, and the OOV
  // table (bucket vectors + contribution counts) — the table alone is
  // bucket_count·dim floats and can dwarf a small store, so leaving it out
  // made total_memory_bytes() under-report the resident footprint.
  std::size_t total = pq_flat_.size() * sizeof(float) +
                      oov_table_.size() * sizeof(float) +
                      oov_counts_.size() * sizeof(std::uint32_t);
  for (const Shard& s : shards_) {
    total += s.fp32.size() * sizeof(float) + s.codes.size();
  }
  return total;
}

std::string EmbeddingSnapshot::encoding() const {
  if (config_.pq_m > 0) {
    return "pq:" + std::to_string(config_.pq_m) + "x" +
           std::to_string(config_.pq_bits);
  }
  if (config_.bits == 32) return "fp32";
  return "int" + std::to_string(config_.bits);
}

std::vector<std::vector<float>> EmbeddingSnapshot::pq_codebook_vectors()
    const {
  std::vector<std::vector<float>> out(config_.pq_m);
  if (config_.pq_m == 0) return out;
  const std::size_t per = pq_flat_.size() / config_.pq_m;
  for (std::size_t s = 0; s < config_.pq_m; ++s) {
    out[s].assign(pq_flat_.begin() + s * per, pq_flat_.begin() + (s + 1) * per);
  }
  return out;
}

const std::uint8_t* EmbeddingSnapshot::pq_row_codes(std::size_t w) const {
  ANCHOR_CHECK_MSG(config_.pq_m > 0, "pq_row_codes on a non-pq snapshot");
  ANCHOR_CHECK_LT(w, vocab_size_);
  const Shard& shard = shards_[w % shards_.size()];
  return shard.codes.data() + (w / shards_.size()) * config_.pq_m;
}

void EmbeddingSnapshot::build_oov_table(const embed::Embedding& source) {
  oov_config_.dim = dim_;
  oov_config_.bucket_count = 1u << 12;  // 4096 buckets is plenty at our scale
  oov_table_.assign(oov_config_.bucket_count * dim_, 0.0f);
  std::vector<std::uint32_t> counts(oov_config_.bucket_count, 0);
  // Scatter-average every in-vocabulary word's vector into its n-gram
  // buckets; an OOV word then composes from the buckets its own n-grams
  // share with known words (the fastText compositionality assumption).
  for (std::size_t w = 0; w < vocab_size_; ++w) {
    const auto buckets = embed::word_ngram_buckets(
        text::Corpus::word_string(static_cast<std::int32_t>(w)), oov_config_);
    for (const std::uint32_t b : buckets) {
      const float* row = source.row(w);
      float* bucket = oov_table_.data() + static_cast<std::size_t>(b) * dim_;
      for (std::size_t j = 0; j < dim_; ++j) bucket[j] += row[j];
      ++counts[b];
    }
  }
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    float* bucket = oov_table_.data() + b * dim_;
    const float inv = 1.0f / static_cast<float>(counts[b]);
    for (std::size_t j = 0; j < dim_; ++j) bucket[j] *= inv;
  }
  oov_counts_ = std::move(counts);
}

bool EmbeddingSnapshot::synthesize_oov(const std::string& word,
                                       float* out) const {
  std::fill(out, out + dim_, 0.0f);
  if (oov_table_.empty()) return false;
  const auto buckets = embed::word_ngram_buckets(word, oov_config_);
  std::size_t used = 0;
  for (const std::uint32_t b : buckets) {
    if (oov_counts_[b] == 0) continue;  // bucket never seen in-vocab
    const float* bucket = oov_table_.data() + static_cast<std::size_t>(b) * dim_;
    for (std::size_t j = 0; j < dim_; ++j) out[j] += bucket[j];
    ++used;
  }
  if (used == 0) return false;
  const float inv = 1.0f / static_cast<float>(used);
  for (std::size_t j = 0; j < dim_; ++j) out[j] *= inv;
  return true;
}

la::Matrix EmbeddingSnapshot::to_matrix(std::size_t max_rows) const {
  const std::size_t rows =
      max_rows == 0 ? vocab_size_ : std::min(max_rows, vocab_size_);
  la::Matrix m(rows, dim_);
  const std::size_t num_shards = shards_.size();
  if (config_.pq_m > 0) {
    // PQ: like the quantized path below, each shard's local rows are
    // contiguous code bytes (stride pq_m), so the needed span decodes in
    // one fused call per shard, then scatters to word order.
    const std::size_t pm = config_.pq_m;
    const std::size_t sub_dim = dim_ / pm;
    const std::size_t ksub = std::size_t{1} << config_.pq_bits;
    std::vector<float> scratch;
    for (std::size_t s = 0; s < num_shards; ++s) {
      const std::size_t local_rows =
          rows / num_shards + (s < rows % num_shards ? 1 : 0);
      if (local_rows == 0) continue;
      if (scratch.size() < local_rows * dim_) scratch.resize(local_rows * dim_);
      la::kernels::pq_decode_rows(shards_[s].codes.data(), local_rows, pm,
                                  sub_dim, ksub, pq_flat_.data(),
                                  scratch.data());
      for (std::size_t l = 0; l < local_rows; ++l) {
        const float* src = scratch.data() + l * dim_;
        double* dst = m.row(l * num_shards + s);
        for (std::size_t j = 0; j < dim_; ++j) dst[j] = src[j];
      }
    }
    return m;
  }
  if (config_.bits == 32) {
    for (std::size_t w = 0; w < rows; ++w) {
      const float* src =
          shards_[w % num_shards].fp32.data() + (w / num_shards) * dim_;
      double* dst = m.row(w);
      for (std::size_t j = 0; j < dim_; ++j) dst[j] = src[j];
    }
    return m;
  }
  // Quantized: each shard's local rows are contiguous in its code block, so
  // the whole needed span unpacks in one fused dequantize_rows call into a
  // scratch sized once (the largest shard), then scatters to word order
  // (word w lives at local row w / S of shard w % S).
  std::vector<float> scratch;
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::size_t local_rows =
        rows / num_shards + (s < rows % num_shards ? 1 : 0);
    if (local_rows == 0) continue;
    if (scratch.size() < local_rows * dim_) scratch.resize(local_rows * dim_);
    la::kernels::dequantize_rows(shards_[s].codes.data(), local_rows, dim_,
                                 config_.bits, clip_, scratch.data());
    for (std::size_t l = 0; l < local_rows; ++l) {
      const float* src = scratch.data() + l * dim_;
      double* dst = m.row(l * num_shards + s);
      for (std::size_t j = 0; j < dim_; ++j) dst[j] = src[j];
    }
  }
  return m;
}

namespace {

/// B·Ω with Ω fit on the shared-vocabulary prefix of live vs source —
/// the Appendix C.2 alignment, applied at ingestion time. Writes the
/// rotated rows into `*out` and returns true; returns false WITHOUT
/// allocating anything when there is nothing to align against
/// (dimension mismatch, or too few shared rows for a full-rank fit).
bool align_to_incumbent(const EmbeddingSnapshot& live,
                        const embed::Embedding& source,
                        std::size_t align_rows, embed::Embedding* out) {
  if (live.dim() != source.dim) return false;
  std::size_t rows = std::min(live.vocab_size(), source.vocab_size);
  if (align_rows > 0) rows = std::min(rows, align_rows);
  if (rows < source.dim) return false;  // BᵀA would be rank-deficient

  const la::Matrix a = live.to_matrix(rows);
  la::Matrix b(rows, source.dim);
  for (std::size_t w = 0; w < rows; ++w) {
    const float* src = source.row(w);
    double* dst = b.row(w);
    for (std::size_t j = 0; j < source.dim; ++j) dst[j] = src[j];
  }
  const la::Matrix omega = la::procrustes_rotation(a, b);

  // Rotate every row: y = Ωᵀ·x (row-vector convention x·Ω), written
  // straight into the output matrix.
  la::Matrix omega_t(source.dim, source.dim);
  for (std::size_t r = 0; r < source.dim; ++r) {
    for (std::size_t c = 0; c < source.dim; ++c) {
      omega_t(r, c) = omega(c, r);
    }
  }
  *out = embed::Embedding(source.vocab_size, source.dim);
  std::vector<double> x(source.dim), y(source.dim);
  for (std::size_t w = 0; w < source.vocab_size; ++w) {
    const float* src = source.row(w);
    float* dst = out->row(w);
    for (std::size_t j = 0; j < source.dim; ++j) x[j] = src[j];
    la::kernels::matvec_rowmajor(omega_t.data(), source.dim, source.dim,
                                 x.data(), y.data());
    for (std::size_t j = 0; j < source.dim; ++j) {
      dst[j] = static_cast<float>(y[j]);
    }
  }
  return true;
}

}  // namespace

SnapshotPtr EmbeddingStore::add_version(const std::string& version,
                                        const embed::Embedding& source,
                                        const SnapshotConfig& config) {
  ANCHOR_CHECK_MSG(!version.empty(), "version id must be non-empty");
  ANCHOR_CHECK_MSG(version.find_first_of(",\n\r") == std::string::npos,
                   "version id must not contain commas or newlines (it is "
                   "written to CSV audit logs)");
  std::uint64_t epoch = 0;
  SnapshotPtr incumbent;
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch = next_epoch_++;
    incumbent = live_;
  }
  // Alignment and snapshot construction (clip scan, quantization, OOV
  // table) are O(vocab·dim) and up — done outside the lock so concurrent
  // lookups never stall on an ingest.
  bool aligned = false;
  embed::Embedding aligned_copy;
  const embed::Embedding* rows = &source;
  if (config.align_to_live && incumbent) {
    aligned = align_to_incumbent(*incumbent, source, config.align_rows,
                                 &aligned_copy);
    if (aligned) rows = &aligned_copy;
  }
  auto snap = std::make_shared<const EmbeddingSnapshot>(version, *rows, config,
                                                        epoch, aligned);
  std::lock_guard<std::mutex> lock(mu_);
  versions_[version] = snap;
  if (!live_) live_ = snap;
  return snap;
}

SnapshotPtr EmbeddingStore::load_version(const std::string& version,
                                         const std::filesystem::path& path,
                                         const SnapshotConfig& config) {
  return add_version(version, embed::load_text(path), config);
}

SnapshotPtr EmbeddingStore::snapshot(const std::string& version) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = versions_.find(version);
  return it == versions_.end() ? nullptr : it->second;
}

bool EmbeddingStore::has_version(const std::string& version) const {
  std::lock_guard<std::mutex> lock(mu_);
  return versions_.count(version) > 0;
}

std::vector<std::string> EmbeddingStore::versions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(versions_.size());
  for (const auto& [id, snap] : versions_) out.push_back(id);
  return out;
}

SnapshotPtr EmbeddingStore::live() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_;
}

std::string EmbeddingStore::live_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_ ? live_->version() : std::string();
}

void EmbeddingStore::set_live(const std::string& version) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = versions_.find(version);
  ANCHOR_CHECK_MSG(it != versions_.end(),
                   "cannot promote unknown version '" << version << "'");
  live_ = it->second;
}

bool EmbeddingStore::set_live_snapshot(const SnapshotPtr& snap) {
  ANCHOR_CHECK_MSG(snap != nullptr, "cannot promote a null snapshot");
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = versions_.find(snap->version());
  if (it == versions_.end() || it->second != snap) return false;
  live_ = snap;
  return true;
}

void EmbeddingStore::remove_version(const std::string& version) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = versions_.find(version);
  ANCHOR_CHECK_MSG(it != versions_.end(),
                   "cannot remove unknown version '" << version << "'");
  // Also refuse when the live snapshot merely *shares the name*: a same-name
  // re-register leaves live_ pointing at the older snapshot, and erasing the
  // entry would have the store serving a version it denies knowing.
  ANCHOR_CHECK_MSG(!live_ || version != live_->version(),
                   "cannot remove the live version");
  // The registry's own reference is the only one allowed at removal time:
  // anything beyond it is an outside pin (a canary's pin_snapshot, an
  // AnnService index cache, an in-flight reader) that would otherwise have
  // its version dropped mid-flight. Acquisition always happens under mu_,
  // so this probe cannot race a new pin into existence; a concurrent
  // release only makes us refuse conservatively.
  ANCHOR_CHECK_MSG(it->second.use_count() <= 1,
                   "cannot remove version '"
                       << version << "': " << (it->second.use_count() - 1)
                       << " outside holder(s) still pin its snapshot "
                          "(canary pin, AnnService cache, or in-flight "
                          "reader); retry after they release it");
  versions_.erase(it);
}

std::size_t EmbeddingStore::total_memory_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& [id, snap] : versions_) total += snap->memory_bytes();
  return total;
}

}  // namespace anchor::serve
