// Online canarying: shadow-traffic agreement between embedding versions.
//
// The paper's offline measures (EIS, k-NN overlap) predict downstream
// damage from a refresh *before* any query touches the candidate — but
// prediction is not observation. This module adds the observation: a
// CanaryRouter sits between the serving front-end and the versioned
// EmbeddingStore and deterministically hashes a configurable fraction of
// lookup keys to the candidate version while the rest keep hitting the
// incumbent. A sample of the canary-routed keys is additionally
// *shadowed* — mirrored to the incumbent — so every shadowed key yields a
// (candidate, incumbent) vector pair from real traffic, from which the
// router measures
//   • online top-k agreement: the key's k nearest neighbors within a
//     fixed probe-row panel, computed in each version's own space and
//     compared (the online analogue of the paper's k-NN overlap measure;
//     rotation-invariant, so Procrustes alignment does not mask churn),
//   • per-key displacement: 1 − cos between the two versions' vectors
//     for the same key (coordinate-level drift; near zero only when
//     ingestion aligned the candidate to the incumbent — see
//     SnapshotConfig::align_to_live),
//   • latency deltas between the mirrored lookups,
// all recorded in lock-free CanaryStats counters + obs::LogHistograms
// (same discipline as ServeStats: recording never takes a lock).
//
// Promotion is two-phase (DeploymentGate::try_promote overload): phase 1
// is the offline gate as before; phase 2 lets the router watch the
// agreement estimate and auto-promote once its lower confidence bound
// clears `promote_agreement` — or auto-roll-back when the upper bound
// falls under `rollback_agreement` or displacement blows its budget.
// Both outcomes append to the gate's audit log, so the rollout history
// shows WHY a candidate went live (or did not): measured online
// agreement, not just offline prediction.
#pragma once

#include <atomic>
#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "la/matrix.hpp"
#include "obs/log_histogram.hpp"
#include "serve/batcher.hpp"
#include "serve/deployment_gate.hpp"
#include "serve/embedding_store.hpp"
#include "serve/lookup_service.hpp"

namespace anchor::serve {

struct CanaryConfig {
  /// Fraction of lookup keys deterministically routed to the candidate
  /// (hash-split on the key, not the request, so a key's routing is
  /// stable for the whole canary).
  double fraction = 0.10;
  /// Of the candidate-routed keys, the fraction that is also mirrored to
  /// the incumbent to produce an agreement sample. This is the knob that
  /// prices the measurement: shadow lookups are extra incumbent traffic.
  double shadow_rate = 0.10;
  /// Neighbors per agreement probe (the online k of k-NN overlap).
  std::size_t knn_k = 5;
  /// Fixed probe-row panel size: each shadowed key's neighbors are
  /// computed against these rows in both versions. 2·probe_rows·dim
  /// flops per shadow sample.
  std::size_t probe_rows = 256;
  /// Decision bounds. No decision before `min_shadows` samples; promote
  /// once the Hoeffding lower bound of mean agreement ≥ promote_agreement
  /// (and displacement is within budget); roll back once the upper bound
  /// ≤ rollback_agreement or mean displacement confidently exceeds
  /// `max_displacement`; at `max_shadows` the point estimate decides.
  std::size_t min_shadows = 64;
  std::size_t max_shadows = 8192;
  double promote_agreement = 0.70;
  double rollback_agreement = 0.40;
  /// Mean per-key displacement (1 − cos ∈ [0, 2]) budget. Catches
  /// coordinate-level drift that neighbor structure alone cannot see —
  /// an unaligned rotation has perfect agreement but displaces every
  /// vector, breaking any consumer that mixes versions mid-flight.
  double max_displacement = 0.25;
  /// Two-sided confidence of the Hoeffding bounds used for the
  /// auto-decision.
  double confidence = 0.99;
  /// Seed for the routing/shadow hash split and the probe-row sample.
  /// Routing is a pure function of (seed, fraction, key), so a fixed key
  /// set routes identically across runs and router instances.
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  /// Candidate-side serving stack (the canary's own LookupService →
  /// AsyncLookupService over the pinned candidate snapshot).
  LookupConfig candidate_lookup;
  BatcherConfig candidate_batcher;
  /// When set, the candidate-side stack records into these shared
  /// counters instead of private ones. The RPC server shares its own,
  /// so a Stats query keeps reporting ALL traffic while a canary runs
  /// (candidate-routed lookups would otherwise vanish from it).
  std::shared_ptr<ServeStats> candidate_service_stats = nullptr;
  std::shared_ptr<ServeStats> candidate_batcher_stats = nullptr;
};

enum class CanaryState : std::uint8_t {
  kNone = 0,            // no canary ever started (status reporting only)
  kOfflineRejected = 1, // phase 1 rejected; router was never installed
  kRunning = 2,         // routing traffic, collecting shadow samples
  kPromoted = 3,        // auto-promoted: candidate is live
  kRolledBack = 4,      // auto-rolled-back: incumbent kept live
  kAborted = 5,         // operator abort: incumbent kept live
};

std::string canary_state_name(CanaryState s);

/// One per-key displacement outlier: a shadowed key whose candidate
/// vector moved unusually far from its incumbent vector. The worst-k of
/// these name WHICH keys a refresh hurts — the first thing an operator
/// wants after "displacement is high".
struct CanaryWorstKey {
  std::uint64_t key = 0;
  double displacement = 0.0;
};

/// Point-in-time view of a canary's online measurements.
struct CanaryStatsSnapshot {
  std::uint64_t candidate_lookups = 0;  // keys served by the candidate
  std::uint64_t incumbent_lookups = 0;  // keys served by the incumbent
  std::uint64_t shadows = 0;            // agreement samples collected
  double mean_agreement = 0.0;          // running mean of top-k overlap
  double agreement_lower = 0.0;         // Hoeffding bounds at `confidence`
  double agreement_upper = 0.0;
  double mean_displacement = 0.0;       // running mean of 1 − cos
  double mean_latency_delta_us = 0.0;   // candidate − incumbent, per shadow
  /// Medians over EVERY shadow sample of the canary, from the mergeable
  /// histograms (bucket lower bound, ≤ 1/32 relative error). The old
  /// fixed ring covered only the last 2048 samples, so a long canary's
  /// median silently narrowed to its most recent window.
  double p50_agreement = 0.0;
  double p50_displacement = 0.0;
  /// Worst per-key displacement outliers, worst first (id-keyed traffic
  /// only; deduplicated by key, each key reporting its max).
  std::vector<CanaryWorstKey> worst_keys;

  std::string summary() const;
};

/// Lock-free online-measurement counters + mergeable sample histograms.
/// record_* never takes a lock; snapshot() pays the aggregation cost.
/// Decision math reads the exact running sums; the histograms serve the
/// display-grade medians (all samples since the canary started — no ring
/// to alias old samples out of a long canary's window).
class CanaryStats {
 public:
  /// Key value meaning "no key identity available" (word traffic): the
  /// sample still feeds every aggregate, it just can't enter worst_keys.
  static constexpr std::uint64_t kNoKey = ~0ull;

  void record_candidate(std::uint64_t keys) {
    candidate_lookups_.fetch_add(keys, std::memory_order_relaxed);
  }
  void record_incumbent(std::uint64_t keys) {
    incumbent_lookups_.fetch_add(keys, std::memory_order_relaxed);
  }
  /// One shadowed key: agreement ∈ [0,1], displacement ∈ [0,2], latency
  /// delta in µs (candidate − incumbent; may be negative). `key`
  /// identifies the row for worst-k outlier tracking (kNoKey = skip it);
  /// that one bookkeeping step takes a mutex, but only when the sample
  /// beats (or is) a current worst-k entry — the common case is a single
  /// relaxed load + compare.
  void record_shadow(double agreement, double displacement,
                     double latency_delta_us, std::uint64_t key = kNoKey);

  std::uint64_t shadows() const {
    return shadows_.load(std::memory_order_acquire);
  }
  /// Bounds at `confidence` via Hoeffding's inequality (agreement range
  /// [0,1]); exact running-sum means. `with_medians` = false skips the
  /// histogram medians (a bucket walk per median) — the auto-decision
  /// path runs on every request and needs only the sums; the medians are
  /// status-display material.
  CanaryStatsSnapshot snapshot(double confidence,
                               bool with_medians = true) const;

 private:
  static constexpr double kMicro = 1e6;  // fixed-point unit for the sums
  /// Worst-k capacity: small on purpose — the report names the headline
  /// outliers, the audit CSV and status RPC are not a full histogram.
  static constexpr std::size_t kWorstK = 8;

  std::atomic<std::uint64_t> candidate_lookups_{0};
  std::atomic<std::uint64_t> incumbent_lookups_{0};
  std::atomic<std::uint64_t> shadows_{0};
  std::atomic<std::uint64_t> agreement_sum_micro_{0};
  std::atomic<std::uint64_t> displacement_sum_micro_{0};
  std::atomic<std::int64_t> latency_delta_sum_micro_{0};
  /// Sample distributions (agreement ∈ [0,1], displacement ∈ [0,2]):
  /// lock-free, mergeable, and covering every sample since start.
  obs::LogHistogram agreement_hist_;
  obs::LogHistogram displacement_hist_;

  /// Worst-k per-key displacement outliers: a min-heap on displacement
  /// (front = easiest to displace from the set), deduplicated by key.
  /// `worst_floor_` caches the heap minimum (or −1 while not full) so the
  /// hot path can skip the mutex for the overwhelming majority of samples.
  mutable std::mutex worst_mu_;
  std::vector<CanaryWorstKey> worst_;
  std::atomic<double> worst_floor_{-1.0};
};

/// Phase 2 of a two-phase promotion: routes traffic between incumbent
/// and candidate, measures online agreement on shadowed keys, and flips
/// (or refuses to flip) the store's live version on its own once the
/// evidence is in. Construct via DeploymentGate::try_promote(store,
/// candidate, traffic, canary_config, &offline).
///
/// Thread-safe: lookups may come from any number of serving threads; the
/// decision runs exactly once under an internal mutex. Incumbent-side
/// traffic flows through the caller's AsyncLookupService (so canary and
/// regular traffic coalesce into the same batches); candidate-side
/// traffic flows through the router's own async stack pinned to the
/// evaluated candidate snapshot.
class CanaryRouter {
 public:
  /// Use DeploymentGate::try_promote — this constructor is public for
  /// tests that want to drive phase 2 without phase 1.
  CanaryRouter(EmbeddingStore& store, AsyncLookupService& incumbent_traffic,
               SnapshotPtr incumbent, SnapshotPtr candidate,
               GateReport offline, CanaryConfig config,
               std::filesystem::path audit_log = {});
  ~CanaryRouter();
  CanaryRouter(const CanaryRouter&) = delete;
  CanaryRouter& operator=(const CanaryRouter&) = delete;

  /// Deterministic routing predicates (pure functions of config + key).
  bool routes_to_candidate(std::size_t key) const;
  bool routes_to_candidate(const std::string& word) const;
  /// True when a candidate-routed key is also mirrored to the incumbent.
  bool shadows_key(std::size_t key) const;

  /// Serving entry points: split by key hash, execute both sides through
  /// their async stacks, merge back into request order, score shadowed
  /// keys, and run the auto-decision. After a terminal state everything
  /// routes to whatever the store serves live (candidate after a
  /// promotion, incumbent otherwise). `out->version` reports the version
  /// that served the majority of the request's keys (ties → incumbent).
  void lookup_ids_into(const std::vector<std::size_t>& ids,
                       LookupResult* out);
  void lookup_words_into(const std::vector<std::string>& words,
                         LookupResult* out);

  CanaryState state() const {
    return state_.load(std::memory_order_acquire);
  }
  bool active() const {
    // seq_cst: half of the drain handshake (see InflightGuard in the
    // .cpp) — the routing thread increments inflight_ and THEN reads
    // this flag; both must be in the seq_cst total order for the drain
    // wait to be sound.
    return state() == CanaryState::kRunning &&
           !draining_.load(std::memory_order_seq_cst);
  }
  /// Operator abort: stops routing, keeps the incumbent live, writes the
  /// audit row. No-op unless running. With `drain` set, new requests
  /// immediately stop routing to the candidate but the in-flight routed
  /// lookups are waited for (bounded by kDrainTimeout), so every shadow
  /// already in motion lands in the final scored status instead of being
  /// discarded mid-measurement.
  void abort(bool drain = false);

  const GateReport& offline_report() const { return offline_; }
  const std::string& incumbent_version() const { return incumbent_name_; }
  const std::string& candidate_version() const { return candidate_name_; }
  const CanaryConfig& config() const { return config_; }
  CanaryStatsSnapshot stats() const {
    return stats_.snapshot(config_.confidence);
  }
  /// Reason attached to the terminal decision ("" while running).
  std::string decision_reason() const;

 private:
  struct Pending;  // one in-flight sub-lookup (fast or general path)

  /// Shared body of lookup_ids_into / lookup_words_into: Key is
  /// std::size_t or std::string; everything key-specific (routing hash,
  /// fast-path eligibility, probe self-exclusion) resolves through
  /// overloads in the .cpp.
  template <typename Key>
  void route_into(const std::vector<Key>& keys, LookupResult* out);

  /// Scores mirror_slice row j against cand_slice row shadow_cand_rows[j]
  /// and records one CanaryStats sample per non-OOV pair. `shadow_keys`
  /// (row ids; empty for word traffic) enables probe self-exclusion.
  void score_shadows(const std::vector<std::size_t>& shadow_keys,
                     const std::vector<std::uint32_t>& shadow_cand_rows,
                     const ResultSlice& cand_slice,
                     const ResultSlice& mirror_slice,
                     double latency_delta_us);
  /// Top-`knn_k` probe indices of a normalized copy of `vec` against the
  /// given probe panel, excluding `self_probe` (kNoProbe = keep all).
  /// False when the vector is zero (no sample can be scored).
  bool probe_topk(const la::Matrix& probes, const float* vec,
                  std::size_t self_probe, std::vector<int>* out) const;
  void maybe_decide();
  void decide(CanaryState terminal, const std::string& reason);

  EmbeddingStore& store_;
  AsyncLookupService& incumbent_traffic_;
  SnapshotPtr incumbent_;
  SnapshotPtr candidate_;
  std::string incumbent_name_;
  std::string candidate_name_;
  GateReport offline_;
  CanaryConfig config_;
  std::filesystem::path audit_log_;
  std::uint64_t route_threshold_ = 0;   // hash < threshold → candidate
  std::uint64_t shadow_threshold_ = 0;  // second hash < threshold → shadow

  LookupService candidate_service_;
  AsyncLookupService candidate_async_;

  /// Probe panel: row ids sampled once at start plus each version's
  /// L2-normalized probe rows (probe_rows × dim, that version's space).
  std::vector<std::size_t> probe_ids_;
  std::unordered_map<std::size_t, std::size_t> probe_index_;
  la::Matrix probes_incumbent_;
  la::Matrix probes_candidate_;

  CanaryStats stats_;
  std::atomic<CanaryState> state_{CanaryState::kRunning};
  /// Set by abort(drain): active() turns false (new requests route live)
  /// while in-flight route_into calls — counted by inflight_ — finish
  /// scoring their shadows before the terminal decision is written.
  std::atomic<bool> draining_{false};
  std::atomic<int> inflight_{0};
  mutable std::mutex decide_mu_;
  std::string decision_reason_;
};

}  // namespace anchor::serve
