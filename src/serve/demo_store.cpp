#include "serve/demo_store.hpp"

#include "util/rng.hpp"

namespace anchor::serve {

void add_demo_versions(EmbeddingStore& store, const DemoStoreConfig& config) {
  embed::Embedding base(config.vocab, config.dim);
  Rng rng(config.seed);
  for (auto& x : base.data) x = static_cast<float>(rng.normal(0.0, 1.0));

  embed::Embedding refreshed = base;
  Rng refresh_rng(config.seed ^ 0x5bd1e995u);
  for (auto& x : refreshed.data) {
    x += static_cast<float>(refresh_rng.normal(0.0, config.refresh_noise));
  }

  // A different seed is a different latent space: nearest-neighbor
  // structure is unrelated to v1's, which is what the gate's k-NN measure
  // is built to catch.
  embed::Embedding botched(config.vocab, config.dim);
  Rng bad_rng(config.seed * 2654435761u + 1);
  for (auto& x : botched.data) x = static_cast<float>(bad_rng.normal(0.0, 1.0));

  SnapshotConfig snap;
  snap.bits = config.bits;
  snap.pq_m = config.pq_m;
  snap.pq_bits = config.pq_bits;
  snap.num_shards = config.num_shards;
  snap.build_oov_table = config.build_oov_table;
  store.add_version("v1", base, snap);
  snap.align_to_live = config.align_to_live;  // v1 has no incumbent anyway
  store.add_version("v2-good", refreshed, snap);
  store.add_version("v3-bad", botched, snap);
}

}  // namespace anchor::serve
