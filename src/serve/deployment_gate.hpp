// Instability-gated version promotion — the paper's contribution turned
// into a serving-side control.
//
// Table 1 of the paper shows that the eigenspace instability measure (and,
// more weakly, 1 − k-NN overlap) of an embedding pair predicts how much the
// downstream predictions built on them will churn. The DeploymentGate
// operationalizes that: before a candidate snapshot goes live, it computes
// both measures between the incumbent and the candidate on their shared
// vocabulary and admits, warns, or rejects against configurable thresholds —
// catching a churn-heavy refresh *before* any downstream model retrains,
// which is exactly the decision the paper's introduction asks an embedding-
// server engineer to make.
//
// Every evaluation can be appended to a CSV audit log (core/report-style:
// fixed header, one row per decision) so rollout history is inspectable
// offline.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "serve/embedding_store.hpp"

namespace anchor::serve {

struct GateConfig {
  /// Eigenspace instability thresholds (Definition 2; larger = more churn
  /// expected). Candidates land in [0, warn) → admit, [warn, reject) →
  /// warn-but-admit, [reject, ∞) → reject.
  double eis_warn = 0.05;
  double eis_reject = 0.15;
  /// Thresholds on 1 − k-NN overlap, the paper's second-best predictor.
  double knn_warn = 0.30;
  double knn_reject = 0.60;
  double alpha = 3.0;                // eigenvalue-importance exponent (Tab. 8)
  std::size_t knn_k = 5;             // neighbors per query
  std::size_t knn_queries = 256;     // sampled query words
  std::uint64_t knn_seed = 42;
  /// Vocabulary subsample for the measure computation (0 = full shared
  /// vocab). Measures are O(n·d²); a few thousand rows track the full-vocab
  /// value closely while keeping the gate interactive.
  std::size_t max_rows = 2048;
  /// When non-empty, every evaluation is appended here as a CSV row.
  std::filesystem::path audit_log;
};

enum class GateDecision { kAdmit, kWarn, kReject };

std::string decision_name(GateDecision d);

/// Audit record of one gate evaluation.
struct GateReport {
  std::string old_version;
  std::string new_version;
  GateDecision decision = GateDecision::kAdmit;
  double eis = 0.0;            // eigenspace instability, old vs new
  double one_minus_knn = 0.0;  // 1 − k-NN overlap, old vs new
  std::size_t rows_compared = 0;
  bool promoted = false;       // try_promote flipped live to new_version
  std::string reason;          // human-readable threshold explanation
};

class AsyncLookupService;
class CanaryRouter;
struct CanaryConfig;

class DeploymentGate {
 public:
  explicit DeploymentGate(GateConfig config = {});

  /// Computes the measures between incumbent and candidate and applies the
  /// thresholds. Does not touch any store; `promoted` is left false.
  GateReport evaluate(const EmbeddingSnapshot& incumbent,
                      const EmbeddingSnapshot& candidate) const;

  /// Gates `candidate_version` against the store's live snapshot and
  /// promotes it when the decision is admit or warn. With no incumbent the
  /// candidate is admitted unconditionally (there is nothing to churn
  /// against). Appends to the audit log when configured. Throws when the
  /// candidate version is unknown.
  GateReport try_promote(EmbeddingStore& store,
                         const std::string& candidate_version) const;

  /// Two-phase promotion (the ROADMAP's online-canarying rung). Phase 1
  /// runs the offline EIS/k-NN gate exactly like the overload above but
  /// does NOT flip live on admit — instead it returns a running
  /// CanaryRouter that routes `canary.fraction` of lookup keys to the
  /// candidate while mirroring a shadow sample to the incumbent; the
  /// router auto-promotes (or auto-rolls-back) once the online top-k
  /// agreement estimate crosses the configured confidence bounds
  /// (phase 2). Returns nullptr when phase 1 rejects, when there is no
  /// incumbent (the candidate is promoted outright — nothing to canary
  /// against), or when the candidate is already live; `*offline` always
  /// receives the phase-1 report. Both phases append to the audit log
  /// when configured. Throws on unknown candidate version or dimension
  /// mismatch. Defined in serve/canary.cpp.
  std::shared_ptr<CanaryRouter> try_promote(
      EmbeddingStore& store, const std::string& candidate_version,
      AsyncLookupService& incumbent_traffic, const CanaryConfig& canary,
      GateReport* offline = nullptr) const;

  const GateConfig& config() const { return config_; }

 private:
  GateConfig config_;
};

/// Appends `report` to a CSV audit log at `path`, writing the header first
/// when the file does not exist yet.
void append_audit_csv(const std::filesystem::path& path,
                      const GateReport& report);

/// Reads back an audit log written by append_audit_csv. Throws on missing
/// file or malformed rows.
std::vector<GateReport> read_audit_csv(const std::filesystem::path& path);

}  // namespace anchor::serve
