#include "serve/deployment_gate.hpp"

#include <algorithm>
#include <fstream>
#include <mutex>
#include <sstream>

#include "core/measures.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace anchor::serve {

namespace {

constexpr char kAuditHeader[] =
    "old_version,new_version,decision,eis,one_minus_knn,rows_compared,"
    "promoted,reason";

GateDecision worse(GateDecision a, GateDecision b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

// The audit format has no quoting, so free-text fields (version ids come
// from callers, reasons are gate-generated) are defanged before writing:
// one bad row must never make the whole log unparseable.
std::string csv_safe(std::string s) {
  for (char& c : s) {
    if (c == ',' || c == '\n' || c == '\r') c = ';';
  }
  return s;
}

}  // namespace

std::string decision_name(GateDecision d) {
  switch (d) {
    case GateDecision::kAdmit:
      return "admit";
    case GateDecision::kWarn:
      return "warn";
    case GateDecision::kReject:
      return "reject";
  }
  ANCHOR_CHECK_MSG(false, "unknown GateDecision");
  return "";
}

DeploymentGate::DeploymentGate(GateConfig config)
    : config_(std::move(config)) {
  ANCHOR_CHECK_LE(config_.eis_warn, config_.eis_reject);
  ANCHOR_CHECK_LE(config_.knn_warn, config_.knn_reject);
}

GateReport DeploymentGate::evaluate(const EmbeddingSnapshot& incumbent,
                                    const EmbeddingSnapshot& candidate) const {
  GateReport report;
  report.old_version = incumbent.version();
  report.new_version = candidate.version();

  // Shared vocabulary: rows are word ids in both snapshots, so the common
  // prefix [0, min vocab) is the comparable set; subsampling keeps the
  // O(n·d²) measures interactive at serving time.
  std::size_t rows = std::min(incumbent.vocab_size(), candidate.vocab_size());
  if (config_.max_rows > 0) rows = std::min(rows, config_.max_rows);
  report.rows_compared = rows;

  const la::Matrix x = incumbent.to_matrix(rows);
  const la::Matrix x_tilde = candidate.to_matrix(rows);

  // The two measures read the same immutable matrices and are independent.
  // Each snapshot is row-normalized exactly once (knn_measure would
  // otherwise build its own copies) and the normalized pair is what the
  // parallel query scoring shares.
  const auto one_minus_knn = [&] {
    const la::Matrix nx = core::normalize_rows_l2(x);
    const la::Matrix nxt = core::normalize_rows_l2(x_tilde);
    return 1.0 - core::knn_measure_normalized(nx, nxt, config_.knn_k,
                                              config_.knn_queries,
                                              config_.knn_seed);
  };
  // The incumbent/candidate pair doubles as the reference pair defining
  // Σ = (EEᵀ)^α + (ẼẼᵀ)^α — the serving-time analogue of the paper using
  // the highest-dimensional full-precision pair as the reference. Because
  // the reference pair *is* the evaluated pair, ctx.v / ctx.v_tilde already
  // hold the left singular vectors of x / x̃ — reusing them instead of
  // calling eigenspace_instability_of halves the SVD work per evaluation
  // (bit-identical result: same deterministic SVD of the same matrices).
  const auto eis = [&] {
    const auto ctx = core::EisContext::build(x, x_tilde, config_.alpha);
    return core::eigenspace_instability(ctx.v, ctx.v_tilde, ctx);
  };

  if (util::ThreadPool::on_worker_thread()) {
    // Already inside the pool (e.g. a canarying job evaluating gates in
    // parallel): submit-and-get from a worker would block a pool slot on a
    // task queued behind it — run sequentially instead; both measures
    // still fan out internally via nested parallel_for.
    report.eis = eis();
    report.one_minus_knn = one_minus_knn();
  } else {
    // Overlap the kNN overlap with the SVD-heavy instability work (whose
    // Jacobi sweeps are inherently serial).
    auto knn_future = util::global_pool().submit(one_minus_knn);
    try {
      report.eis = eis();
    } catch (...) {
      // The worker still reads x / x_tilde; futures from packaged_task do
      // not block on destruction, so join it before unwinding frees them.
      knn_future.wait();
      throw;
    }
    report.one_minus_knn = knn_future.get();
  }

  GateDecision eis_decision = GateDecision::kAdmit;
  if (report.eis >= config_.eis_reject) {
    eis_decision = GateDecision::kReject;
  } else if (report.eis >= config_.eis_warn) {
    eis_decision = GateDecision::kWarn;
  }
  GateDecision knn_decision = GateDecision::kAdmit;
  if (report.one_minus_knn >= config_.knn_reject) {
    knn_decision = GateDecision::kReject;
  } else if (report.one_minus_knn >= config_.knn_warn) {
    knn_decision = GateDecision::kWarn;
  }
  report.decision = worse(eis_decision, knn_decision);

  std::ostringstream reason;
  reason << "eis=" << report.eis << " (" << decision_name(eis_decision)
         << ") 1-knn=" << report.one_minus_knn << " ("
         << decision_name(knn_decision) << ")";
  report.reason = reason.str();
  return report;
}

GateReport DeploymentGate::try_promote(
    EmbeddingStore& store, const std::string& candidate_version) const {
  const SnapshotPtr candidate = store.snapshot(candidate_version);
  ANCHOR_CHECK_MSG(candidate != nullptr,
                   "unknown candidate version '" << candidate_version << "'");
  const SnapshotPtr incumbent = store.live();

  GateReport report;
  // Identity, not name: add_version may have re-registered the live version
  // id with a brand-new snapshot, and that refresh must still be gated.
  if (!incumbent || incumbent == candidate) {
    report.old_version = incumbent ? incumbent->version() : "";
    report.new_version = candidate_version;
    report.decision = GateDecision::kAdmit;
    report.reason = incumbent ? "candidate is already live" : "no incumbent";
  } else {
    report = evaluate(*incumbent, *candidate);
  }

  if (report.decision != GateDecision::kReject) {
    // Promote the exact snapshot that was gated; a concurrent re-register
    // under the same name must not ride through on it.
    report.promoted = store.set_live_snapshot(candidate);
    if (!report.promoted) {
      report.reason += "; promotion aborted: candidate was re-registered "
                       "during evaluation";
    }
  }
  if (!config_.audit_log.empty()) append_audit_csv(config_.audit_log, report);
  return report;
}

void append_audit_csv(const std::filesystem::path& path,
                      const GateReport& report) {
  // Appenders run on control-plane handlers AND on whichever serving
  // thread a canary auto-decision fires from; a process-wide mutex keeps
  // rows whole and the exists→header sequence atomic.
  static std::mutex audit_mu;
  std::lock_guard<std::mutex> lock(audit_mu);
  const bool fresh = !std::filesystem::exists(path);
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path());
  }
  std::ofstream out(path, std::ios::app);
  ANCHOR_CHECK_MSG(out.good(), "cannot open audit log for appending");
  if (fresh) out << kAuditHeader << '\n';
  out.precision(10);
  out << csv_safe(report.old_version) << ',' << csv_safe(report.new_version)
      << ',' << decision_name(report.decision) << ',' << report.eis << ','
      << report.one_minus_knn << ',' << report.rows_compared << ','
      << (report.promoted ? 1 : 0) << ',' << csv_safe(report.reason) << '\n';
  ANCHOR_CHECK_MSG(out.good(), "write failure while appending audit log");
}

std::vector<GateReport> read_audit_csv(const std::filesystem::path& path) {
  std::ifstream in(path);
  ANCHOR_CHECK_MSG(in.good(), "cannot open audit log for reading");
  std::string line;
  ANCHOR_CHECK_MSG(static_cast<bool>(std::getline(in, line)),
                   "empty audit log");
  ANCHOR_CHECK_MSG(line == kAuditHeader, "unexpected audit log header");

  std::vector<GateReport> reports;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> fields;
    std::stringstream ss(line);
    std::string field;
    // Free-text fields are comma-defanged at write time (csv_safe), so a
    // fixed 8-way split is sufficient. getline never yields a field after a
    // trailing delimiter, so an empty final reason must be restored by hand.
    while (std::getline(ss, field, ',')) fields.push_back(field);
    if (fields.size() == 7 && line.back() == ',') fields.emplace_back();
    ANCHOR_CHECK_MSG(fields.size() == 8, "malformed audit row: " << line);

    GateReport r;
    r.old_version = fields[0];
    r.new_version = fields[1];
    if (fields[2] == "admit") {
      r.decision = GateDecision::kAdmit;
    } else if (fields[2] == "warn") {
      r.decision = GateDecision::kWarn;
    } else if (fields[2] == "reject") {
      r.decision = GateDecision::kReject;
    } else {
      ANCHOR_CHECK_MSG(false, "unknown decision '" << fields[2] << "'");
    }
    r.eis = std::stod(fields[3]);
    r.one_minus_knn = std::stod(fields[4]);
    r.rows_compared = static_cast<std::size_t>(std::stoull(fields[5]));
    r.promoted = fields[6] == "1";
    r.reason = fields[7];
    reports.push_back(std::move(r));
  }
  return reports;
}

}  // namespace anchor::serve
