#include "serve/canary.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <sstream>
#include <thread>
#include <unordered_set>

#include "la/kernels.hpp"
#include "util/check.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"

namespace anchor::serve {

namespace {

constexpr std::size_t kNoProbe = static_cast<std::size_t>(-1);

/// splitmix64 finalizer — the routing hash. Cheap, well-mixed, and easy
/// to restate in any other implementation of the wire protocol, which is
/// what makes the routing auditable: whether a key canaries is a pure
/// function of (seed, fraction, key).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// The routing hash, overloaded per key type (word keys hash their
/// bytes first with anchor::fnv1a — standard FNV-1a 64, easy to restate
/// in another implementation of the wire protocol). Shadow sampling
/// re-mixes with a salt so the shadow subset is an independent
/// sub-sample of the candidate-routed keys.
constexpr std::uint64_t kShadowSalt = 0xa5a5a5a5a5a5a5a5ull;

std::uint64_t route_hash(std::uint64_t seed, std::size_t key) {
  return mix64(static_cast<std::uint64_t>(key) ^ seed);
}
std::uint64_t route_hash(std::uint64_t seed, const std::string& word) {
  return mix64(anchor::fnv1a(word) ^ seed);
}

/// fraction ∈ [0,1] → inclusive-exclusive threshold on the u64 hash.
std::uint64_t fraction_threshold(double fraction) {
  if (fraction <= 0.0) return 0;
  if (fraction >= 1.0) return ~0ull;
  // fraction < 1 strictly, so the product is < 2^64 and the cast is safe.
  return static_cast<std::uint64_t>(fraction * 18446744073709551616.0);
}

double elapsed_us(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Hoeffding half-width for a mean of n samples from a range of width
/// `range`, at two-sided confidence `confidence`.
double hoeffding_half(std::uint64_t n, double range, double confidence) {
  if (n == 0) return range;
  const double delta = std::clamp(1.0 - confidence, 1e-12, 1.0);
  return range * std::sqrt(std::log(2.0 / delta) /
                           (2.0 * static_cast<double>(n)));
}

}  // namespace

std::string canary_state_name(CanaryState s) {
  switch (s) {
    case CanaryState::kNone:
      return "none";
    case CanaryState::kOfflineRejected:
      return "offline-rejected";
    case CanaryState::kRunning:
      return "running";
    case CanaryState::kPromoted:
      return "promoted";
    case CanaryState::kRolledBack:
      return "rolled-back";
    case CanaryState::kAborted:
      return "aborted";
  }
  ANCHOR_CHECK_MSG(false, "unknown CanaryState");
  return "";
}

// ---- CanaryStats -------------------------------------------------------

void CanaryStats::record_shadow(double agreement, double displacement,
                                double latency_delta_us, std::uint64_t key) {
  if (key != kNoKey) {
    // Fast reject: once the worst-k heap is full, only a displacement
    // beating its cached minimum (or updating a key already tracked —
    // caught under the lock) needs the mutex. The floor is conservative
    // (it only ever rises under the lock), so a stale read can cause a
    // harmless extra lock, never a missed outlier.
    const double floor = worst_floor_.load(std::memory_order_relaxed);
    if (floor < 0.0 || displacement > floor) {
      std::lock_guard<std::mutex> lock(worst_mu_);
      const auto by_disp = [](const CanaryWorstKey& a,
                              const CanaryWorstKey& b) {
        return a.displacement > b.displacement;  // min-heap on displacement
      };
      bool known = false;
      for (CanaryWorstKey& w : worst_) {
        if (w.key == key) {
          known = true;
          if (displacement > w.displacement) {
            w.displacement = displacement;
            std::make_heap(worst_.begin(), worst_.end(), by_disp);
          }
          break;
        }
      }
      if (!known) {
        if (worst_.size() < kWorstK) {
          worst_.push_back({key, displacement});
          std::push_heap(worst_.begin(), worst_.end(), by_disp);
        } else if (displacement > worst_.front().displacement) {
          std::pop_heap(worst_.begin(), worst_.end(), by_disp);
          worst_.back() = {key, displacement};
          std::push_heap(worst_.begin(), worst_.end(), by_disp);
        }
      }
      if (worst_.size() == kWorstK) {
        worst_floor_.store(worst_.front().displacement,
                           std::memory_order_relaxed);
      }
    }
  }
  agreement_sum_micro_.fetch_add(
      static_cast<std::uint64_t>(agreement * kMicro + 0.5),
      std::memory_order_relaxed);
  displacement_sum_micro_.fetch_add(
      static_cast<std::uint64_t>(displacement * kMicro + 0.5),
      std::memory_order_relaxed);
  latency_delta_sum_micro_.fetch_add(
      static_cast<std::int64_t>(std::llround(latency_delta_us * kMicro)),
      std::memory_order_relaxed);
  agreement_hist_.record(agreement);
  displacement_hist_.record(displacement);
  // Count last (release): a reader that observes n shadows sees sums that
  // include at least those n samples, so the running means never read
  // ahead of the count.
  shadows_.fetch_add(1, std::memory_order_release);
}

CanaryStatsSnapshot CanaryStats::snapshot(double confidence,
                                          bool with_medians) const {
  CanaryStatsSnapshot s;
  s.candidate_lookups = candidate_lookups_.load(std::memory_order_relaxed);
  s.incumbent_lookups = incumbent_lookups_.load(std::memory_order_relaxed);
  const std::uint64_t n = shadows_.load(std::memory_order_acquire);
  s.shadows = n;
  if (n > 0) {
    const double inv = 1.0 / (static_cast<double>(n) * kMicro);
    s.mean_agreement =
        static_cast<double>(
            agreement_sum_micro_.load(std::memory_order_relaxed)) *
        inv;
    s.mean_displacement =
        static_cast<double>(
            displacement_sum_micro_.load(std::memory_order_relaxed)) *
        inv;
    s.mean_latency_delta_us =
        static_cast<double>(
            latency_delta_sum_micro_.load(std::memory_order_relaxed)) *
        inv;
    const double half = hoeffding_half(n, 1.0, confidence);
    s.agreement_lower = std::max(0.0, s.mean_agreement - half);
    s.agreement_upper = std::min(1.0, s.mean_agreement + half);
    if (with_medians) {
      s.p50_agreement = agreement_hist_.quantile(0.50);
      s.p50_displacement = displacement_hist_.quantile(0.50);
      {
        std::lock_guard<std::mutex> lock(worst_mu_);
        s.worst_keys = worst_;
      }
      std::sort(s.worst_keys.begin(), s.worst_keys.end(),
                [](const CanaryWorstKey& a, const CanaryWorstKey& b) {
                  if (a.displacement != b.displacement) {
                    return a.displacement > b.displacement;  // worst first
                  }
                  return a.key < b.key;
                });
    }
  }
  return s;
}

/// "key:displacement|key:displacement" — ':' and '|' keep the list safe
/// inside the audit CSV's comma-separated reason column.
static std::string format_worst_keys(
    const std::vector<CanaryWorstKey>& worst) {
  std::ostringstream os;
  os.precision(4);
  for (std::size_t i = 0; i < worst.size(); ++i) {
    if (i > 0) os << "|";
    os << worst[i].key << ":" << worst[i].displacement;
  }
  return os.str();
}

std::string CanaryStatsSnapshot::summary() const {
  std::ostringstream os;
  os << "shadows=" << shadows << " agreement=" << mean_agreement << " ["
     << agreement_lower << ", " << agreement_upper << "]"
     << " displacement=" << mean_displacement
     << " latency_delta_us=" << mean_latency_delta_us
     << " cand_keys=" << candidate_lookups
     << " inc_keys=" << incumbent_lookups;
  if (!worst_keys.empty()) {
    os << " worst_keys=" << format_worst_keys(worst_keys);
  }
  return os.str();
}

// ---- CanaryRouter ------------------------------------------------------

CanaryRouter::CanaryRouter(EmbeddingStore& store,
                           AsyncLookupService& incumbent_traffic,
                           SnapshotPtr incumbent, SnapshotPtr candidate,
                           GateReport offline, CanaryConfig config,
                           std::filesystem::path audit_log)
    : store_(store),
      incumbent_traffic_(incumbent_traffic),
      incumbent_(std::move(incumbent)),
      candidate_(std::move(candidate)),
      incumbent_name_(incumbent_->version()),
      candidate_name_(candidate_->version()),
      offline_(std::move(offline)),
      config_(config),
      audit_log_(std::move(audit_log)),
      route_threshold_(fraction_threshold(config.fraction)),
      shadow_threshold_(fraction_threshold(config.shadow_rate)),
      candidate_service_(store,
                         [&] {
                           LookupConfig lc = config.candidate_lookup;
                           lc.pin_snapshot = candidate_;
                           return lc;
                         }(),
                         config.candidate_service_stats),
      candidate_async_(candidate_service_, config.candidate_batcher,
                       config.candidate_batcher_stats) {
  ANCHOR_CHECK_MSG(incumbent_->dim() == candidate_->dim(),
                   "canary requires equal embedding dimensions ("
                       << incumbent_->dim() << " vs " << candidate_->dim()
                       << ")");
  if (config_.knn_k == 0) config_.knn_k = 1;

  // Probe panel: one fixed sample of shared-vocabulary rows; each
  // version's panel rows are L2-normalized in that version's own space,
  // so per-shadow scoring is two matvecs + two top-k selections.
  const std::size_t shared =
      std::min(incumbent_->vocab_size(), candidate_->vocab_size());
  std::size_t m = std::min(config_.probe_rows, shared);
  if (m == 0) m = 1;
  probe_ids_.reserve(m);
  if (m == shared) {
    for (std::size_t i = 0; i < m; ++i) probe_ids_.push_back(i);
  } else {
    Rng rng(config_.seed ^ 0x70726f6265733231ull);
    std::unordered_set<std::size_t> seen;
    while (probe_ids_.size() < m) {
      const std::size_t id = rng.index(shared);
      if (seen.insert(id).second) probe_ids_.push_back(id);
    }
  }
  for (std::size_t p = 0; p < probe_ids_.size(); ++p) {
    probe_index_.emplace(probe_ids_[p], p);
  }

  const std::size_t dim = incumbent_->dim();
  std::vector<float> buf(m * dim);
  const auto build_panel = [&](const EmbeddingSnapshot& snap,
                               la::Matrix* panel) {
    snap.copy_rows(probe_ids_.data(), m, buf.data());
    *panel = la::Matrix(m, dim);
    for (std::size_t r = 0; r < m; ++r) {
      double* dst = panel->row(r);
      const float* src = buf.data() + r * dim;
      for (std::size_t j = 0; j < dim; ++j) dst[j] = src[j];
      la::kernels::l2_normalize(dst, dim);
    }
  };
  build_panel(*incumbent_, &probes_incumbent_);
  build_panel(*candidate_, &probes_candidate_);
}

CanaryRouter::~CanaryRouter() = default;

bool CanaryRouter::routes_to_candidate(std::size_t key) const {
  return route_hash(config_.seed, key) < route_threshold_;
}

bool CanaryRouter::routes_to_candidate(const std::string& word) const {
  return route_hash(config_.seed, word) < route_threshold_;
}

bool CanaryRouter::shadows_key(std::size_t key) const {
  return mix64(route_hash(config_.seed, key) ^ kShadowSalt) <
         shadow_threshold_;
}

/// One in-flight sub-lookup: the single-key ring fast path when the
/// subset is one id, the general promise path otherwise (words always
/// take the general path).
struct CanaryRouter::Pending {
  AsyncLookupService::SliceFuture fast;
  std::future<ResultSlice> general;
  bool use_fast = false;
  bool valid = false;

  void issue(AsyncLookupService& svc, std::vector<std::size_t> keys) {
    if (keys.empty()) return;
    valid = true;
    if (keys.size() == 1) {
      use_fast = true;
      fast = svc.lookup_id(keys[0]);
    } else {
      general = svc.lookup_ids(std::move(keys));
    }
  }
  void issue(AsyncLookupService& svc, std::vector<std::string> words) {
    if (words.empty()) return;
    valid = true;
    general = svc.lookup_words(std::move(words));
  }
  ResultSlice get() { return use_fast ? fast.get() : general.get(); }
};

namespace {

/// Scatters slice row r → out row slots[r] for every r.
void scatter_slice(const ResultSlice& slice,
                   const std::vector<std::uint32_t>& slots,
                   LookupResult* out) {
  const std::size_t dim = out->dim;
  for (std::size_t r = 0; r < slice.size(); ++r) {
    std::memcpy(out->vectors.data() + slots[r] * dim, slice.row(r),
                dim * sizeof(float));
    out->oov[slots[r]] = slice.oov(r) ? 1 : 0;
  }
}

/// Probe self-exclusion inputs per key type: id keys are row ids; word
/// keys carry no row id, so exclusion does not apply.
const std::vector<std::size_t>& self_probe_ids(
    const std::vector<std::size_t>& shadow_keys) {
  return shadow_keys;
}
const std::vector<std::size_t>& self_probe_ids(
    const std::vector<std::string>&) {
  static const std::vector<std::size_t> kEmpty;
  return kEmpty;
}

}  // namespace

/// Decrement-on-scope-exit for CanaryRouter::inflight_ (drain-mode abort
/// waits on it, so every early return must decrement). seq_cst, not
/// acq_rel: the drain handshake is a Dekker-style store-load pattern
/// (router: inc inflight THEN load draining; abort: store draining THEN
/// load inflight), and with anything weaker both sides may read the
/// stale value — the abort seeing inflight==0 while the router saw
/// draining==false and still routes to the candidate. Under the seq_cst
/// total order, an abort that reads inflight==0 is ordered before the
/// increment, which is ordered before the router's draining load, which
/// therefore observes true.
struct InflightGuard {
  std::atomic<int>* counter;
  explicit InflightGuard(std::atomic<int>& c) : counter(&c) {
    counter->fetch_add(1, std::memory_order_seq_cst);
  }
  /// Early decrement for the passthrough (not-routing) branch: once the
  /// active() check came back false this request can never touch the
  /// candidate, and keeping it counted would make a drain wait on plain
  /// incumbent traffic (under steady load, for the whole drain timeout).
  void release() {
    if (counter != nullptr) {
      counter->fetch_sub(1, std::memory_order_seq_cst);
      counter = nullptr;
    }
  }
  ~InflightGuard() { release(); }
};

template <typename Key>
void CanaryRouter::route_into(const std::vector<Key>& keys,
                              LookupResult* out) {
  // Count BEFORE the active() check: a drain that observes inflight_ == 0
  // after setting draining_ then knows no request can still be on its way
  // to the candidate (later entrants see draining_ and take the live
  // path).
  InflightGuard inflight(inflight_);
  if (!active()) {
    inflight.release();  // incumbent-only from here; don't stall a drain
    // Terminal (or about to be replaced): everything follows the store's
    // live version through the shared front-end.
    Pending p;
    if (!keys.empty()) p.issue(incumbent_traffic_, std::vector<Key>(keys));
    out->dim = 0;
    out->vectors.clear();
    out->oov.clear();
    out->version.clear();
    if (!p.valid) return;
    const ResultSlice slice = p.get();
    out->dim = slice.dim();
    out->version = slice.version();
    out->vectors.assign(keys.size() * slice.dim(), 0.0f);
    out->oov.assign(keys.size(), 0);
    for (std::size_t r = 0; r < slice.size(); ++r) {
      std::memcpy(out->vectors.data() + r * slice.dim(), slice.row(r),
                  slice.dim() * sizeof(float));
      out->oov[r] = slice.oov(r) ? 1 : 0;
    }
    return;
  }

  // Partition by the deterministic key hash. Shadowed keys are a
  // sampled subset of the *candidate-routed* keys: those are the ones
  // whose serving experience changed, so they are the ones mirrored.
  std::vector<Key> cand_keys, inc_keys, shadow_keys;
  std::vector<std::uint32_t> cand_slots, inc_slots;
  std::vector<std::uint32_t> shadow_cand_rows;  // row in the cand result
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::uint64_t h = route_hash(config_.seed, keys[i]);
    if (h < route_threshold_) {
      if (mix64(h ^ kShadowSalt) < shadow_threshold_) {
        shadow_keys.push_back(keys[i]);
        shadow_cand_rows.push_back(
            static_cast<std::uint32_t>(cand_keys.size()));
      }
      cand_slots.push_back(static_cast<std::uint32_t>(i));
      cand_keys.push_back(keys[i]);
    } else {
      inc_slots.push_back(static_cast<std::uint32_t>(i));
      inc_keys.push_back(keys[i]);
    }
  }

  const std::size_t dim = incumbent_->dim();
  out->dim = dim;
  out->version =
      cand_keys.size() > inc_keys.size() ? candidate_name_ : incumbent_name_;
  out->vectors.assign(keys.size() * dim, 0.0f);
  out->oov.assign(keys.size(), 0);
  stats_.record_candidate(cand_keys.size());
  stats_.record_incumbent(inc_keys.size() + shadow_keys.size());

  // The mirror rides the SAME incumbent sub-request, as its tail rows:
  // no third request, no extra wakeup chain — a shadow costs its keys'
  // lookup work and nothing else. Issue both sides before blocking on
  // either so they execute concurrently.
  const std::size_t inc_only = inc_keys.size();
  inc_keys.insert(inc_keys.end(), shadow_keys.begin(), shadow_keys.end());
  const auto t0 = std::chrono::steady_clock::now();
  Pending cand, inc;
  cand.issue(candidate_async_, std::move(cand_keys));
  inc.issue(incumbent_traffic_, std::move(inc_keys));

  // Incumbent first, then candidate: cand_us − inc_us is then the
  // non-negative completion skew — how much later the candidate side's
  // answer arrived than the incumbent side's, queue wait included (0
  // when the candidate was already done).
  ResultSlice inc_slice;
  double inc_us = 0.0;
  if (inc.valid) {
    inc_slice = inc.get();
    inc_us = elapsed_us(t0);
    scatter_slice(ResultSlice(inc_slice.batch(), inc_slice.first(), inc_only),
                  inc_slots, out);
  }
  ResultSlice cand_slice;
  double cand_us = 0.0;
  if (cand.valid) {
    cand_slice = cand.get();
    cand_us = elapsed_us(t0);
    scatter_slice(cand_slice, cand_slots, out);
  }

  if (!shadow_keys.empty() && cand.valid) {
    const ResultSlice mirror(inc_slice.batch(), inc_slice.first() + inc_only,
                             shadow_keys.size());
    score_shadows(self_probe_ids(shadow_keys), shadow_cand_rows, cand_slice,
                  mirror, std::max(0.0, cand_us - inc_us));
  }
  maybe_decide();
}

void CanaryRouter::lookup_ids_into(const std::vector<std::size_t>& ids,
                                   LookupResult* out) {
  route_into(ids, out);
}

void CanaryRouter::lookup_words_into(const std::vector<std::string>& words,
                                     LookupResult* out) {
  route_into(words, out);
}

bool CanaryRouter::probe_topk(const la::Matrix& probes, const float* vec,
                              std::size_t self_probe,
                              std::vector<int>* out) const {
  const std::size_t dim = incumbent_->dim();
  const std::size_t m = probes.rows();
  thread_local std::vector<double> q, scores;
  q.resize(dim);
  for (std::size_t j = 0; j < dim; ++j) q[j] = vec[j];
  if (la::kernels::l2_normalize(q.data(), dim) == 0.0) return false;
  scores.resize(m);
  la::kernels::matvec_rowmajor(probes.data(), m, dim, q.data(),
                               scores.data());

  thread_local std::vector<int> idx;
  idx.clear();
  idx.reserve(m);
  for (std::size_t p = 0; p < m; ++p) {
    if (p != self_probe) idx.push_back(static_cast<int>(p));
  }
  const std::size_t k = std::min(config_.knn_k, idx.size());
  if (k == 0) return false;
  std::partial_sort(idx.begin(), idx.begin() + static_cast<long>(k),
                    idx.end(), [&](int a, int b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;  // deterministic tie-break
                    });
  out->assign(idx.begin(), idx.begin() + static_cast<long>(k));
  return true;
}

void CanaryRouter::score_shadows(
    const std::vector<std::size_t>& shadow_keys,
    const std::vector<std::uint32_t>& shadow_cand_rows,
    const ResultSlice& cand_slice, const ResultSlice& mirror_slice,
    double latency_delta_us) {
  const std::size_t dim = incumbent_->dim();
  thread_local std::vector<int> top_cand, top_inc;
  for (std::size_t j = 0; j < mirror_slice.size(); ++j) {
    const std::uint32_t cr = shadow_cand_rows[j];
    if (cand_slice.oov(cr) || mirror_slice.oov(j)) continue;
    const float* vc = cand_slice.row(cr);
    const float* vi = mirror_slice.row(j);

    std::size_t self_probe = kNoProbe;
    if (j < shadow_keys.size()) {
      const auto it = probe_index_.find(shadow_keys[j]);
      if (it != probe_index_.end()) self_probe = it->second;
    }
    // Each version's neighbors live in its OWN space (within-space
    // structure, like the paper's k-NN measure), so agreement is
    // invariant to any global rotation — alignment cannot fake it.
    if (!probe_topk(probes_candidate_, vc, self_probe, &top_cand)) continue;
    if (!probe_topk(probes_incumbent_, vi, self_probe, &top_inc)) continue;
    std::size_t overlap = 0;
    for (const int p : top_cand) {
      for (const int q : top_inc) {
        if (p == q) {
          ++overlap;
          break;
        }
      }
    }
    const double k =
        static_cast<double>(std::min(top_cand.size(), top_inc.size()));
    const double agreement = k > 0 ? static_cast<double>(overlap) / k : 0.0;

    double dot = 0.0, nc = 0.0, ni = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      dot += static_cast<double>(vc[d]) * vi[d];
      nc += static_cast<double>(vc[d]) * vc[d];
      ni += static_cast<double>(vi[d]) * vi[d];
    }
    const double denom = std::sqrt(nc) * std::sqrt(ni);
    if (denom == 0.0) continue;
    const double displacement = std::clamp(1.0 - dot / denom, 0.0, 2.0);
    const std::uint64_t key = j < shadow_keys.size()
                                  ? static_cast<std::uint64_t>(shadow_keys[j])
                                  : CanaryStats::kNoKey;
    stats_.record_shadow(agreement, displacement, latency_delta_us, key);
  }
}

void CanaryRouter::maybe_decide() {
  if (!active()) return;
  const std::uint64_t n = stats_.shadows();
  if (n < config_.min_shadows) return;
  const CanaryStatsSnapshot s =
      stats_.snapshot(config_.confidence, /*with_medians=*/false);
  // Displacement lives in [0, 2]; its Hoeffding width is twice the
  // agreement's at the same n.
  const double disp_half = hoeffding_half(s.shadows, 2.0, config_.confidence);

  std::ostringstream detail;
  detail.precision(4);
  detail << "agreement=" << s.mean_agreement << " [" << s.agreement_lower
         << ", " << s.agreement_upper << "] displacement="
         << s.mean_displacement << " shadows=" << s.shadows;

  if (s.agreement_upper <= config_.rollback_agreement) {
    decide(CanaryState::kRolledBack,
           "canary rollback: online agreement confidently below "
           "rollback bound; " +
               detail.str());
  } else if (s.mean_displacement - disp_half > config_.max_displacement) {
    // Neighbor structure agrees but coordinates drifted (e.g. an
    // unaligned rotation): consumers mixing versions would break, so
    // this is a rollback of its own kind.
    decide(CanaryState::kRolledBack,
           "canary rollback: displacement exceeds budget "
           "(max_displacement=" +
               std::to_string(config_.max_displacement) + "); " +
               detail.str());
  } else if (s.agreement_lower >= config_.promote_agreement &&
             s.mean_displacement <= config_.max_displacement) {
    decide(CanaryState::kPromoted,
           "canary promote: online agreement confidently above promote "
           "bound; " +
               detail.str());
  } else if (s.shadows >= config_.max_shadows) {
    const bool good = s.mean_agreement >= config_.promote_agreement &&
                      s.mean_displacement <= config_.max_displacement;
    decide(good ? CanaryState::kPromoted : CanaryState::kRolledBack,
           std::string("canary ") + (good ? "promote" : "rollback") +
               " at shadow budget; " + detail.str());
  }
}

void CanaryRouter::decide(CanaryState terminal, const std::string& reason) {
  std::lock_guard<std::mutex> lock(decide_mu_);
  if (state_.load(std::memory_order_acquire) != CanaryState::kRunning) {
    return;  // someone else already decided
  }
  bool promoted = false;
  std::string final_reason = reason;
  if (terminal == CanaryState::kPromoted) {
    // Identity promote: only the exact snapshot this canary evaluated may
    // go live (same TOCTOU discipline as the offline gate).
    promoted = store_.set_live_snapshot(candidate_);
    if (!promoted) {
      terminal = CanaryState::kRolledBack;
      final_reason +=
          "; promotion aborted: candidate was re-registered during the "
          "canary";
    }
  }
  // The audit trail names the outlier keys, not just the aggregate: a
  // rollback row that says WHICH rows moved furthest is actionable.
  if (final_reason.find("worst_keys=") == std::string::npos) {
    const CanaryStatsSnapshot worst =
        stats_.snapshot(config_.confidence, /*with_medians=*/true);
    if (!worst.worst_keys.empty()) {
      final_reason += "; worst_keys=" + format_worst_keys(worst.worst_keys);
    }
  }
  decision_reason_ = final_reason;
  state_.store(terminal, std::memory_order_release);
  if (!audit_log_.empty()) {
    GateReport row;
    row.old_version = incumbent_name_;
    row.new_version = candidate_name_;
    row.decision = terminal == CanaryState::kPromoted ? GateDecision::kAdmit
                                                      : GateDecision::kReject;
    row.eis = offline_.eis;
    row.one_minus_knn = offline_.one_minus_knn;
    row.rows_compared = stats_.shadows();
    row.promoted = promoted;
    row.reason = final_reason;
    append_audit_csv(audit_log_, row);
  }
}

void CanaryRouter::abort(bool drain) {
  if (drain && state() == CanaryState::kRunning) {
    // Stop NEW requests from routing to the candidate (active() flips
    // false), then let the routed lookups already in flight finish and
    // score their shadows so the terminal status reports everything that
    // was measured. Bounded wait: a wedged consumer must not turn an
    // abort RPC into a hang. seq_cst pairs with InflightGuard (see its
    // comment) so reading inflight == 0 proves later entrants observed
    // the drain.
    draining_.store(true, std::memory_order_seq_cst);
    constexpr auto kDrainTimeout = std::chrono::seconds(5);
    const auto deadline = std::chrono::steady_clock::now() + kDrainTimeout;
    while (inflight_.load(std::memory_order_seq_cst) > 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  const CanaryStatsSnapshot s = stats_.snapshot(config_.confidence);
  decide(CanaryState::kAborted,
         std::string("canary aborted by operator") +
             (drain ? " (drained)" : "") + "; " + s.summary());
}

std::string CanaryRouter::decision_reason() const {
  std::lock_guard<std::mutex> lock(decide_mu_);
  return decision_reason_;
}

// ---- two-phase DeploymentGate::try_promote -----------------------------

std::shared_ptr<CanaryRouter> DeploymentGate::try_promote(
    EmbeddingStore& store, const std::string& candidate_version,
    AsyncLookupService& incumbent_traffic, const CanaryConfig& canary,
    GateReport* offline) const {
  const SnapshotPtr candidate = store.snapshot(candidate_version);
  ANCHOR_CHECK_MSG(candidate != nullptr,
                   "unknown candidate version '" << candidate_version << "'");
  const SnapshotPtr incumbent = store.live();

  GateReport report;
  if (!incumbent || incumbent == candidate) {
    report.old_version = incumbent ? incumbent->version() : "";
    report.new_version = candidate_version;
    report.decision = GateDecision::kAdmit;
    if (!incumbent) {
      report.promoted = store.set_live_snapshot(candidate);
      report.reason = "no incumbent; promoted without canary";
    } else {
      report.reason = "candidate is already live";
    }
    if (!config_.audit_log.empty()) {
      append_audit_csv(config_.audit_log, report);
    }
    if (offline != nullptr) *offline = report;
    return nullptr;
  }
  ANCHOR_CHECK_MSG(incumbent->dim() == candidate->dim(),
                   "canary requires equal embedding dimensions ("
                       << incumbent->dim() << " vs " << candidate->dim()
                       << ")");

  // Phase 1: the offline gate, verbatim. A reject here never takes any
  // traffic — exactly as before this rung existed.
  report = evaluate(*incumbent, *candidate);
  if (report.decision == GateDecision::kReject) {
    report.reason += "; canary not started (offline reject)";
    if (!config_.audit_log.empty()) {
      append_audit_csv(config_.audit_log, report);
    }
    if (offline != nullptr) *offline = report;
    return nullptr;
  }

  // Phase 2 hand-off: live stays on the incumbent; the router owns the
  // online decision from here.
  report.reason += "; canary started";
  if (!config_.audit_log.empty()) append_audit_csv(config_.audit_log, report);
  if (offline != nullptr) *offline = report;
  return std::make_shared<CanaryRouter>(store, incumbent_traffic, incumbent,
                                        candidate, report, canary,
                                        config_.audit_log);
}

}  // namespace anchor::serve
