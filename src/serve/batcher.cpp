#include "serve/batcher.hpp"

#include <algorithm>
#include <exception>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace anchor::serve {

namespace {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

inline std::int64_t now_ns() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

/// One in kClockSample fast-path enqueues reads the clock (power of two).
constexpr std::uint64_t kClockSample = 16;

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

AsyncLookupService::AsyncLookupService(const LookupService& service,
                                       BatcherConfig config,
                                       std::shared_ptr<ServeStats> stats)
    : service_(service),
      config_(config),
      stats_(stats ? std::move(stats) : std::make_shared<ServeStats>()),
      holds_(std::make_shared<HoldFreelist>()) {
  if (config_.max_batch_size == 0) config_.max_batch_size = 1;
  if (config_.max_inflight_batches == 0) config_.max_inflight_batches = 1;
  // The ring must fit at least two full batches so a combiner never
  // deadlocks producers of the batch after the one it is executing.
  const std::size_t cap = round_up_pow2(
      std::max(config_.ring_capacity, 2 * config_.max_batch_size));
  slots_ = std::vector<Slot>(cap);
  for (std::size_t p = 0; p < cap; ++p) {
    slots_[p].seq.store(p, std::memory_order_relaxed);
  }
  ring_mask_ = cap - 1;
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

AsyncLookupService::~AsyncLookupService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  dispatcher_.join();
  // Fast-path contract: every SliceFuture was consumed by now, so the
  // ring is quiescent. Outstanding ResultSlices are fine — their buffers
  // are owned by the shared freelist, not by this object.
}

bool AsyncLookupService::use_pool() const {
  switch (config_.exec) {
    case BatcherConfig::Exec::kPool:
      return true;
    case BatcherConfig::Exec::kInline:
      return false;
    case BatcherConfig::Exec::kAuto:
      break;
  }
  return util::global_pool_threads() > 1;
}

// ---- fast path ---------------------------------------------------------

std::vector<AsyncLookupService::Mailbox*>& AsyncLookupService::box_cache() {
  thread_local struct Cache {
    std::vector<Mailbox*> free;
    ~Cache() {
      for (Mailbox* box : free) delete box;
    }
  } cache;
  return cache.free;
}

AsyncLookupService::Mailbox* AsyncLookupService::alloc_box() {
  std::vector<Mailbox*>& cache = box_cache();
  if (!cache.empty()) {
    Mailbox* box = cache.back();
    cache.pop_back();
    return box;
  }
  return new Mailbox();
}

void AsyncLookupService::free_box(Mailbox* box) {
  // May run on a different thread than alloc_box (a moved future); each
  // thread recycles into its own cache, bounded so a consume-heavy
  // thread does not hoard memory.
  box->state.store(0, std::memory_order_relaxed);
  box->hold = nullptr;
  std::vector<Mailbox*>& cache = box_cache();
  if (cache.size() < 4096) {
    cache.push_back(box);
  } else {
    delete box;
  }
}

AsyncLookupService::SliceFuture AsyncLookupService::lookup_id(
    std::size_t id) {
  Mailbox* box = alloc_box();
  // Claim a position only when its slot is actually free. The claim is a
  // CAS, not a blind fetch_add, so a producer waiting for ring space
  // holds NOTHING — combiners always make progress past it. Slots are
  // freed at claim time (combine_once copies the request out), so a full
  // ring only means combining is behind, and helping combine clears it.
  std::uint64_t pos;
  std::uint32_t spins = 0;
  for (;;) {
    pos = head_.load(std::memory_order_relaxed);
    Slot& probe = slots_[pos & ring_mask_];
    if (probe.seq.load(std::memory_order_acquire) != pos) {
      // Either a racing producer just claimed `pos` (head moved; retry
      // immediately) or the ring is full of unclaimed requests.
      if (head_.load(std::memory_order_relaxed) != pos) continue;
      if (++spins > 64) {
        combine_once();
        std::this_thread::yield();
        spins = 0;
      } else {
        cpu_relax();
      }
      continue;
    }
    if (head_.compare_exchange_weak(pos, pos + 1,
                                    std::memory_order_relaxed)) {
      break;
    }
  }
  Slot& slot = slots_[pos & ring_mask_];
  slot.key = id;
  // The latency clock is sampled: one timestamp per kClockSample requests
  // keeps steady_clock reads off most enqueues while still giving
  // record_batch a client-observed queue age.
  const std::int64_t enq_ns = (pos & (kClockSample - 1)) == 0 ? now_ns() : 0;
  slot.enqueued_ns = enq_ns;
  slot.box = box;
  slot.seq.store(pos + 1, std::memory_order_release);

  // Throughput trigger: the producer that fills a batch combines it
  // inline — under pipelined load batches execute with no thread handoff
  // at all. try-lock inside combine_once keeps producers from queueing up
  // behind an active combiner.
  if (pos + 1 - tail_.load(std::memory_order_relaxed) >=
      config_.max_batch_size) {
    combine_once();
  }
  // The waiter's deadline is relative to enqueue; unsampled requests pin
  // it lazily in await_and_consume.
  return SliceFuture(
      this, box,
      enq_ns == 0
          ? 0
          : enq_ns + static_cast<std::int64_t>(config_.max_wait_us) * 1000);
}

bool AsyncLookupService::combine_once() {
  std::unique_lock<std::mutex> lock(combine_mu_, std::try_to_lock);
  if (!lock.owns_lock()) return false;
  const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  if (head == tail) return false;

  // Claim the contiguous prefix of fully WRITTEN slots: a producer
  // preempted between its CAS and its seq publish ends the batch early
  // rather than being waited on — the combiner never blocks on anyone.
  // Each claimed slot is copied out and freed for its next lap on the
  // spot, so result consumption never gates ring reuse.
  thread_local std::vector<std::size_t> keys;
  thread_local std::vector<Mailbox*> boxes;
  keys.clear();
  boxes.clear();
  std::int64_t oldest_ns = 0;
  std::size_t take = 0;
  while (take < config_.max_batch_size && tail + take < head) {
    Slot& slot = slots_[(tail + take) & ring_mask_];
    if (slot.seq.load(std::memory_order_acquire) != tail + take + 1) break;
    keys.push_back(slot.key);
    boxes.push_back(slot.box);
    if (slot.enqueued_ns != 0 &&
        (oldest_ns == 0 || slot.enqueued_ns < oldest_ns)) {
      oldest_ns = slot.enqueued_ns;
    }
    slot.seq.store(tail + take + slots_.size(), std::memory_order_release);
    ++take;
  }
  if (take == 0) return false;
  tail_.store(tail + take, std::memory_order_release);
  lock.unlock();  // claim done; execution needs no combiner exclusivity

  if (use_pool()) {
    // Count the task in inflight_ so the dispatcher's shutdown wait (and
    // therefore the destructor) covers fast-path pool tasks too — the
    // task touches `this` (stats_, holds_) after publishing results.
    {
      std::lock_guard<std::mutex> count_lock(mu_);
      ++inflight_;
    }
    auto task = std::make_shared<std::pair<std::vector<std::size_t>,
                                           std::vector<Mailbox*>>>(keys,
                                                                   boxes);
    util::global_pool().submit([this, oldest_ns, task] {
      execute_fast_batch(task->first, task->second, oldest_ns);
      {
        std::lock_guard<std::mutex> count_lock(mu_);
        --inflight_;
      }
      inflight_cv_.notify_all();
    });
  } else {
    // By reference: the thread_local scratch stays owned here, so the
    // inline steady state really is allocation-free.
    execute_fast_batch(keys, boxes, oldest_ns);
  }
  return true;
}

void AsyncLookupService::execute_fast_batch(
    const std::vector<std::size_t>& keys, const std::vector<Mailbox*>& boxes,
    std::int64_t oldest_ns) {
  BatchHold* hold = acquire_hold();
  hold->error = nullptr;
  try {
    service_.lookup_ids_into(keys, &hold->result);
  } catch (...) {
    hold->error = std::current_exception();
  }
  hold->refs.store(static_cast<std::uint32_t>(boxes.size()),
                   std::memory_order_relaxed);
  if (!hold->error) {
    // Aliasing shared_ptr: slices share `hold->result` and the deleter
    // recycles the hold once the last slice is gone. Capturing the
    // freelist by shared_ptr keeps the buffer memory valid even if the
    // service dies first.
    hold->self = std::shared_ptr<const LookupResult>(
        &hold->result, [fl = holds_, hold](const LookupResult*) {
          std::lock_guard<std::mutex> lock(fl->mu);
          fl->free.push_back(hold);
        });
  }
  // Stats BEFORE releasing the waiters: a caller whose get() returned
  // must find its own keys already counted in a subsequent stats read
  // (the RPC test observes exactly this ordering over the wire).
  if (!hold->error) {
    if (oldest_ns == 0) {
      // No sampled timestamp in this batch — count it without polluting
      // the latency ring with a fake 0 µs entry.
      stats_->record_batch_unsampled(boxes.size());
      if (config_.windowed != nullptr) {
        config_.windowed->record_unsampled(boxes.size(), 0);
      }
    } else {
      const double latency_us =
          static_cast<double>(now_ns() - oldest_ns) / 1000.0;
      stats_->record_batch(boxes.size(), latency_us);
      if (config_.windowed != nullptr) {
        config_.windowed->record_many(latency_us, boxes.size(), 0);
      }
    }
  }
  const std::uint32_t state = hold->error ? 2 : 1;
  for (std::size_t k = 0; k < boxes.size(); ++k) {
    Mailbox* box = boxes[k];
    box->offset = static_cast<std::uint32_t>(k);
    box->hold = hold;
    box->state.store(state, std::memory_order_release);
    // No notify: waiters poll with bounded sleeps (see await_and_consume),
    // so completion costs no syscall per request.
  }
}

void AsyncLookupService::await_and_consume(Mailbox* box,
                                           std::int64_t deadline_ns,
                                           ResultSlice* out) {
  std::uint32_t state = box->state.load(std::memory_order_acquire);
  if (state == 0) {
    // Phase 1: optimistic spin — under pipelined load the combiner is at
    // most one batch away.
    for (int i = 0; i < 2048 && state == 0; ++i) {
      cpu_relax();
      state = box->state.load(std::memory_order_acquire);
    }
    // Phase 2: honor the latency policy. A FULL pending batch is always
    // combined immediately (no latency tradeoff — waiting cannot make it
    // fuller); an underfull one waits for the deadline. Yields come
    // before sleeps: on a busy host another producer or combiner runs on
    // the yielded slice, and nanosleep's timer slack (tens of µs) is paid
    // only once traffic is genuinely idle.
    if (state == 0 && deadline_ns == 0) {
      deadline_ns =
          now_ns() + static_cast<std::int64_t>(config_.max_wait_us) * 1000;
    }
    std::uint64_t last_pending = 0;
    std::uint32_t stable = 0;
    while (state == 0) {
      const std::uint64_t pending =
          head_.load(std::memory_order_relaxed) -
          tail_.load(std::memory_order_relaxed);
      if (pending >= config_.max_batch_size) {
        // A full batch can only be executed, never improved by waiting.
        combine_once();
        stable = 0;
      } else if (pending > 0 &&
                 (now_ns() >= deadline_ns ||
                  (pending == last_pending && ++stable >= 2))) {
        // Adaptive early flush: waiting is only useful while requests
        // are still ARRIVING to fill the batch. If pending stops growing
        // across two observation spins, every producer is idle or itself
        // blocked waiting — in the worst case all clients block with an
        // underfull batch and nobody executes until max_wait expires,
        // stalling the whole pipeline. Flush on quiescence instead;
        // max_wait stays the upper bound for trickling arrivals.
        if (!combine_once()) {
          std::this_thread::sleep_for(std::chrono::microseconds(2));
        }
        stable = 0;
      } else if (pending == 0) {
        // Our batch is claimed and executing on another thread (or a pool
        // task). Sleep LONG: frequent micro-sleeps would wake us with
        // scheduler preemption credit and starve the very executor we
        // are waiting for (it only needs a few µs of CPU).
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        stable = 0;
      } else {
        // Underfull and growing: give arrivals a short observation spin
        // before re-checking (no syscall while traffic is live).
        last_pending = pending;
        for (int i = 0; i < 256; ++i) cpu_relax();
      }
      state = box->state.load(std::memory_order_acquire);
    }
  }

  BatchHold* hold = box->hold;
  std::exception_ptr error = state == 2 ? hold->error : nullptr;
  if (out != nullptr && state == 1) {
    *out = ResultSlice(hold->self, box->offset, 1);
  }
  // Drop the batch's consumer reference; the last consumer releases the
  // hold (directly to the freelist on error — no slices exist then).
  if (hold->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    if (state == 2) {
      std::lock_guard<std::mutex> lock(holds_->mu);
      holds_->free.push_back(hold);
    } else {
      hold->self.reset();
    }
  }
  free_box(box);
  if (out != nullptr && error) std::rethrow_exception(error);
}

AsyncLookupService::BatchHold* AsyncLookupService::acquire_hold() {
  std::lock_guard<std::mutex> lock(holds_->mu);
  if (!holds_->free.empty()) {
    BatchHold* hold = holds_->free.back();
    holds_->free.pop_back();
    return hold;
  }
  holds_->all.push_back(std::make_unique<BatchHold>());
  return holds_->all.back().get();
}

bool AsyncLookupService::SliceFuture::ready() const {
  return owner_ != nullptr &&
         box_->state.load(std::memory_order_acquire) != 0;
}

ResultSlice AsyncLookupService::SliceFuture::get() {
  ANCHOR_CHECK_MSG(owner_ != nullptr, "SliceFuture::get on consumed future");
  AsyncLookupService* owner = owner_;
  owner_ = nullptr;
  ResultSlice slice;
  owner->await_and_consume(box_, deadline_ns_, &slice);
  return slice;
}

void AsyncLookupService::SliceFuture::consume_if_pending() {
  if (owner_ == nullptr) return;
  AsyncLookupService* owner = owner_;
  owner_ = nullptr;
  owner->await_and_consume(box_, deadline_ns_, nullptr);
}

// ---- general path ------------------------------------------------------

std::future<ResultSlice> AsyncLookupService::enqueue(Request req) {
  req.enqueued = std::chrono::steady_clock::now();
  std::future<ResultSlice> fut = req.promise.get_future();
  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      req.promise.set_exception(std::make_exception_ptr(std::runtime_error(
          "AsyncLookupService: request after shutdown")));
      return fut;
    }
    // Wake the dispatcher only on the transitions it can act on: queue
    // became non-empty (it may be sleeping with nothing to wait for) or
    // the batch just filled (it is otherwise sleeping until the age
    // deadline and would flush late).
    const bool was_empty = queue_.empty();
    queued_keys_ += req.key_count;
    queue_.push_back(std::move(req));
    notify = was_empty || queued_keys_ >= config_.max_batch_size;
  }
  if (notify) cv_.notify_one();
  return fut;
}

std::future<ResultSlice> AsyncLookupService::lookup_word(std::string word) {
  Request req;
  req.kind = Request::Kind::kWord;
  req.word = std::move(word);
  req.key_count = 1;
  return enqueue(std::move(req));
}

std::future<ResultSlice> AsyncLookupService::lookup_ids(
    std::vector<std::size_t> ids) {
  Request req;
  req.kind = Request::Kind::kIds;
  req.key_count = ids.size();
  req.ids = std::move(ids);
  return enqueue(std::move(req));
}

std::future<ResultSlice> AsyncLookupService::lookup_words(
    std::vector<std::string> words) {
  Request req;
  req.kind = Request::Kind::kWords;
  req.key_count = words.size();
  req.words = std::move(words);
  return enqueue(std::move(req));
}

std::future<ResultSlice> AsyncLookupService::lookup_ids(
    std::vector<std::size_t> ids, const obs::TraceContext& trace) {
  Request req;
  req.kind = Request::Kind::kIds;
  req.key_count = ids.size();
  req.ids = std::move(ids);
  req.trace = trace;
  return enqueue(std::move(req));
}

std::future<ResultSlice> AsyncLookupService::lookup_words(
    std::vector<std::string> words, const obs::TraceContext& trace) {
  Request req;
  req.kind = Request::Kind::kWords;
  req.key_count = words.size();
  req.words = std::move(words);
  req.trace = trace;
  return enqueue(std::move(req));
}

std::size_t AsyncLookupService::pending() const {
  // Tail first: head only ever catches up to a later tail, so this order
  // keeps the difference non-negative under concurrent combining (the
  // reverse order could observe tail > the stale head and wrap).
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::size_t ring_pending =
      head > tail ? static_cast<std::size_t>(head - tail) : 0;
  std::lock_guard<std::mutex> lock(mu_);
  return ring_pending + queue_.size();
}

void AsyncLookupService::dispatcher_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (queue_.empty()) {
      if (stop_) break;
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      continue;
    }
    // Wait for a full batch or for the oldest request to age out. On stop
    // the remaining queue flushes immediately — every accepted request is
    // served, so a future handed out is always eventually ready.
    if (!stop_ && queued_keys_ < config_.max_batch_size) {
      const auto deadline = queue_.front().enqueued +
                            std::chrono::microseconds(config_.max_wait_us);
      while (!stop_ && queued_keys_ < config_.max_batch_size) {
        if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
      }
      if (queue_.empty()) continue;
    }

    // Drain whole requests until the key budget is spent. Requests are
    // never split; an oversized request flushes alone.
    std::vector<Request> batch;
    std::size_t keys = 0;
    while (!queue_.empty()) {
      const std::size_t next = queue_.front().key_count;
      if (!batch.empty() && keys + next > config_.max_batch_size) break;
      keys += next;
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      if (keys >= config_.max_batch_size) break;
    }
    queued_keys_ -= keys;

    if (use_pool()) {
      inflight_cv_.wait(
          lock, [this] { return inflight_ < config_.max_inflight_batches; });
      ++inflight_;
      lock.unlock();
      // shared_ptr because std::function requires copyable callables.
      auto shared_batch =
          std::make_shared<std::vector<Request>>(std::move(batch));
      util::global_pool().submit(
          [this, shared_batch] { run_batch(std::move(*shared_batch)); });
    } else {
      ++inflight_;
      lock.unlock();
      run_batch(std::move(batch));
    }
    lock.lock();
  }
  // Queue is empty and stop_ is set; wait for pool-executed batches so
  // the destructor can return with no task still referencing `this`.
  inflight_cv_.wait(lock, [this] { return inflight_ == 0; });
}

void AsyncLookupService::run_batch(std::vector<Request> batch) {
  // Group keys by kind, preserving arrival order within each group; one
  // lookup per non-empty group, shared by every waiter of that kind.
  thread_local std::vector<std::size_t> ids;
  thread_local std::vector<std::string> words;
  ids.clear();
  words.clear();
  std::size_t keys = 0;
  auto oldest = batch.front().enqueued;
  for (const Request& r : batch) {
    keys += r.key_count;
    if (r.enqueued < oldest) oldest = r.enqueued;
    switch (r.kind) {
      case Request::Kind::kIds:
        ids.insert(ids.end(), r.ids.begin(), r.ids.end());
        break;
      case Request::Kind::kWord:
        words.push_back(r.word);
        break;
      case Request::Kind::kWords:
        words.insert(words.end(), r.words.begin(), r.words.end());
        break;
    }
  }

  // One batch may carry several traced requests; each gets its own
  // batch_queue / batch_exec spans against the shared execution window.
  const Request* traced = nullptr;
  for (const Request& r : batch) {
    if (r.trace.sampled()) {
      traced = &r;
      break;
    }
  }
  const std::uint64_t exec_start_ns =
      traced != nullptr ? obs::Tracer::now_ns() : 0;

  std::shared_ptr<LookupResult> id_result, word_result;
  std::exception_ptr error;
  try {
    // The thread-local Scope lets LookupService (whose API predates
    // tracing) attribute its dequantize span to this batch's trace.
    std::optional<obs::Tracer::Scope> scope;
    if (traced != nullptr) scope.emplace(traced->trace);
    if (!ids.empty()) {
      id_result = std::make_shared<LookupResult>();
      service_.lookup_ids_into(ids, id_result.get());
    }
    if (!words.empty()) {
      word_result = std::make_shared<LookupResult>();
      service_.lookup_words_into(words, word_result.get());
    }
  } catch (...) {
    error = std::current_exception();
  }

  // Stats before fulfilling the promises, for the same
  // caller-sees-its-own-lookup ordering the fast path guarantees.
  if (!error) {
    const double latency_us = std::chrono::duration<double, std::micro>(
                                  std::chrono::steady_clock::now() - oldest)
                                  .count();
    stats_->record_batch(keys, latency_us);
    if (config_.windowed != nullptr) {
      config_.windowed->record_many(latency_us, keys, 0);
    }
  }

  if (traced != nullptr) {
    const std::uint64_t exec_end_ns = obs::Tracer::now_ns();
    obs::Tracer& tracer = obs::Tracer::instance();
    for (const Request& r : batch) {
      if (!r.trace.sampled()) continue;
      tracer.record(r.trace, obs::TraceStage::kBatchQueue,
                    static_cast<std::uint64_t>(
                        r.enqueued.time_since_epoch().count()),
                    exec_start_ns);
      tracer.record(r.trace, obs::TraceStage::kBatchExec, exec_start_ns,
                    exec_end_ns);
    }
  }

  std::size_t id_off = 0, word_off = 0;
  for (Request& r : batch) {
    if (error) {
      r.promise.set_exception(error);
      continue;
    }
    if (r.kind == Request::Kind::kIds) {
      r.promise.set_value(ResultSlice(id_result, id_off, r.key_count));
      id_off += r.key_count;
    } else {
      r.promise.set_value(ResultSlice(word_result, word_off, r.key_count));
      word_off += r.key_count;
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
  }
  inflight_cv_.notify_all();
}

}  // namespace anchor::serve
