// Serving-side runtime statistics.
//
// Counters are lock-free atomics so the lookup hot path never serializes on
// a stats mutex; latency percentiles come from a fixed-size ring of recent
// per-batch samples written with a relaxed fetch_add cursor. A snapshot()
// copies the ring and sorts it off the hot path, so p50/p99 cost is paid by
// whoever asks for the numbers, not by the servers producing them.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace anchor::serve {

/// Point-in-time view of the counters, produced by ServeStats::snapshot().
struct StatsSnapshot {
  std::uint64_t lookups = 0;        // individual vectors served
  std::uint64_t batches = 0;        // batched requests served
  std::uint64_t cache_hits = 0;     // hot-row cache hits
  std::uint64_t cache_misses = 0;
  std::uint64_t oov_fallbacks = 0;  // lookups answered via subword synthesis
  double elapsed_seconds = 0.0;     // since construction or last reset
  double qps = 0.0;                 // lookups / elapsed_seconds
  double p50_latency_us = 0.0;      // per-batch latency percentiles
  double p99_latency_us = 0.0;

  double cache_hit_rate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }

  /// One-line human-readable summary ("qps=... p50=...us ...").
  std::string summary() const;
};

/// Lock-free counters shared by every thread of a LookupService.
class ServeStats {
 public:
  ServeStats() { reset(); }

  /// Records one served batch of `lookups` vectors taking `latency_us`.
  void record_batch(std::uint64_t lookups, double latency_us);
  /// Counts a served batch WITHOUT a latency sample — for callers that
  /// timestamp only a fraction of their traffic (the async batcher's
  /// sampled clock): unsampled batches must not pollute the percentile
  /// ring with fake 0 µs entries.
  void record_batch_unsampled(std::uint64_t lookups) {
    lookups_.fetch_add(lookups, std::memory_order_relaxed);
    batches_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_cache_hit(std::uint64_t n = 1) {
    cache_hits_.fetch_add(n, std::memory_order_relaxed);
  }
  void record_cache_miss(std::uint64_t n = 1) {
    cache_misses_.fetch_add(n, std::memory_order_relaxed);
  }
  void record_oov(std::uint64_t n = 1) {
    oov_fallbacks_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Consistent-enough copy of all counters plus derived rates. Safe to call
  /// concurrently with recording.
  StatsSnapshot snapshot() const;

  /// Zeroes every counter and restarts the QPS clock. Concurrent recording
  /// during a reset can leave a few COUNTS attributed to either side of the
  /// reset — counters stay valid, only the attribution is fuzzy. The
  /// percentile ring is stricter: every slot is tagged with the reset
  /// generation it was recorded under, and snapshot() ignores slots from
  /// older generations, so p50/p99 can never mix pre- and post-reset
  /// samples (an in-flight record that straddles the reset lands tagged
  /// with the OLD generation and is simply excluded).
  void reset();

 private:
  static constexpr std::size_t kLatencyRing = 4096;

  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> oov_fallbacks_{0};
  std::atomic<std::uint64_t> latency_cursor_{0};
  /// Bumped by reset(); the low 32 bits tag every ring slot.
  std::atomic<std::uint64_t> generation_{0};
  // Latency samples in microseconds, packed (generation << 32 | f32 bits);
  // slots are overwritten oldest-first once the ring wraps. Relaxed
  // ordering is fine: percentile estimation does not need a linearizable
  // view, and stale-generation slots are filtered at snapshot time rather
  // than cleared at reset time (O(1) reset).
  std::array<std::atomic<std::uint64_t>, kLatencyRing> latency_ring_{};
  // steady_clock ticks at the last reset; atomic because snapshot() is
  // documented safe to call concurrently with reset().
  std::atomic<std::chrono::steady_clock::rep> start_ticks_{0};
};

std::ostream& operator<<(std::ostream& os, const StatsSnapshot& s);

}  // namespace anchor::serve
