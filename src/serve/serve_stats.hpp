// Serving-side runtime statistics.
//
// Counters are lock-free atomics so the lookup hot path never serializes
// on a stats mutex; latency quantiles come from an obs::LogHistogram —
// fixed log-bucketed, lock-free, exactly mergeable across processes
// (which is how the cluster router aggregates shard stats; see
// obs/log_histogram.hpp for the bucket-error contract). A snapshot()
// copies the buckets off the hot path, so p50/p99 cost is paid by
// whoever asks for the numbers, not by the servers producing them.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "obs/log_histogram.hpp"

namespace anchor::serve {

/// Point-in-time view of the counters, produced by ServeStats::snapshot().
struct StatsSnapshot {
  std::uint64_t lookups = 0;        // individual vectors served
  std::uint64_t batches = 0;        // batched requests served
  std::uint64_t cache_hits = 0;     // hot-row cache hits
  std::uint64_t cache_misses = 0;
  std::uint64_t oov_fallbacks = 0;  // lookups answered via subword synthesis
  double elapsed_seconds = 0.0;     // since construction or last reset
  double qps = 0.0;                 // lookups / elapsed_seconds
  /// Per-batch latency quantiles derived from `latency` (bucket lower
  /// bound, ≤ 1/32 relative error — obs::LogHistogram's contract).
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  /// The full mergeable latency histogram (µs). Cluster aggregation merges
  /// these and re-derives the quantiles, never maxes the percentiles.
  obs::HistogramSnapshot latency;

  double cache_hit_rate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }

  /// Re-derives p50/p99 from `latency` — what cluster aggregation calls
  /// after merging shard histograms into this snapshot.
  void refresh_percentiles() {
    p50_latency_us = latency.quantile(0.50);
    p99_latency_us = latency.quantile(0.99);
  }

  /// One-line human-readable summary ("qps=... p50=...us ...").
  std::string summary() const;
};

/// Lock-free counters shared by every thread of a LookupService.
class ServeStats {
 public:
  ServeStats() { reset(); }

  /// Records one served batch of `lookups` vectors taking `latency_us`.
  void record_batch(std::uint64_t lookups, double latency_us);
  /// Counts a served batch WITHOUT a latency sample — for callers that
  /// timestamp only a fraction of their traffic (the async batcher's
  /// sampled clock): unsampled batches must not pollute the latency
  /// histogram with fake 0 µs entries.
  void record_batch_unsampled(std::uint64_t lookups) {
    lookups_.fetch_add(lookups, std::memory_order_relaxed);
    batches_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_cache_hit(std::uint64_t n = 1) {
    cache_hits_.fetch_add(n, std::memory_order_relaxed);
  }
  void record_cache_miss(std::uint64_t n = 1) {
    cache_misses_.fetch_add(n, std::memory_order_relaxed);
  }
  void record_oov(std::uint64_t n = 1) {
    oov_fallbacks_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Consistent-enough copy of all counters plus derived rates. Safe to call
  /// concurrently with recording.
  StatsSnapshot snapshot() const;

  /// The live latency histogram's current state — what the metrics plane
  /// bridges into its registry.
  obs::HistogramSnapshot latency_histogram() const {
    return latency_.snapshot();
  }

  /// Zeroes every counter and bucket and restarts the QPS clock.
  /// Concurrent recording during a reset can leave a few records
  /// attributed to either side of it — values stay valid, only the
  /// attribution is fuzzy (the histogram zeroes its buckets in place, so
  /// no pre-reset sample survives into the new window).
  void reset();

 private:
  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> oov_fallbacks_{0};
  /// Per-batch latency samples in µs. Covers every sampled batch since
  /// the last reset (no ring, no windowing): quantiles describe the whole
  /// window the counters describe, and two processes' histograms merge
  /// into the fleet view exactly.
  obs::LogHistogram latency_;
  // steady_clock ticks at the last reset; atomic because snapshot() is
  // documented safe to call concurrently with reset().
  std::atomic<std::chrono::steady_clock::rep> start_ticks_{0};
};

std::ostream& operator<<(std::ostream& os, const StatsSnapshot& s);

}  // namespace anchor::serve
