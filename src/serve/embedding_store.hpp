// Versioned in-memory embedding store — the state behind the serving layer.
//
// The paper's motivating scenario (§1) is an embedding server whose periodic
// model refreshes churn downstream predictions. This module holds the
// *versions*: each snapshot is an immutable, sharded embedding matrix that
// is full-precision fp32, uniform-quantized to b bits (same grid as
// compress/quantize, bit-packed, dequantized on the fly), or
// product-quantized (compress/pq codebooks, one byte per sub-vector code,
// fused-decoded on the fly) — so a server can keep several generations
// resident — the live one, the candidate under evaluation by the
// DeploymentGate, and a rollback target — within a memory budget set by the
// paper's compression axis.
//
// Snapshots are immutable after construction; readers hold shared_ptrs, so
// hot-swapping the live version never blocks or invalidates in-flight
// lookups.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "embed/embedding.hpp"
#include "embed/subword.hpp"
#include "la/matrix.hpp"

namespace anchor::serve {

struct SnapshotConfig {
  /// 32 stores fp32 rows verbatim; 1/2/4/8 stores bit-packed uniform-
  /// quantization codes on the compress/quantize grid (≈ 32/bits× smaller).
  int bits = 32;
  /// Rows are distributed round-robin over shards (row → shard row % S),
  /// keeping per-shard storage independently allocated — the unit a future
  /// NUMA/affinity placement works with. (The LookupService's cache has its
  /// own fixed shard pool, independent of this count.)
  std::size_t num_shards = 8;
  /// When > 0, reuse this clip threshold instead of computing one — the
  /// Appendix C.2 convention of sharing the first snapshot's threshold with
  /// its successor so quantization adds no gratuitous disagreement. Only
  /// meaningful for uniform quantization (bits < 32); add_version rejects
  /// it for fp32 and PQ snapshots.
  float clip_override = 0.0f;
  /// Product-quantization mode (compress/pq): when pq_m > 0 each row is
  /// split into pq_m sub-vectors of dim/pq_m floats and each sub-vector is
  /// replaced by the index of the nearest of 2^pq_bits learned centroids —
  /// a row costs pq_m bytes (one byte per code) plus a codebook shared
  /// across the vocabulary, e.g. pq:4x8 stores a dim-48 row in 4 bytes vs
  /// 48 for int8. Requires bits == 32 (PQ replaces uniform quantization
  /// rather than stacking on it) and pq_m must divide dim.
  std::size_t pq_m = 0;
  /// Per-sub-vector code width, 1..8 so every code fits one byte.
  int pq_bits = 8;
  /// When non-empty: pq_m codebooks, each 2^pq_bits × (dim/pq_m) row-major
  /// floats, reused instead of trained — the PQ analogue of clip_override
  /// and ann::IvfPqArtifacts. Shards of a vocabulary encoding their slices
  /// with SHARED codebooks produce codes that are pure functions of the row
  /// bytes, so a router's scatter-gather merge is bit-identical to a
  /// single-process PQ store.
  std::vector<std::vector<float>> pq_codebooks_override;
  /// Build the hashed character-n-gram table used for OOV fallback
  /// (scatter-averaged from the word vectors, fastText-style).
  bool build_oov_table = true;
  /// Orthogonal-Procrustes-align the incoming rows to the store's live
  /// snapshot before encoding (the paper's Appendix C.2 protocol, applied
  /// at ingestion): the rotation is fit on the shared-vocabulary prefix
  /// and applied to every row, so a refresh that differs from the
  /// incumbent mostly by a rotation of the latent space stops tripping
  /// the displacement-based canary rollback (and downstream consumers
  /// mixing vectors across versions see comparable coordinates). No-op
  /// when the store has no live snapshot or the dimensions differ.
  bool align_to_live = false;
  /// Shared-prefix rows the rotation is fit on (0 = the full shared
  /// vocabulary). The d×d Procrustes solve is cheap; this bounds only the
  /// BᵀA Gram accumulation.
  std::size_t align_rows = 2048;
};

/// One immutable embedding version. Construct via EmbeddingStore.
class EmbeddingSnapshot {
 public:
  EmbeddingSnapshot(std::string version, const embed::Embedding& source,
                    const SnapshotConfig& config, std::uint64_t epoch,
                    bool aligned = false);

  const std::string& version() const { return version_; }
  std::size_t vocab_size() const { return vocab_size_; }
  std::size_t dim() const { return dim_; }
  int bits() const { return config_.bits; }
  float clip() const { return clip_; }
  std::size_t num_shards() const { return shards_.size(); }
  /// True when rows are stored as product-quantization codes.
  bool is_pq() const { return config_.pq_m > 0; }
  std::size_t pq_m() const { return config_.pq_m; }
  int pq_bits() const { return config_.pq_bits; }
  /// Human/wire name of the row encoding: "fp32", "int8"/"int4"/"int2"/
  /// "int1", or "pq:<m>x<b>". This is what STATS/METRICS report and what
  /// `anchor_served --bits` parses.
  std::string encoding() const;
  /// PQ codebooks flattened for the decode kernel: pq_m × 2^pq_bits ×
  /// (dim/pq_m) floats, sub-quantizer-major. Empty unless is_pq().
  const std::vector<float>& pq_codebooks_flat() const { return pq_flat_; }
  /// PQ codebooks in compress::PqConfig::codebooks_override form (one
  /// vector per sub-quantizer) — hand these to a peer store so its shard
  /// encodes with SHARED codebooks, or compare with ann::IvfPqArtifacts.
  std::vector<std::vector<float>> pq_codebook_vectors() const;
  /// Row w's pq_m one-byte codes (contiguous). Only valid when is_pq() —
  /// the zero-copy handle AnnService uses to reuse a snapshot's encoding
  /// instead of re-encoding.
  const std::uint8_t* pq_row_codes(std::size_t w) const;
  /// Monotonically increasing id unique across all snapshots of a store;
  /// hot-row caches key on it so a swap can never serve stale vectors.
  std::uint64_t epoch() const { return epoch_; }
  /// True when the rows were Procrustes-aligned to the then-live snapshot
  /// at ingestion (SnapshotConfig::align_to_live actually applied).
  bool aligned_to_incumbent() const { return aligned_; }
  /// Resident bytes of ALL owned buffers: row storage (fp32, packed codes,
  /// or PQ codes), PQ codebooks, and the OOV table + its bucket counts.
  /// EmbeddingStore::total_memory_bytes() sums this across versions, so the
  /// memory-budget story accounts for everything a snapshot keeps alive.
  std::size_t memory_bytes() const;
  bool has_oov_table() const { return !oov_table_.empty(); }

  std::size_t shard_of(std::size_t row) const { return row % shards_.size(); }

  /// Writes row `w` (dequantized if stored quantized) into out[0..dim).
  /// Quantized rows unpack through the fused la::kernels::dequantize_rows
  /// path (whole row per call, SIMD when available).
  void copy_row(std::size_t w, float* out) const;

  /// Batched copy_row: writes rows ids[0..n) consecutively into
  /// out[0 .. n·dim). Every id must be < vocab_size(). This is the unit the
  /// LookupService's miss path and the gate's matrix export build on.
  void copy_rows(const std::size_t* ids, std::size_t n, float* out) const;

  /// Synthesizes a vector for an out-of-vocabulary word as the average of
  /// its hashed character-n-gram bucket vectors. Returns false (and zeroes
  /// `out`) when no table was built or no n-gram bucket is populated.
  bool synthesize_oov(const std::string& word, float* out) const;

  /// First min(vocab, max_rows) rows as a double matrix — the form the
  /// core/measures gate computations consume. max_rows = 0 means all.
  la::Matrix to_matrix(std::size_t max_rows = 0) const;

 private:
  struct Shard {
    std::vector<float> fp32;          // bits == 32
    std::vector<std::uint8_t> codes;  // bits < 32, bit-packed
    std::size_t rows = 0;
  };

  void encode_shard_row(Shard& shard, std::size_t local_row,
                        const float* src);
  void build_oov_table(const embed::Embedding& source);

  std::string version_;
  SnapshotConfig config_;
  std::size_t vocab_size_ = 0;
  std::size_t dim_ = 0;
  float clip_ = 0.0f;
  std::uint64_t epoch_ = 0;
  bool aligned_ = false;
  std::vector<Shard> shards_;
  std::vector<float> pq_flat_;  // pq_m × ksub × sub_dim, empty unless PQ
  embed::FastTextConfig oov_config_;    // hashing parameters for n-grams
  std::vector<float> oov_table_;        // bucket_count × dim, scatter-averaged
  std::vector<std::uint32_t> oov_counts_;  // words contributing per bucket
};

using SnapshotPtr = std::shared_ptr<const EmbeddingSnapshot>;

/// Thread-safe registry of embedding versions with one designated "live"
/// snapshot. Promotion is expected to go through the DeploymentGate.
class EmbeddingStore {
 public:
  EmbeddingStore() = default;

  /// Registers an in-memory embedding under `version`. Replacing an
  /// existing version is allowed (the old snapshot lives on in any reader
  /// still holding it). The first version added becomes live.
  SnapshotPtr add_version(const std::string& version,
                          const embed::Embedding& source,
                          const SnapshotConfig& config = {});

  /// Registers a version from a word2vec-text file via embed::load_text.
  SnapshotPtr load_version(const std::string& version,
                           const std::filesystem::path& path,
                           const SnapshotConfig& config = {});

  /// Snapshot by version id; nullptr when absent.
  SnapshotPtr snapshot(const std::string& version) const;
  bool has_version(const std::string& version) const;
  std::vector<std::string> versions() const;

  /// The snapshot currently serving traffic; nullptr before any add.
  SnapshotPtr live() const;
  std::string live_version() const;

  /// Points live at `version`. Throws when the version is unknown. Called
  /// by DeploymentGate::try_promote after the instability check passes.
  void set_live(const std::string& version);

  /// Points live at the exact snapshot `snap` — but only if it is still the
  /// one registered under its version id. Returns false when a concurrent
  /// add_version replaced it, so a gate never promotes a snapshot it did
  /// not evaluate (the TOCTOU hole a name-based promote would open).
  bool set_live_snapshot(const SnapshotPtr& snap);

  /// Drops a version from the registry. Throws when it is the live one, or
  /// when any holder outside the store still pins its snapshot — a canary's
  /// LookupConfig::pin_snapshot, AnnService's epoch-keyed index cache, an
  /// in-flight reader — so a rollback target can never vanish under a
  /// router. (All snapshot acquisition goes through this store's mutex, so
  /// the use-count probe cannot race a new pin; a concurrent *release* can
  /// at worst make removal refuse conservatively — retry after the holder
  /// is gone.)
  void remove_version(const std::string& version);

  /// Total resident row-storage bytes across all registered versions.
  std::size_t total_memory_bytes() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, SnapshotPtr> versions_;
  SnapshotPtr live_;
  std::uint64_t next_epoch_ = 1;
};

}  // namespace anchor::serve
