// Async batching front-end over LookupService — the request-coalescing
// server core (the cuBERT/CTranslate2 pattern).
//
// Requests from any number of client threads are coalesced into batches
// of up to `max_batch_size` keys (or whatever has accumulated once the
// oldest waiter has aged `max_wait_us`) and executed through
// LookupService::lookup_ids_into / lookup_words_into — so N callers doing
// blocking single-key lookups ride the same batched cache/dequantize hot
// path a native batch caller gets, amortizing per-batch overhead
// (snapshot resolve, shard locks, stats) across all of them.
//
// Two internal paths share that policy:
//
// 1. SINGLE-KEY ID FAST PATH (`lookup_id` → SliceFuture): a fixed ring of
//    slots with Vyukov-style per-slot sequence numbers. Enqueue is one
//    atomic fetch_add plus a release store — no mutex, no heap allocation,
//    no promise. Batches are executed by *flat combining*: the enqueuer
//    that fills a batch, or a waiter whose deadline expires, claims the
//    combiner lock, drains up to max_batch_size slots, runs ONE
//    lookup_ids_into, and scatters result offsets back into the slots.
//    There is no dispatcher thread on this path at all, so on a single
//    core the produce→combine→consume cycle costs no context switches.
//    Contract: every SliceFuture must be consumed (get() or destroyed)
//    before the service is destroyed.
//
// 2. GENERAL PATH (`lookup_ids`/`lookup_word(s)` → std::future): an MPMC
//    deque drained by a dispatcher thread. Multi-key and word requests
//    amortize their per-request promise cost over many keys, so the
//    simpler machinery is the right tradeoff; destruction drains the
//    queue (every future still completes).
//
// Scatter is zero-copy on both paths: each coalesced batch produces ONE
// LookupResult and every waiter's future resolves to a ResultSlice — an
// (offset, count) view into that shared buffer. Fast-path result buffers
// are recycled through a freelist, so the steady state allocates nothing
// per batch.
//
// Execution placement: with a multi-worker util::global_pool coalesced
// batches are submitted to the shared pool so several can be in flight at
// once (bounded by `max_inflight_batches` on the general path); with a
// single-worker pool (1-core hosts) there is no overlap to win and the
// combiner/dispatcher executes inline, skipping the pool's queue+wake
// cost.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "obs/windowed.hpp"
#include "serve/lookup_service.hpp"
#include "serve/serve_stats.hpp"

namespace anchor::serve {

struct BatcherConfig {
  /// Flush a coalesced batch once this many keys are waiting. Requests are
  /// never split: a single request larger than this flushes alone.
  std::size_t max_batch_size = 64;
  /// Flush once the oldest queued request has waited this long, even if
  /// the batch is not full — bounds added latency under light traffic.
  std::uint32_t max_wait_us = 100;
  /// Coalesced batches concurrently in flight when executing on the pool.
  std::size_t max_inflight_batches = 4;
  /// Fast-path ring slots (rounded up to a power of two). Bounds only the
  /// burst of enqueued-but-not-yet-coalesced single-key requests — slots
  /// are freed when a combiner claims them, not when results are
  /// consumed, so slow or idle future holders never wedge the ring.
  /// Producers finding it full help combine and retry (backpressure, not
  /// failure).
  std::size_t ring_capacity = 1024;
  /// Where coalesced batches execute. kAuto picks the shared
  /// util::global_pool when it has more than one worker (overlap exists to
  /// win) and the combining/dispatcher thread itself otherwise.
  enum class Exec { kAuto, kPool, kInline };
  Exec exec = Exec::kAuto;
  /// When set, every coalesced flush is recorded as a windowed slice
  /// (keys with their shared client-observed latency), so the rolling
  /// batch QPS rides the same ring the RPC plane uses. Not owned; must
  /// outlive the service.
  obs::WindowedStats* windowed = nullptr;
};

/// One caller's slice of a coalesced batch result: rows
/// [first, first+count) of the shared LookupResult. Copyable; holding any
/// slice keeps the whole batch buffer alive.
class ResultSlice {
 public:
  ResultSlice() = default;
  ResultSlice(std::shared_ptr<const LookupResult> batch, std::size_t first,
              std::size_t count)
      : batch_(std::move(batch)), first_(first), count_(count) {}

  std::size_t size() const { return count_; }
  std::size_t first() const { return first_; }
  std::size_t dim() const { return batch_ ? batch_->dim : 0; }
  const float* row(std::size_t i) const { return batch_->row(first_ + i); }
  bool oov(std::size_t i) const { return batch_->oov[first_ + i] != 0; }
  const std::string& version() const { return batch_->version; }
  /// The whole coalesced result this slice views (shared with co-batched
  /// waiters); null for a default-constructed or empty-request slice.
  const std::shared_ptr<const LookupResult>& batch() const { return batch_; }

 private:
  std::shared_ptr<const LookupResult> batch_;
  std::size_t first_ = 0;
  std::size_t count_ = 0;
};

class AsyncLookupService {
  struct Mailbox;  // fast-path rendezvous node, defined below

 public:
  /// Handle to one single-key fast-path request. Move-only, must be
  /// consumed — get() or destruction — before the AsyncLookupService is
  /// destroyed (pending results rendezvous through service-executed
  /// batches). get() blocks until a combiner executed the request's
  /// batch, stepping up as the combiner itself once the max_wait deadline
  /// passes; destruction of an un-got future does the same and discards
  /// the result.
  class SliceFuture {
   public:
    SliceFuture() = default;
    SliceFuture(SliceFuture&& other) noexcept
        : owner_(other.owner_), box_(other.box_), deadline_ns_(other.deadline_ns_) {
      other.owner_ = nullptr;
    }
    SliceFuture& operator=(SliceFuture&& other) noexcept {
      if (this != &other) {
        consume_if_pending();
        owner_ = other.owner_;
        box_ = other.box_;
        deadline_ns_ = other.deadline_ns_;
        other.owner_ = nullptr;
      }
      return *this;
    }
    SliceFuture(const SliceFuture&) = delete;
    SliceFuture& operator=(const SliceFuture&) = delete;
    ~SliceFuture() { consume_if_pending(); }

    bool valid() const { return owner_ != nullptr; }
    /// True when get() would return without blocking. Lets a pipelined
    /// caller drain completed requests eagerly instead of blocking only
    /// once its window is full.
    bool ready() const;
    /// Blocks until the result is ready (combining if needed), consumes
    /// it, and returns a one-row slice of the coalesced batch. Rethrows
    /// the batch's failure, if any. One-shot: valid() afterwards is
    /// false.
    ResultSlice get();

   private:
    friend class AsyncLookupService;
    SliceFuture(AsyncLookupService* owner, Mailbox* box,
                std::int64_t deadline_ns)
        : owner_(owner), box_(box), deadline_ns_(deadline_ns) {}
    void consume_if_pending();

    AsyncLookupService* owner_ = nullptr;
    Mailbox* box_ = nullptr;
    std::int64_t deadline_ns_ = 0;
  };

  /// The service must outlive this object. `stats` records *coalesced*
  /// batches with client-observed latency (enqueue of the oldest waiter →
  /// scatter), one record per flush — the underlying LookupService's own
  /// stats keep counting the executed batches. Null = internal instance.
  explicit AsyncLookupService(const LookupService& service,
                              BatcherConfig config = {},
                              std::shared_ptr<ServeStats> stats = nullptr);
  /// Drains every queued general-path request (each future still
  /// completes) and stops the dispatcher. Fast-path contract: every
  /// SliceFuture was consumed before destruction.
  ~AsyncLookupService();
  AsyncLookupService(const AsyncLookupService&) = delete;
  AsyncLookupService& operator=(const AsyncLookupService&) = delete;

  /// Single-key id lookup — the RPC front-end's unit of traffic, served
  /// by the allocation-free ring + flat combining fast path.
  SliceFuture lookup_id(std::size_t id);

  /// General path: multi-key and word requests coalesce with each other
  /// on the dispatcher thread; the slice spans the request's keys in
  /// order. The future throws if the underlying lookup threw (e.g. empty
  /// store) or the service was destroyed before the request was queued.
  std::future<ResultSlice> lookup_ids(std::vector<std::size_t> ids);
  std::future<ResultSlice> lookup_word(std::string word);
  std::future<ResultSlice> lookup_words(std::vector<std::string> words);

  /// Traced variants: the request carries `trace` through the queue, so
  /// run_batch records its batch_queue / batch_exec spans (and installs a
  /// Tracer::Scope so the LookupService underneath attributes its
  /// dequantize span). Untraced contexts behave exactly like the plain
  /// overloads.
  std::future<ResultSlice> lookup_ids(std::vector<std::size_t> ids,
                                      const obs::TraceContext& trace);
  std::future<ResultSlice> lookup_words(std::vector<std::string> words,
                                        const obs::TraceContext& trace);

  const ServeStats& stats() const { return *stats_; }
  ServeStats& stats() { return *stats_; }
  const BatcherConfig& config() const { return config_; }

  /// Requests currently queued (not yet flushed), both paths. For
  /// tests/monitoring.
  std::size_t pending() const;

 private:
  // ---- fast path: single-key slot ring + flat combining ----------------

  /// One coalesced fast-path batch result, recycled through the shared
  /// freelist. `self` (an aliasing shared_ptr of `result`) backs every
  /// ResultSlice of the batch; its deleter returns the hold to the
  /// freelist, so the buffers live exactly as long as the last
  /// outstanding slice — and because the freelist itself is
  /// shared_ptr-owned, slices may safely outlive the service.
  struct BatchHold {
    LookupResult result;
    std::shared_ptr<const LookupResult> self;
    /// Unconsumed slots of this batch; the last consumer drops `self`.
    std::atomic<std::uint32_t> refs{0};
    std::exception_ptr error;
  };

  struct HoldFreelist {
    std::mutex mu;
    std::vector<std::unique_ptr<BatchHold>> all;  // owns the memory
    std::vector<BatchHold*> free;
  };

  /// Per-request rendezvous for the fast path. Allocated by the enqueuing
  /// thread and freed by the consuming thread — the same thread in the
  /// blocking-caller pattern, so the allocator's thread cache makes the
  /// pair cheap. Decoupling results from ring slots is what lets a
  /// combiner free slots at claim time: a future held unconsumed for
  /// minutes costs one idle Mailbox, not a wedged ring.
  struct Mailbox {
    std::atomic<std::uint32_t> state{0};  // 0 pending, 1 ready, 2 error
    std::uint32_t offset = 0;
    BatchHold* hold = nullptr;
  };

  /// Ring slot. `seq` encodes the slot's lifecycle for absolute position
  /// p (ring of capacity C): p = free (producer may claim), p+1 = queued
  /// (request written, waiting for a combiner), p+C = free for the next
  /// lap (combiner copied the request out at claim time). Cache-line
  /// sized so neighboring slots do not false-share.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> seq{0};
    std::size_t key = 0;
    std::int64_t enqueued_ns = 0;  // 0 = unsampled (see kClockSampleMask)
    Mailbox* box = nullptr;
  };

  /// Claims one fast-path batch under the combiner try-lock (freeing the
  /// claimed slots immediately) and executes it (inline or on the pool).
  /// Returns false when the lock was busy or nothing was claimable.
  bool combine_once();
  /// Caller keeps the vectors alive for the duration of the call (the
  /// combiner's thread_local scratch inline; the task-owned copies on
  /// the pool path).
  void execute_fast_batch(const std::vector<std::size_t>& keys,
                          const std::vector<Mailbox*>& boxes,
                          std::int64_t oldest_ns);
  /// Waits for `box` to leave the pending state (spin → sleep → combine
  /// once `deadline_ns` passes), consumes the result, and frees the box.
  /// `out` may be null (discard). Rethrows the batch's failure when `out`
  /// is non-null.
  void await_and_consume(Mailbox* box, std::int64_t deadline_ns,
                         ResultSlice* out);
  BatchHold* acquire_hold();
  /// Mailbox recycling through a thread-local cache: boxes are plain
  /// memory with no per-service state, so the cache is shared by all
  /// services on the thread and both operations are pointer pushes —
  /// no allocator or lock on the fast path once warm.
  static std::vector<Mailbox*>& box_cache();
  static Mailbox* alloc_box();
  static void free_box(Mailbox* box);

  // ---- general path: request deque + dispatcher ------------------------

  struct Request {
    enum class Kind { kIds, kWord, kWords };
    Kind kind = Kind::kIds;
    std::string word;
    std::vector<std::size_t> ids;
    std::vector<std::string> words;
    std::size_t key_count = 0;
    std::chrono::steady_clock::time_point enqueued;
    std::promise<ResultSlice> promise;
    /// Invalid for untraced requests (the common case — no overhead
    /// beyond the copy).
    obs::TraceContext trace;
  };

  std::future<ResultSlice> enqueue(Request req);
  void dispatcher_loop();
  /// Executes one coalesced general-path batch (dispatcher thread or pool
  /// worker): groups ids and words, runs one lookup_*_into per non-empty
  /// group, scatters slices to every waiter, records stats, releases the
  /// in-flight slot.
  void run_batch(std::vector<Request> batch);
  bool use_pool() const;

  const LookupService& service_;
  BatcherConfig config_;
  std::shared_ptr<ServeStats> stats_;

  // Fast path state.
  std::vector<Slot> slots_;
  std::uint64_t ring_mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // next claimable pos
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // next uncombined pos
  std::mutex combine_mu_;
  std::shared_ptr<HoldFreelist> holds_;

  // General path state.
  mutable std::mutex mu_;
  std::condition_variable cv_;           // wakes the dispatcher
  std::condition_variable inflight_cv_;  // throttles pool submission
  std::deque<Request> queue_;
  std::size_t queued_keys_ = 0;
  std::size_t inflight_ = 0;
  bool stop_ = false;
  std::thread dispatcher_;
};

}  // namespace anchor::serve
