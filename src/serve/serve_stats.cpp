#include "serve/serve_stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <ostream>
#include <sstream>
#include <vector>

namespace anchor::serve {

void ServeStats::record_batch(std::uint64_t lookups, double latency_us) {
  lookups_.fetch_add(lookups, std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  // Generation first: a record that straddles a concurrent reset() keeps
  // the OLD tag and is excluded from post-reset snapshots, never mixed in.
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  const std::uint64_t slot =
      latency_cursor_.fetch_add(1, std::memory_order_relaxed) % kLatencyRing;
  const std::uint64_t packed =
      (gen << 32) |
      std::bit_cast<std::uint32_t>(static_cast<float>(latency_us));
  latency_ring_[slot].store(packed, std::memory_order_relaxed);
}

StatsSnapshot ServeStats::snapshot() const {
  StatsSnapshot s;
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.oov_fallbacks = oov_fallbacks_.load(std::memory_order_relaxed);

  const auto start = std::chrono::steady_clock::time_point(
      std::chrono::steady_clock::duration(
          start_ticks_.load(std::memory_order_relaxed)));
  s.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (s.elapsed_seconds > 0.0) {
    s.qps = static_cast<double>(s.lookups) / s.elapsed_seconds;
  }

  const std::uint64_t gen =
      generation_.load(std::memory_order_acquire) & 0xffffffffull;
  const std::uint64_t written =
      std::min<std::uint64_t>(latency_cursor_.load(std::memory_order_relaxed),
                              kLatencyRing);
  std::vector<float> samples;
  samples.reserve(written);
  for (std::uint64_t i = 0; i < written; ++i) {
    const std::uint64_t packed =
        latency_ring_[i].load(std::memory_order_relaxed);
    // Slots tagged with another generation straddled a reset (or predate
    // the latest one); mixing them into this window's percentiles is the
    // bug this filter exists to prevent.
    if ((packed >> 32) != gen) continue;
    samples.push_back(
        std::bit_cast<float>(static_cast<std::uint32_t>(packed)));
  }
  if (!samples.empty()) {
    std::sort(samples.begin(), samples.end());
    // Nearest-rank percentile: ceil(p·n) is the smallest sample count that
    // covers fraction p, so with few samples p99 reports the tail value
    // instead of collapsing onto the median.
    const auto pct = [&](double p) {
      const double rank = std::ceil(p * static_cast<double>(samples.size()));
      const auto idx = std::min<std::size_t>(
          samples.size() - 1,
          static_cast<std::size_t>(std::max(rank - 1.0, 0.0)));
      return static_cast<double>(samples[idx]);
    };
    s.p50_latency_us = pct(0.50);
    s.p99_latency_us = pct(0.99);
  }
  return s;
}

void ServeStats::reset() {
  lookups_.store(0, std::memory_order_relaxed);
  batches_.store(0, std::memory_order_relaxed);
  cache_hits_.store(0, std::memory_order_relaxed);
  cache_misses_.store(0, std::memory_order_relaxed);
  oov_fallbacks_.store(0, std::memory_order_relaxed);
  // Generation bump BEFORE the cursor rewind: records racing this reset
  // either carry the old tag (excluded from the new window) or the new
  // tag with a pre-rewind cursor (their slot simply is not read until
  // genuinely overwritten). Stale slots need no clearing — the tag filter
  // in snapshot() makes them invisible, so reset is O(1).
  generation_.fetch_add(1, std::memory_order_acq_rel);
  latency_cursor_.store(0, std::memory_order_relaxed);
  start_ticks_.store(
      std::chrono::steady_clock::now().time_since_epoch().count(),
      std::memory_order_relaxed);
}

std::string StatsSnapshot::summary() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const StatsSnapshot& s) {
  os << "lookups=" << s.lookups << " batches=" << s.batches
     << " qps=" << s.qps << " p50=" << s.p50_latency_us
     << "us p99=" << s.p99_latency_us
     << "us cache_hit_rate=" << s.cache_hit_rate()
     << " oov=" << s.oov_fallbacks;
  return os;
}

}  // namespace anchor::serve
