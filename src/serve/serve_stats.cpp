#include "serve/serve_stats.hpp"

#include <ostream>
#include <sstream>

namespace anchor::serve {

void ServeStats::record_batch(std::uint64_t lookups, double latency_us) {
  lookups_.fetch_add(lookups, std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);
  latency_.record(latency_us);
}

StatsSnapshot ServeStats::snapshot() const {
  StatsSnapshot s;
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.oov_fallbacks = oov_fallbacks_.load(std::memory_order_relaxed);

  const auto start = std::chrono::steady_clock::time_point(
      std::chrono::steady_clock::duration(
          start_ticks_.load(std::memory_order_relaxed)));
  s.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (s.elapsed_seconds > 0.0) {
    s.qps = static_cast<double>(s.lookups) / s.elapsed_seconds;
  }

  s.latency = latency_.snapshot();
  s.refresh_percentiles();
  return s;
}

void ServeStats::reset() {
  lookups_.store(0, std::memory_order_relaxed);
  batches_.store(0, std::memory_order_relaxed);
  cache_hits_.store(0, std::memory_order_relaxed);
  cache_misses_.store(0, std::memory_order_relaxed);
  oov_fallbacks_.store(0, std::memory_order_relaxed);
  latency_.reset();
  start_ticks_.store(
      std::chrono::steady_clock::now().time_since_epoch().count(),
      std::memory_order_relaxed);
}

std::string StatsSnapshot::summary() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const StatsSnapshot& s) {
  os << "lookups=" << s.lookups << " batches=" << s.batches
     << " qps=" << s.qps << " p50=" << s.p50_latency_us
     << "us p99=" << s.p99_latency_us
     << "us cache_hit_rate=" << s.cache_hit_rate()
     << " oov=" << s.oov_fallbacks;
  return os;
}

}  // namespace anchor::serve
