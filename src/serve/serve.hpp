// Umbrella header for the serving subsystem: versioned snapshot storage,
// batched thread-safe lookup, instability-gated promotion, and runtime
// stats. See each header for the design rationale.
#pragma once

#include "serve/deployment_gate.hpp"
#include "serve/embedding_store.hpp"
#include "serve/lookup_service.hpp"
#include "serve/serve_stats.hpp"
