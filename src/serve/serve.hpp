// Umbrella header for the serving subsystem: versioned snapshot storage,
// batched thread-safe lookup, async request coalescing, instability-gated
// promotion, and runtime stats. See each header for the design rationale.
// (The TCP front-end lives in net/ — include net/server.hpp or
// net/client.hpp for the out-of-process surface.)
#pragma once

#include "serve/batcher.hpp"
#include "serve/canary.hpp"
#include "serve/deployment_gate.hpp"
#include "serve/embedding_store.hpp"
#include "serve/lookup_service.hpp"
#include "serve/serve_stats.hpp"
