// Thread-safe batched embedding lookup over an EmbeddingStore.
//
// The hot path — resolve the live snapshot, gather rows into the caller's
// output buffer — takes no global lock: the snapshot is an immutable
// shared_ptr and the only synchronization is a fixed pool of 16 cache
// shards, each a mutex-guarded LRU keyed by (snapshot epoch, row) — rows
// spread over the pool by key, independently of the snapshot's own storage
// sharding. Batches take each shard mutex at most twice per request batch
// (one probe pass, one insert pass) and dequantize all misses in a single
// block between them. The cache holds *dequantized* vectors, so
// for quantized snapshots a popular row pays the unpack cost once per swap
// instead of once per request (the same motivation as util/cache's
// compute-once-serve-many artifact discipline, applied at row granularity).
// Cache entries are keyed by (snapshot epoch, row), so a hot swap can never
// serve a stale generation — old entries age out through normal LRU
// eviction.
//
// Requests may also carry word *strings*; ids outside the live vocabulary
// fall back to subword synthesis (embed/subword hashed n-grams) when the
// snapshot carries an OOV table.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/embedding_store.hpp"
#include "serve/serve_stats.hpp"

namespace anchor::obs {
struct KeyLoadRecorder;
}  // namespace anchor::obs

namespace anchor::serve {

struct LookupConfig {
  /// Hot rows cached per *cache* shard (a fixed pool of 16, so total
  /// capacity is 16× this, shared across live epochs). 0 disables caching.
  /// Only quantized snapshots use the cache (it skips their repeated
  /// unpacks); fp32 rows are a bare memcpy and always bypass it.
  std::size_t cache_rows_per_shard = 256;
  /// When set, every lookup resolves this exact snapshot instead of the
  /// store's live one. Identity, not name: the canary router pins the
  /// candidate snapshot it evaluated, so a concurrent re-register under
  /// the same version id can never ride into a running canary.
  SnapshotPtr pin_snapshot = nullptr;
  /// When set, every resolved (in-vocabulary) row is attributed to the
  /// heavy-hitter sketch and range heat map — one hook covers the direct,
  /// batched, and canary-shadow paths, which all funnel through
  /// lookup_batch_into. OOV requests resolve to no row and are skipped:
  /// they carry no id to attribute a range to. Not owned; must outlive
  /// the service.
  obs::KeyLoadRecorder* load = nullptr;
};

/// LookupResult::oov flag values. The serve layer itself only ever writes
/// 0 or kLookupFlagOov; the cluster router additionally flags rows it
/// could not serve because the owning shard was down with
/// kLookupFlagDegraded (zero vector, same consumer contract as OOV: "this
/// is not a real embedding"). Callers that only test `oov[i] != 0` treat
/// both identically, which is exactly the degraded-mode contract.
inline constexpr std::uint8_t kLookupFlagOov = 1;
inline constexpr std::uint8_t kLookupFlagDegraded = 2;

/// Parses a synthetic id "wNNNN" → row id; returns false for anything else
/// (real-word strings, malformed or overflowing tokens), which then takes
/// the OOV path. Shared with the cluster shard router, which resolves
/// word traffic to global rows with the same rule the backends use.
bool parse_synthetic_word_id(const std::string& word, std::size_t* id);

/// Result of a batched lookup: vectors are concatenated row-major in
/// request order (batch_size × dim). The struct is reusable: the *_into
/// entry points overwrite it in place, so a long-lived caller (the async
/// batcher, a connection handler) keeps one result per coalesced batch and
/// never reallocates in the steady state. It also doubles as the RPC
/// payload layout (net/wire serializes these fields verbatim).
struct LookupResult {
  std::size_t dim = 0;
  std::vector<float> vectors;
  /// Per-request flags: true when the word was out-of-vocabulary and the
  /// vector was synthesized (or zeroed) rather than looked up.
  std::vector<std::uint8_t> oov;
  std::string version;  // snapshot that answered

  std::size_t size() const { return oov.size(); }
  const float* row(std::size_t i) const { return vectors.data() + i * dim; }
};

class LookupService {
 public:
  /// The store must outlive the service. `stats` may be shared with other
  /// services; when null an internal ServeStats is used.
  explicit LookupService(const EmbeddingStore& store, LookupConfig config = {},
                         std::shared_ptr<ServeStats> stats = nullptr);

  /// Batched lookup by word id against the live snapshot. Ids ≥ vocab_size
  /// yield zero vectors flagged oov (no subword string to synthesize from).
  LookupResult lookup_ids(const std::vector<std::size_t>& ids) const;

  /// Batched lookup by word string. In-vocabulary synthetic ids ("w0042")
  /// resolve to their row; anything else takes the subword OOV fallback.
  LookupResult lookup_words(const std::vector<std::string>& words) const;

  /// In-place variants: overwrite `out`, reusing its buffers (`assign`
  /// keeps capacity), so a caller serving many batches pays no allocation
  /// after warm-up. The batcher and the RPC connection handlers use these.
  void lookup_ids_into(const std::vector<std::size_t>& ids,
                       LookupResult* out) const;
  void lookup_words_into(const std::vector<std::string>& words,
                         LookupResult* out) const;

  const ServeStats& stats() const { return *stats_; }
  ServeStats& stats() { return *stats_; }

 private:
  struct CacheShard {
    mutable std::mutex mu;
    // LRU: most-recent at front; map values point into the list.
    struct Entry {
      std::uint64_t key = 0;
      std::vector<float> vec;
    };
    std::list<Entry> lru;
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
  };

  /// Batched row gather through the shard cache: one probe pass taking each
  /// cache shard's mutex at most once (hits copied under that lock), one
  /// lock-free block dequantize of every miss straight into the result
  /// buffer, one insert pass (again one lock per shard, recycling evicted
  /// LRU nodes so the steady state allocates nothing). Entries of `rows`
  /// equal to the OOV sentinel are skipped.
  void fetch_rows(const EmbeddingSnapshot& snap,
                  const std::vector<std::size_t>& rows, float* out) const;

  /// Shared batch skeleton: resolve the live snapshot, map every request to
  /// a row id via `resolve(i, snap, &row)` (false = OOV), gather all rows
  /// in one fetch_rows pass, fill OOV slots via `oov_fill`, record stats.
  /// Writes into `*out` (reusing its buffers). Defined in the .cpp; the
  /// public entry points instantiate it there.
  template <typename Resolve, typename OovFill>
  void lookup_batch_into(std::size_t n, const Resolve& resolve,
                         const OovFill& oov_fill, LookupResult* out) const;

  const EmbeddingStore& store_;
  LookupConfig config_;
  std::shared_ptr<ServeStats> stats_;
  mutable std::vector<CacheShard> cache_shards_;
};

}  // namespace anchor::serve
