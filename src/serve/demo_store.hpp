// Synthetic store fixture shared by the serving daemon's --demo mode, the
// two-process RPC example, and the net/serve tests: three versions whose
// gate outcomes are known by construction, so an end-to-end demo can show
// both sides of the instability gate without shipping embedding files.
#pragma once

#include <cstdint>

#include "serve/embedding_store.hpp"

namespace anchor::serve {

struct DemoStoreConfig {
  std::size_t vocab = 1500;
  std::size_t dim = 48;
  /// Precision of the registered snapshots (32 = fp32, else bit-packed).
  int bits = 32;
  /// Product-quantization passthrough (SnapshotConfig::pq_m / pq_bits):
  /// pq_m > 0 stores all three versions as PQ codes (bits must stay 32).
  std::size_t pq_m = 0;
  int pq_bits = 8;
  /// Storage shards per snapshot (SnapshotConfig::num_shards).
  std::size_t num_shards = 8;
  std::uint64_t seed = 7;
  /// Per-entry noise of the routine refresh, relative to the unit-variance
  /// base entries. Small enough that the default GateConfig thresholds
  /// admit it (see demo_store_test coverage).
  double refresh_noise = 0.01;
  /// Build OOV tables so lookup_words can synthesize unseen words.
  bool build_oov_table = true;
  /// Procrustes-align v2-good and v3-bad to v1 at registration
  /// (SnapshotConfig::align_to_live), mirroring the daemon's
  /// --align-candidates flag.
  bool align_to_live = false;
};

/// Registers three versions in `store`:
///   "v1"      — the incumbent (becomes live when the store was empty),
///   "v2-good" — v1 plus `refresh_noise` jitter: a routine refresh the
///               default DeploymentGate thresholds admit,
///   "v3-bad"  — an independently seeded embedding (a botched refresh from
///               the wrong pipeline) the default thresholds reject on
///               k-NN disagreement.
void add_demo_versions(EmbeddingStore& store,
                       const DemoStoreConfig& config = {});

}  // namespace anchor::serve
