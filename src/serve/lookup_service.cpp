#include "serve/lookup_service.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstring>

#include "obs/heavy_hitters.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace anchor::serve {

namespace {

constexpr std::size_t kCacheShards = 16;
constexpr std::size_t kNotARow = static_cast<std::size_t>(-1);

// Cache key mixing the snapshot epoch and the row id. Epochs are small
// monotonically increasing integers, rows are bounded by vocab size, so
// (epoch << 40) | row is collision-free for any realistic store lifetime.
std::uint64_t cache_key(std::uint64_t epoch, std::size_t row) {
  return (epoch << 40) | static_cast<std::uint64_t>(row);
}

}  // namespace

// Documented in the header; lives outside the anonymous namespace so the
// cluster shard router resolves words with the identical rule.
bool parse_synthetic_word_id(const std::string& word, std::size_t* id) {
  // > 15 digits cannot be a real row id and would overflow the accumulator
  // into a wrong-but-valid id.
  if (word.size() < 2 || word.size() > 16 || word[0] != 'w') return false;
  std::size_t value = 0;
  for (std::size_t i = 1; i < word.size(); ++i) {
    const char c = word[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  *id = value;
  return true;
}

LookupService::LookupService(const EmbeddingStore& store, LookupConfig config,
                             std::shared_ptr<ServeStats> stats)
    : store_(store),
      config_(config),
      stats_(stats ? std::move(stats) : std::make_shared<ServeStats>()),
      cache_shards_(kCacheShards) {}

void LookupService::fetch_rows(const EmbeddingSnapshot& snap,
                               const std::vector<std::size_t>& rows,
                               float* out) const {
  const std::size_t dim = snap.dim();
  // fp32 rows are a bare memcpy — the cache's mutex + LRU bookkeeping can
  // only slow them down, so only encoded (uniform-quantized or PQ)
  // snapshots go through it; both pay a real decode on a miss.
  if (config_.cache_rows_per_shard == 0 ||
      (snap.bits() == 32 && !snap.is_pq())) {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (rows[i] != kNotARow) snap.copy_row(rows[i], out + i * dim);
    }
    return;
  }

  // Pass 1 — probe: requests are bucketed by cache shard so each shard's
  // mutex is taken once per batch (not once per row); hits are copied out
  // under that one lock, misses collected for the block-dequantize pass.
  struct Miss {
    std::uint32_t req = 0;    // request index (result slot)
    std::uint32_t shard = 0;  // cache shard the row hashes to
  };
  const std::uint64_t epoch = snap.epoch();
  // Reused scratch (like block/miss_rows below): the steady-state hot path
  // should not pay a heap allocation per batch.
  thread_local std::array<std::vector<std::uint32_t>, kCacheShards> by_shard;
  for (auto& bucket : by_shard) bucket.clear();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i] == kNotARow) continue;
    by_shard[cache_key(epoch, rows[i]) % kCacheShards].push_back(
        static_cast<std::uint32_t>(i));
  }
  std::vector<Miss> misses;
  // A row requested twice in one batch misses at most once: later
  // occurrences copy from the first one's result slot after the block
  // dequantize and count as hits — the same accounting the per-row path
  // gave them (they would have hit the entry the first occurrence
  // inserted).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> dups;  // (req, source)
  thread_local std::unordered_map<std::size_t, std::uint32_t> first_miss;
  std::uint64_t hits = 0;
  for (std::size_t s = 0; s < kCacheShards; ++s) {
    if (by_shard[s].empty()) continue;
    CacheShard& shard = cache_shards_[s];
    first_miss.clear();
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const std::uint32_t i : by_shard[s]) {
      const auto it = shard.index.find(cache_key(epoch, rows[i]));
      if (it != shard.index.end()) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        std::memcpy(out + i * dim, it->second->vec.data(),
                    dim * sizeof(float));
        ++hits;
        continue;
      }
      const auto [fit, fresh] = first_miss.try_emplace(rows[i], i);
      if (fresh) {
        misses.push_back({i, static_cast<std::uint32_t>(s)});
      } else {
        dups.emplace_back(i, fit->second);
        ++hits;
      }
    }
  }
  if (hits > 0) stats_->record_cache_hit(hits);
  if (misses.empty() && dups.empty()) return;
  if (!misses.empty()) stats_->record_cache_miss(misses.size());

  // Pass 2 — block dequantize outside any lock: one copy_rows call unpacks
  // every missed row straight into its result slot (a burst of misses after
  // a cold start or hot swap never serializes the unpack work).
  thread_local std::vector<std::size_t> miss_rows;
  miss_rows.clear();
  miss_rows.reserve(misses.size());
  for (const Miss& m : misses) miss_rows.push_back(rows[m.req]);
  thread_local std::vector<float> block;
  if (block.size() < misses.size() * dim) block.resize(misses.size() * dim);
  snap.copy_rows(miss_rows.data(), miss_rows.size(), block.data());
  for (std::size_t k = 0; k < misses.size(); ++k) {
    std::memcpy(out + misses[k].req * dim, block.data() + k * dim,
                dim * sizeof(float));
  }
  for (const auto& [req, source] : dups) {
    std::memcpy(out + req * dim, out + source * dim, dim * sizeof(float));
  }

  // Pass 3 — insert: misses are already grouped by shard (pass 1 emitted
  // them shard-by-shard), so again one lock per shard. try_emplace probes
  // and claims the slot in a single hash walk; at capacity the evicted LRU
  // node is recycled in place, so the steady state allocates nothing.
  std::size_t k = 0;
  while (k < misses.size()) {
    const std::uint32_t s = misses[k].shard;
    CacheShard& shard = cache_shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (; k < misses.size() && misses[k].shard == s; ++k) {
      const std::uint64_t key = cache_key(epoch, rows[misses[k].req]);
      const auto [it, inserted] = shard.index.try_emplace(key);
      if (!inserted) continue;  // another thread raced us in
      const float* vec = block.data() + k * dim;
      if (shard.lru.size() >= config_.cache_rows_per_shard) {
        const auto last = std::prev(shard.lru.end());
        shard.index.erase(last->key);
        shard.lru.splice(shard.lru.begin(), shard.lru, last);
        last->key = key;
        last->vec.assign(vec, vec + dim);
      } else {
        shard.lru.push_front({key, std::vector<float>(vec, vec + dim)});
      }
      it->second = shard.lru.begin();
    }
  }
}

template <typename Resolve, typename OovFill>
void LookupService::lookup_batch_into(std::size_t n, const Resolve& resolve,
                                      const OovFill& oov_fill,
                                      LookupResult* out) const {
  const auto start = std::chrono::steady_clock::now();
  const SnapshotPtr snap =
      config_.pin_snapshot ? config_.pin_snapshot : store_.live();
  ANCHOR_CHECK_MSG(snap != nullptr, "lookup against a store with no versions");

  out->dim = snap->dim();
  out->version = snap->version();
  out->vectors.assign(n * snap->dim(), 0.0f);
  out->oov.assign(n, 0);

  // Resolve every request to a row id (or the OOV sentinel) first, then
  // gather all in-vocabulary rows in one batched cache/dequantize pass.
  // The row scratch is thread_local for the same reason fetch_rows'
  // buffers are: a server thread answering batches forever should not pay
  // a heap allocation per batch.
  thread_local std::vector<std::size_t> rows;
  rows.assign(n, kNotARow);
  std::size_t oov_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!resolve(i, *snap, &rows[i])) {
      rows[i] = kNotARow;
      out->oov[i] = 1;
      ++oov_count;
    }
  }
  if (config_.load != nullptr) {
    // Key-load attribution happens at resolve time, before the gather, so
    // a cache hit and a dequantize miss weigh the same: the sketch and
    // heat map measure demand, not cost.
    for (std::size_t i = 0; i < n; ++i) {
      if (rows[i] != kNotARow) {
        config_.load->record(static_cast<std::uint64_t>(rows[i]));
      }
    }
  }
  {
    // The cache/dequantize gather is the batch's compute kernel; when a
    // traced batch is executing (Tracer::Scope installed by the batcher),
    // bracket it as the dequantize span.
    const obs::TraceContext& trace = obs::Tracer::current();
    const std::uint64_t t0 = trace.sampled() ? obs::Tracer::now_ns() : 0;
    fetch_rows(*snap, rows, out->vectors.data());
    if (trace.sampled()) {
      obs::Tracer::instance().record(trace, obs::TraceStage::kDequantize, t0,
                                     obs::Tracer::now_ns());
    }
  }
  if (oov_count > 0) {
    for (std::size_t i = 0; i < n; ++i) {
      if (out->oov[i]) {
        oov_fill(i, *snap, out->vectors.data() + i * snap->dim());
      }
    }
  }

  const double latency_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start)
          .count();
  stats_->record_batch(n, latency_us);
  if (oov_count > 0) stats_->record_oov(oov_count);
}

void LookupService::lookup_ids_into(const std::vector<std::size_t>& ids,
                                    LookupResult* out) const {
  lookup_batch_into(
      ids.size(),
      [&](std::size_t i, const EmbeddingSnapshot& snap, std::size_t* row) {
        if (ids[i] >= snap.vocab_size()) return false;
        *row = ids[i];
        return true;
      },
      // Ids outside the vocabulary have no subword string to synthesize
      // from; their slots stay zeroed.
      [](std::size_t, const EmbeddingSnapshot&, float*) {}, out);
}

void LookupService::lookup_words_into(const std::vector<std::string>& words,
                                      LookupResult* out) const {
  lookup_batch_into(
      words.size(),
      [&](std::size_t i, const EmbeddingSnapshot& snap, std::size_t* row) {
        std::size_t id = 0;
        if (!parse_synthetic_word_id(words[i], &id) || id >= snap.vocab_size()) {
          return false;
        }
        *row = id;
        return true;
      },
      [&](std::size_t i, const EmbeddingSnapshot& snap, float* out_row) {
        snap.synthesize_oov(words[i], out_row);  // zeroes on failure
      },
      out);
}

LookupResult LookupService::lookup_ids(
    const std::vector<std::size_t>& ids) const {
  LookupResult result;
  lookup_ids_into(ids, &result);
  return result;
}

LookupResult LookupService::lookup_words(
    const std::vector<std::string>& words) const {
  LookupResult result;
  lookup_words_into(words, &result);
  return result;
}

}  // namespace anchor::serve
