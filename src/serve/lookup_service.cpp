#include "serve/lookup_service.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "util/check.hpp"

namespace anchor::serve {

namespace {

constexpr std::size_t kCacheShards = 16;

// Cache key mixing the snapshot epoch and the row id. Epochs are small
// monotonically increasing integers, rows are bounded by vocab size, so
// (epoch << 40) | row is collision-free for any realistic store lifetime.
std::uint64_t cache_key(std::uint64_t epoch, std::size_t row) {
  return (epoch << 40) | static_cast<std::uint64_t>(row);
}

/// Parses a synthetic id "wNNNN" → row id; returns false for anything else
/// (real-word strings, malformed or overflowing tokens), which then takes
/// the OOV path.
bool parse_synthetic_id(const std::string& word, std::size_t* id) {
  // > 15 digits cannot be a real row id and would overflow the accumulator
  // into a wrong-but-valid id.
  if (word.size() < 2 || word.size() > 16 || word[0] != 'w') return false;
  std::size_t value = 0;
  for (std::size_t i = 1; i < word.size(); ++i) {
    const char c = word[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  *id = value;
  return true;
}

}  // namespace

LookupService::LookupService(const EmbeddingStore& store, LookupConfig config,
                             std::shared_ptr<ServeStats> stats)
    : store_(store),
      config_(config),
      stats_(stats ? std::move(stats) : std::make_shared<ServeStats>()),
      cache_shards_(kCacheShards) {}

void LookupService::fetch_row(const EmbeddingSnapshot& snap, std::size_t w,
                              float* out) const {
  // fp32 rows are a bare memcpy — the cache's mutex + LRU bookkeeping can
  // only slow them down, so only quantized snapshots go through it.
  if (config_.cache_rows_per_shard == 0 || snap.bits() == 32) {
    snap.copy_row(w, out);
    return;
  }
  const std::uint64_t key = cache_key(snap.epoch(), w);
  // Distribute over all cache shards by key (low bits are the row id), not
  // by the snapshot's shard — a snapshot with few shards would otherwise
  // collapse the cache's mutex concurrency to its own shard count.
  CacheShard& shard = cache_shards_[key % cache_shards_.size()];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      std::memcpy(out, it->second->vec.data(), snap.dim() * sizeof(float));
      stats_->record_cache_hit();
      return;
    }
  }
  // Dequantize outside the lock so a burst of misses (cold cache, post-swap
  // stale epoch) doesn't serialize the unpack work across threads.
  stats_->record_cache_miss();
  snap.copy_row(w, out);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.index.count(key) > 0) return;  // another thread raced us in
  shard.lru.push_front({key, std::vector<float>(out, out + snap.dim())});
  shard.index[key] = shard.lru.begin();
  if (shard.lru.size() > config_.cache_rows_per_shard) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
  }
}

template <typename Resolve>
LookupResult LookupService::lookup_batch(std::size_t n,
                                         const Resolve& resolve) const {
  const auto start = std::chrono::steady_clock::now();
  const SnapshotPtr snap = store_.live();
  ANCHOR_CHECK_MSG(snap != nullptr, "lookup against a store with no versions");

  LookupResult result;
  result.dim = snap->dim();
  result.version = snap->version();
  result.vectors.resize(n * snap->dim());
  result.oov.assign(n, 0);

  std::size_t oov_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    float* out = result.vectors.data() + i * snap->dim();
    if (resolve(i, *snap, out)) {
      result.oov[i] = 1;
      ++oov_count;
    }
  }

  const double latency_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start)
          .count();
  stats_->record_batch(n, latency_us);
  if (oov_count > 0) stats_->record_oov(oov_count);
  return result;
}

LookupResult LookupService::lookup_ids(
    const std::vector<std::size_t>& ids) const {
  return lookup_batch(
      ids.size(),
      [&](std::size_t i, const EmbeddingSnapshot& snap, float* out) {
        if (ids[i] < snap.vocab_size()) {
          fetch_row(snap, ids[i], out);
          return false;
        }
        std::fill(out, out + snap.dim(), 0.0f);
        return true;
      });
}

LookupResult LookupService::lookup_words(
    const std::vector<std::string>& words) const {
  return lookup_batch(
      words.size(),
      [&](std::size_t i, const EmbeddingSnapshot& snap, float* out) {
        std::size_t id = 0;
        if (parse_synthetic_id(words[i], &id) && id < snap.vocab_size()) {
          fetch_row(snap, id, out);
          return false;
        }
        snap.synthesize_oov(words[i], out);  // zeroes `out` on failure
        return true;
      });
}

}  // namespace anchor::serve
