// Experiment orchestration: the end-to-end reproduction pipeline.
//
// Mirrors the paper's artifact workflow (Appendix A):
//   (1) generate Wiki'17/Wiki'18-analog corpora and train embeddings of
//       every (algorithm, dimension, seed);
//   (2) align each Wiki'18 embedding to its Wiki'17 partner with orthogonal
//       Procrustes, compress both with uniform quantization (shared clip
//       threshold), train downstream models on top, and record predictions;
//   (3) compute downstream instability and the five embedding distance
//       measures between every pair.
// Every expensive artifact is memoized in an on-disk ArtifactCache keyed by
// the full configuration, so the bench binaries can run in any order and
// re-runs are cheap.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/measures.hpp"
#include "core/selection.hpp"
#include "embed/trainer.hpp"
#include "tasks/ner.hpp"
#include "tasks/sentiment.hpp"
#include "text/corpus.hpp"
#include "util/cache.hpp"

namespace anchor::pipeline {

/// Corpus "year" of an embedding (the paper's Wiki'17 vs Wiki'18).
enum class Year { k17, k18 };

/// Scale knobs for the whole study. Defaults are the bench-scale setting
/// (minutes on a laptop core); tests shrink them further.
struct PipelineConfig {
  // Corpus / latent space. The latent rank (12) sits at the low end of the
  // dimension grid so every dimension ≥ the smallest can represent the core
  // structure — the regime the paper's 25–800 grid lives in.
  std::size_t vocab = 800;
  std::size_t latent_dim = 12;
  std::size_t num_topics = 10;
  std::size_t num_documents = 1000;
  double drift = 0.08;          // Wiki'17 → Wiki'18 latent drift
  double extra_docs = 0.01;     // the paper's "just 1% more data"
  std::uint64_t space_seed = 17;

  // Embedding grid (paper: dims {25..800} ↦ scaled; precisions unchanged).
  std::vector<std::size_t> dims = {8, 16, 32, 64, 128};
  std::vector<int> precisions = {1, 2, 4, 8, 16, 32};
  std::vector<std::uint64_t> seeds = {1, 2, 3};
  double epoch_scale = 1.0;

  // Measures.
  std::size_t reference_dim = 128;  // E, Ẽ for the EIS Σ (largest dim)
  double eis_alpha = 3.0;           // Table 8a winner
  std::size_t knn_k = 5;            // Table 8b winner
  std::size_t knn_queries = 200;    // paper uses 1000 of 400k words

  // Downstream task scale.
  std::size_t sentiment_scale_train = 1200;  // scales the profile sizes
  std::size_t ner_train = 500;
  std::size_t ner_test = 300;
  std::size_t ner_hidden = 16;
  std::size_t ner_epochs = 5;
  // Dropout is seed-deterministic but still noise at miniature scale; the
  // defaults turn it off so embedding-induced churn dominates (the paper's
  // word/locked dropout values target a 256-hidden BiLSTM on full CoNLL).
  float ner_word_dropout = 0.0f;
  float ner_locked_dropout = 0.0f;

  /// Corpus/embedding-grid signature: folded into embedding and measure
  /// cache keys. Deliberately excludes downstream-task scale, so re-tuning a
  /// task never invalidates trained embeddings.
  std::string corpus_signature() const;
  /// Full signature (corpus + downstream scale), kept for completeness.
  std::string signature() const;
};

/// Per-run overrides for the robustness studies (Appendix E): alternative
/// downstream models, decoupled downstream seeds, fine-tuning, learning-rate
/// sweeps. Defaults reproduce the paper's main protocol.
struct DownstreamOptions {
  enum class ModelKind { kDefault, kCnn, kBiLstmCrf };
  ModelKind model = ModelKind::kDefault;
  /// By default the downstream init/sampling seeds equal the embedding seed
  /// (the paper's main protocol); overrides decouple them (Appendix E.3).
  std::optional<std::uint64_t> init_seed;
  std::optional<std::uint64_t> sampling_seed;
  bool fine_tune = false;                 // Appendix E.4
  std::optional<float> learning_rate;     // Appendix E.5

  std::string signature() const;
};

/// One (dim, precision) cell's instability averaged over seeds, with the
/// per-seed values retained (for the error bars the paper plots).
struct CellResult {
  std::size_t dim = 0;
  int bits = 32;
  double mean_pct = 0.0;
  std::vector<double> per_seed_pct;
};

class Pipeline {
 public:
  explicit Pipeline(PipelineConfig config = {},
                    std::string cache_dir = "anchor-cache");

  const PipelineConfig& config() const { return config_; }

  /// Task names: the four sentiment tasks plus "conll2003".
  static const std::vector<std::string>& all_tasks();
  static bool is_ner_task(const std::string& task);

  // --- Embeddings ---
  /// Trained raw embedding (cached).
  embed::Embedding raw_embedding(Year year, embed::Algo algo, std::size_t dim,
                                 std::uint64_t seed);
  /// (X17, X18-aligned-to-X17) pair at full precision (cached).
  std::pair<embed::Embedding, embed::Embedding> aligned_pair(
      embed::Algo algo, std::size_t dim, std::uint64_t seed);
  /// Aligned pair quantized to `bits`, X18 reusing X17's clip threshold.
  std::pair<embed::Embedding, embed::Embedding> quantized_pair(
      embed::Algo algo, std::size_t dim, std::uint64_t seed, int bits);

  // --- Downstream ---
  /// Test-set predictions of the downstream model for `task` trained on the
  /// given embedding configuration (cached).
  std::vector<std::int32_t> predictions(const std::string& task, Year year,
                                        embed::Algo algo, std::size_t dim,
                                        int bits, std::uint64_t seed,
                                        const DownstreamOptions& opts = {});
  /// Definition-1 instability between the Wiki'17- and Wiki'18-trained
  /// models (entity-token-masked for NER).
  double downstream_instability(const std::string& task, embed::Algo algo,
                                std::size_t dim, int bits, std::uint64_t seed,
                                const DownstreamOptions& opts = {});
  /// Quality: accuracy (sentiment) or entity micro-F1 (NER), in percent.
  double quality(const std::string& task, Year year, embed::Algo algo,
                 std::size_t dim, int bits, std::uint64_t seed,
                 const DownstreamOptions& opts = {});

  // --- Measures ---
  /// The five embedding distance measures for a configuration, oriented
  /// larger-is-more-unstable, in core::kAllMeasures order (cached).
  std::array<double, 5> measures(embed::Algo algo, std::size_t dim, int bits,
                                 std::uint64_t seed);
  /// Same but with a non-default EIS α (Table 8a) — k-NN entry reused.
  double eis_with_alpha(embed::Algo algo, std::size_t dim, int bits,
                        std::uint64_t seed, double alpha);
  double knn_with_k(embed::Algo algo, std::size_t dim, int bits,
                    std::uint64_t seed, std::size_t k);

  // --- Grids for the analysis benches ---
  /// All (dim, precision) cells for one seed, with measures + DI attached.
  std::vector<core::ConfigPoint> config_grid(const std::string& task,
                                             embed::Algo algo,
                                             std::uint64_t seed);
  /// Seed-averaged instability per cell (Figures 1, 2, 4–6).
  std::vector<CellResult> instability_grid(const std::string& task,
                                           embed::Algo algo,
                                           const DownstreamOptions& opts = {});

  // --- Task data access ---
  const tasks::TextClassificationDataset& sentiment_dataset(
      const std::string& name);
  const tasks::SequenceTaggingDataset& ner_dataset();
  const text::LatentSpace& base_space();

 private:
  const text::Corpus& corpus(Year year);
  std::string emb_key(Year year, embed::Algo algo, std::size_t dim,
                      std::uint64_t seed, const char* stage) const;
  const core::EisContext& eis_context(embed::Algo algo, std::uint64_t seed);

  PipelineConfig config_;
  ArtifactCache cache_;
  std::unique_ptr<text::LatentSpace> space17_;
  std::unique_ptr<text::LatentSpace> space18_;
  std::optional<text::Corpus> corpus17_;
  std::optional<text::Corpus> corpus18_;
  std::map<std::string, tasks::TextClassificationDataset> sentiment_;
  std::optional<tasks::SequenceTaggingDataset> ner_;
  std::map<std::string, core::EisContext> eis_contexts_;
};

std::string year_name(Year year);

}  // namespace anchor::pipeline
