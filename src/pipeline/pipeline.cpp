#include "pipeline/pipeline.hpp"

#include <sstream>

#include "compress/quantize.hpp"
#include "core/instability.hpp"
#include "la/procrustes.hpp"
#include "model/bilstm.hpp"
#include "model/linear_bow.hpp"
#include "model/text_cnn.hpp"

namespace anchor::pipeline {

namespace {

std::string algo_tag(embed::Algo algo) { return embed::algo_name(algo); }

}  // namespace

std::string year_name(Year year) { return year == Year::k17 ? "17" : "18"; }

std::string PipelineConfig::corpus_signature() const {
  std::ostringstream os;
  os << "v" << vocab << "_D" << latent_dim << "_K" << num_topics << "_nd"
     << num_documents << "_dr" << drift << "_ed" << extra_docs << "_es"
     << epoch_scale << "_ss" << space_seed;
  return os.str();
}

std::string PipelineConfig::signature() const {
  std::ostringstream os;
  os << corpus_signature() << "_st" << sentiment_scale_train << "_nt"
     << ner_train << "." << ner_test << "." << ner_hidden << "." << ner_epochs
     << "." << ner_word_dropout << "." << ner_locked_dropout;
  return os.str();
}

std::string DownstreamOptions::signature() const {
  std::ostringstream os;
  switch (model) {
    case ModelKind::kDefault: os << "m0"; break;
    case ModelKind::kCnn: os << "mCNN"; break;
    case ModelKind::kBiLstmCrf: os << "mCRF"; break;
  }
  if (init_seed) os << "_is" << *init_seed;
  if (sampling_seed) os << "_ss" << *sampling_seed;
  if (fine_tune) os << "_ft";
  if (learning_rate) os << "_lr" << *learning_rate;
  return os.str();
}

Pipeline::Pipeline(PipelineConfig config, std::string cache_dir)
    : config_(std::move(config)),
      cache_(ArtifactCache::from_env(cache_dir)) {
  text::LatentSpaceConfig sc;
  sc.vocab_size = config_.vocab;
  sc.latent_dim = config_.latent_dim;
  sc.num_topics = config_.num_topics;
  sc.seed = config_.space_seed;
  space17_ = std::make_unique<text::LatentSpace>(sc);
  space18_ = std::make_unique<text::LatentSpace>(space17_->drifted(
      config_.drift, config_.space_seed + 1, config_.extra_docs));
}

const std::vector<std::string>& Pipeline::all_tasks() {
  static const std::vector<std::string> tasks = {"sst2", "mr", "subj", "mpqa",
                                                 "conll2003"};
  return tasks;
}

bool Pipeline::is_ner_task(const std::string& task) {
  return task == "conll2003";
}

const text::LatentSpace& Pipeline::base_space() { return *space17_; }

const text::Corpus& Pipeline::corpus(Year year) {
  auto& slot = (year == Year::k17) ? corpus17_ : corpus18_;
  if (!slot) {
    text::CorpusConfig cc;
    cc.num_documents = config_.num_documents;
    cc.seed = 1;  // same document stream both years (temporal-delta model)
    slot = text::generate_corpus(year == Year::k17 ? *space17_ : *space18_,
                                 cc);
  }
  return *slot;
}

std::string Pipeline::emb_key(Year year, embed::Algo algo, std::size_t dim,
                              std::uint64_t seed, const char* stage) const {
  std::ostringstream os;
  os << stage << "|" << config_.corpus_signature() << "|y" << year_name(year)
     << "|" << algo_tag(algo) << "|d" << dim << "|s" << seed;
  return os.str();
}

embed::Embedding Pipeline::raw_embedding(Year year, embed::Algo algo,
                                         std::size_t dim,
                                         std::uint64_t seed) {
  const std::string key = emb_key(year, algo, dim, seed, "emb");
  const std::vector<float> data =
      cache_.get_or_compute<float>(key, [&]() {
        embed::TrainOptions opts;
        opts.dim = dim;
        opts.seed = seed;
        opts.epoch_scale = config_.epoch_scale;
        return embed::train_embedding(corpus(year), algo, opts).data;
      });
  embed::Embedding e;
  e.vocab_size = config_.vocab;
  e.dim = dim;
  e.data = data;
  ANCHOR_CHECK_EQ(e.data.size(), e.vocab_size * e.dim);
  return e;
}

std::pair<embed::Embedding, embed::Embedding> Pipeline::aligned_pair(
    embed::Algo algo, std::size_t dim, std::uint64_t seed) {
  embed::Embedding x17 = raw_embedding(Year::k17, algo, dim, seed);
  const std::string key = emb_key(Year::k18, algo, dim, seed, "aligned");
  const std::vector<float> aligned18 =
      cache_.get_or_compute<float>(key, [&]() {
        const embed::Embedding x18 =
            raw_embedding(Year::k18, algo, dim, seed);
        // Procrustes-align X18 onto X17 before compression (§C.2).
        const la::Matrix rotated =
            la::procrustes_align(x17.to_matrix(), x18.to_matrix());
        return embed::Embedding::from_matrix(rotated).data;
      });
  embed::Embedding x18;
  x18.vocab_size = config_.vocab;
  x18.dim = dim;
  x18.data = aligned18;
  return {std::move(x17), std::move(x18)};
}

std::pair<embed::Embedding, embed::Embedding> Pipeline::quantized_pair(
    embed::Algo algo, std::size_t dim, std::uint64_t seed, int bits) {
  auto [x17, x18] = aligned_pair(algo, dim, seed);
  if (bits == 32) return {std::move(x17), std::move(x18)};
  compress::QuantizeConfig qc;
  qc.bits = bits;
  compress::QuantizeResult q17 = compress::uniform_quantize(x17, qc);
  // X18 reuses X17's clip threshold (§C.2).
  qc.clip_override = q17.clip;
  compress::QuantizeResult q18 = compress::uniform_quantize(x18, qc);
  return {std::move(q17.embedding), std::move(q18.embedding)};
}

const tasks::TextClassificationDataset& Pipeline::sentiment_dataset(
    const std::string& name) {
  auto it = sentiment_.find(name);
  if (it == sentiment_.end()) {
    tasks::SentimentTaskConfig tc = tasks::sentiment_profile(name);
    // Scale the profile sizes to the pipeline's budget, preserving ratios.
    const double scale = static_cast<double>(config_.sentiment_scale_train) /
                         3000.0;
    tc.train_size = static_cast<std::size_t>(tc.train_size * scale);
    tc.val_size = static_cast<std::size_t>(tc.val_size * scale);
    tc.test_size = static_cast<std::size_t>(tc.test_size * scale);
    it = sentiment_
             .emplace(name, tasks::make_sentiment_task(*space17_, tc))
             .first;
  }
  return it->second;
}

const tasks::SequenceTaggingDataset& Pipeline::ner_dataset() {
  if (!ner_) {
    tasks::NerTaskConfig nc;
    nc.train_size = config_.ner_train;
    nc.test_size = config_.ner_test;
    ner_ = tasks::make_ner_task(*space17_, nc);
  }
  return *ner_;
}

std::vector<std::int32_t> Pipeline::predictions(
    const std::string& task, Year year, embed::Algo algo, std::size_t dim,
    int bits, std::uint64_t seed, const DownstreamOptions& opts) {
  // Keys include only the scale knobs the task actually depends on, so
  // re-tuning NER never invalidates sentiment predictions and vice versa.
  std::ostringstream os;
  os << "pred|" << config_.corpus_signature();
  if (is_ner_task(task)) {
    os << "_nt" << config_.ner_train << "." << config_.ner_test << "."
       << config_.ner_hidden << "." << config_.ner_epochs << "."
       << config_.ner_word_dropout << "." << config_.ner_locked_dropout;
  } else {
    os << "_st" << config_.sentiment_scale_train;
  }
  os << "|" << task << "|y" << year_name(year) << "|" << algo_tag(algo)
     << "|d" << dim << "|b" << bits << "|s" << seed << "|"
     << opts.signature();
  const std::string key = os.str();

  return cache_.get_or_compute<std::int32_t>(key, [&]() {
    auto [x17, x18] = quantized_pair(algo, dim, seed, bits);
    const embed::Embedding& x = (year == Year::k17) ? x17 : x18;
    const std::uint64_t init_seed = opts.init_seed.value_or(seed);
    const std::uint64_t sampling_seed = opts.sampling_seed.value_or(seed);

    if (is_ner_task(task)) {
      const tasks::SequenceTaggingDataset& ds = ner_dataset();
      model::BiLstmConfig mc;
      mc.num_tags = ds.num_tags;
      mc.hidden = config_.ner_hidden;
      mc.epochs = config_.ner_epochs;
      mc.word_dropout = config_.ner_word_dropout;
      mc.locked_dropout = config_.ner_locked_dropout;
      mc.use_crf = (opts.model == DownstreamOptions::ModelKind::kBiLstmCrf);
      mc.init_seed = init_seed;
      mc.sampling_seed = sampling_seed;
      if (opts.learning_rate) mc.learning_rate = *opts.learning_rate;
      const model::BiLstmTagger tagger(x, ds.train_sentences, ds.train_tags,
                                       mc);
      return tagger.predict_flat(ds.test_sentences);
    }

    const tasks::TextClassificationDataset& ds = sentiment_dataset(task);
    if (opts.model == DownstreamOptions::ModelKind::kCnn) {
      model::TextCnnConfig mc;
      mc.num_classes = ds.num_classes;
      mc.init_seed = init_seed;
      mc.sampling_seed = sampling_seed;
      if (opts.learning_rate) mc.learning_rate = *opts.learning_rate;
      const model::TextCnn cnn(x, ds.train_sentences, ds.train_labels, mc);
      return cnn.predict_all(ds.test_sentences);
    }
    model::LinearBowConfig mc;
    mc.num_classes = ds.num_classes;
    mc.init_seed = init_seed;
    mc.sampling_seed = sampling_seed;
    mc.fine_tune_embeddings = opts.fine_tune;
    if (opts.learning_rate) mc.learning_rate = *opts.learning_rate;
    const model::LinearBowClassifier clf(x, ds.train_sentences,
                                         ds.train_labels, mc);
    return clf.predict_all(ds.test_sentences);
  });
}

double Pipeline::downstream_instability(const std::string& task,
                                        embed::Algo algo, std::size_t dim,
                                        int bits, std::uint64_t seed,
                                        const DownstreamOptions& opts) {
  const std::vector<std::int32_t> p17 =
      predictions(task, Year::k17, algo, dim, bits, seed, opts);
  const std::vector<std::int32_t> p18 =
      predictions(task, Year::k18, algo, dim, bits, seed, opts);
  if (is_ner_task(task)) {
    return core::masked_disagreement_pct(p17, p18,
                                         ner_dataset().flat_test_entity_mask());
  }
  return core::prediction_disagreement_pct(p17, p18);
}

double Pipeline::quality(const std::string& task, Year year, embed::Algo algo,
                         std::size_t dim, int bits, std::uint64_t seed,
                         const DownstreamOptions& opts) {
  const std::vector<std::int32_t> pred =
      predictions(task, year, algo, dim, bits, seed, opts);
  if (is_ner_task(task)) {
    return core::micro_f1_pct(pred, ner_dataset().flat_test_gold(),
                              tasks::kTagO);
  }
  return core::accuracy_pct(pred, sentiment_dataset(task).test_labels);
}

const core::EisContext& Pipeline::eis_context(embed::Algo algo,
                                              std::uint64_t seed) {
  std::ostringstream os;
  os << algo_tag(algo) << "|s" << seed;
  const std::string key = os.str();
  auto it = eis_contexts_.find(key);
  if (it == eis_contexts_.end()) {
    // E, Ẽ are the highest-dimensional full-precision pair (§5 setup).
    auto [e17, e18] = aligned_pair(algo, config_.reference_dim, seed);
    it = eis_contexts_
             .emplace(key, core::EisContext::build(e17.to_matrix(),
                                                   e18.to_matrix(),
                                                   config_.eis_alpha))
             .first;
  }
  return it->second;
}

std::array<double, 5> Pipeline::measures(embed::Algo algo, std::size_t dim,
                                         int bits, std::uint64_t seed) {
  std::ostringstream os;
  os << "meas|" << config_.corpus_signature() << "|" << algo_tag(algo) << "|d" << dim
     << "|b" << bits << "|s" << seed << "|a" << config_.eis_alpha << "_k"
     << config_.knn_k << "_q" << config_.knn_queries << "_rd"
     << config_.reference_dim;
  const std::vector<double> values =
      cache_.get_or_compute<double>(os.str(), [&]() {
        auto [x17, x18] = quantized_pair(algo, dim, seed, bits);
        const la::Matrix a = x17.to_matrix();
        const la::Matrix b = x18.to_matrix();
        std::vector<double> v(5);
        v[0] = core::eigenspace_instability_of(a, b, eis_context(algo, seed));
        v[1] = 1.0 - core::knn_measure(a, b, config_.knn_k,
                                       config_.knn_queries, 42 + seed);
        v[2] = core::semantic_displacement(a, b);
        v[3] = core::pip_loss(a, b);
        v[4] = 1.0 - core::eigenspace_overlap(a, b);
        return v;
      });
  std::array<double, 5> out{};
  std::copy(values.begin(), values.end(), out.begin());
  return out;
}

double Pipeline::eis_with_alpha(embed::Algo algo, std::size_t dim, int bits,
                                std::uint64_t seed, double alpha) {
  std::ostringstream os;
  os << "eisA|" << config_.corpus_signature() << "|" << algo_tag(algo) << "|d" << dim
     << "|b" << bits << "|s" << seed << "|a" << alpha << "_rd"
     << config_.reference_dim;
  const std::vector<double> v =
      cache_.get_or_compute<double>(os.str(), [&]() {
        auto [x17, x18] = quantized_pair(algo, dim, seed, bits);
        auto [e17, e18] = aligned_pair(algo, config_.reference_dim, seed);
        const core::EisContext ctx = core::EisContext::build(
            e17.to_matrix(), e18.to_matrix(), alpha);
        return std::vector<double>{core::eigenspace_instability_of(
            x17.to_matrix(), x18.to_matrix(), ctx)};
      });
  return v[0];
}

double Pipeline::knn_with_k(embed::Algo algo, std::size_t dim, int bits,
                            std::uint64_t seed, std::size_t k) {
  std::ostringstream os;
  os << "knnK|" << config_.corpus_signature() << "|" << algo_tag(algo) << "|d" << dim
     << "|b" << bits << "|s" << seed << "|k" << k << "_q"
     << config_.knn_queries;
  const std::vector<double> v =
      cache_.get_or_compute<double>(os.str(), [&]() {
        auto [x17, x18] = quantized_pair(algo, dim, seed, bits);
        return std::vector<double>{
            1.0 - core::knn_measure(x17.to_matrix(), x18.to_matrix(), k,
                                    config_.knn_queries, 42 + seed)};
      });
  return v[0];
}

std::vector<core::ConfigPoint> Pipeline::config_grid(const std::string& task,
                                                     embed::Algo algo,
                                                     std::uint64_t seed) {
  std::vector<core::ConfigPoint> grid;
  for (const std::size_t dim : config_.dims) {
    for (const int bits : config_.precisions) {
      core::ConfigPoint p;
      p.dim = dim;
      p.bits = bits;
      p.downstream_instability_pct =
          downstream_instability(task, algo, dim, bits, seed);
      const std::array<double, 5> m = measures(algo, dim, bits, seed);
      for (std::size_t i = 0; i < 5; ++i) {
        p.measures[core::kAllMeasures[i]] = m[i];
      }
      grid.push_back(std::move(p));
    }
  }
  return grid;
}

std::vector<CellResult> Pipeline::instability_grid(
    const std::string& task, embed::Algo algo, const DownstreamOptions& opts) {
  std::vector<CellResult> out;
  for (const std::size_t dim : config_.dims) {
    for (const int bits : config_.precisions) {
      CellResult cell;
      cell.dim = dim;
      cell.bits = bits;
      for (const std::uint64_t seed : config_.seeds) {
        cell.per_seed_pct.push_back(
            downstream_instability(task, algo, dim, bits, seed, opts));
      }
      double sum = 0.0;
      for (const double v : cell.per_seed_pct) sum += v;
      cell.mean_pct = sum / static_cast<double>(cell.per_seed_pct.size());
      out.push_back(std::move(cell));
    }
  }
  return out;
}

}  // namespace anchor::pipeline
