// Text CNN sentence classifier (Kim, 2014), used by the paper's complex-
// downstream-model robustness study (Appendix E.2, Figure 13a).
//
// Architecture: one convolutional layer with kernel widths {3,4,5}, ReLU,
// max-over-time pooling, dropout, linear softmax classifier. Gradients are
// derived by hand and validated against finite differences in the tests.
#pragma once

#include <cstdint>
#include <vector>

#include "embed/embedding.hpp"

namespace anchor::model {

struct TextCnnConfig {
  std::size_t num_classes = 2;
  std::vector<std::size_t> kernel_widths = {3, 4, 5};
  std::size_t channels = 8;     // output channels per kernel width
  float dropout = 0.5f;
  float learning_rate = 1e-3f;
  std::size_t epochs = 20;
  std::size_t batch_size = 32;
  std::uint64_t init_seed = 1;
  std::uint64_t sampling_seed = 1;
};

class TextCnn {
 public:
  TextCnn(const embed::Embedding& embedding,
          const std::vector<std::vector<std::int32_t>>& sentences,
          const std::vector<std::int32_t>& labels, const TextCnnConfig& config);

  std::int32_t predict(const std::vector<std::int32_t>& sentence) const;
  std::vector<std::int32_t> predict_all(
      const std::vector<std::vector<std::int32_t>>& sentences) const;

 private:
  struct Forward;  // per-example activations for backprop

  std::size_t feature_size() const {
    return config_.kernel_widths.size() * config_.channels;
  }
  /// Parameter layout offsets (filters per width, then classifier).
  std::size_t filter_offset(std::size_t width_idx) const;
  std::size_t filter_bias_offset(std::size_t width_idx) const;
  std::size_t classifier_offset() const;

  Forward forward(const std::vector<std::int32_t>& sentence,
                  const std::vector<float>* dropout_mask) const;

  embed::Embedding embedding_;  // copied: the model owns what it predicts with
  TextCnnConfig config_;
  std::vector<float> params_;
};

}  // namespace anchor::model
