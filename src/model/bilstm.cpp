#include "model/bilstm.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "model/optimizer.hpp"
#include "util/rng.hpp"

namespace anchor::model {

namespace {

float sigmoidf(float x) {
  if (x > 30.0f) return 1.0f;
  if (x < -30.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}

float log_sum_exp(const std::vector<float>& v) {
  const float mx = *std::max_element(v.begin(), v.end());
  float acc = 0.0f;
  for (const float x : v) acc += std::exp(x - mx);
  return mx + std::log(acc);
}

}  // namespace

/// Cached activations of one LSTM direction over a sentence.
struct BiLstmTagger::DirectionCache {
  // Each entry is length-H (gates, cell, hidden) per timestep, in the
  // direction's own time order (the backward direction stores reversed t).
  std::vector<std::vector<float>> i, f, g, o, c, tanh_c, h;
  std::vector<std::vector<float>> x;  // inputs after word dropout
};

std::size_t BiLstmTagger::dir_params() const {
  const std::size_t h = config_.hidden;
  return 4 * h * embedding_.dim + 4 * h * h + 4 * h;
}

std::size_t BiLstmTagger::out_offset() const { return 2 * dir_params(); }

std::size_t BiLstmTagger::crf_offset() const {
  return out_offset() + config_.num_tags * 2 * config_.hidden +
         config_.num_tags;
}

namespace {

/// Runs one LSTM direction. `params` points at [W|U|b] for the direction.
/// Inputs are provided in the direction's time order.
void run_direction(const float* params, std::size_t d, std::size_t h,
                   const std::vector<std::vector<float>>& inputs,
                   BiLstmTagger::DirectionCache& cache) {
  const float* w = params;
  const float* u = params + 4 * h * d;
  const float* b = params + 4 * h * d + 4 * h * h;
  const std::size_t t_count = inputs.size();
  auto resize_all = [&](std::vector<std::vector<float>>& v) {
    v.assign(t_count, std::vector<float>(h, 0.0f));
  };
  resize_all(cache.i);
  resize_all(cache.f);
  resize_all(cache.g);
  resize_all(cache.o);
  resize_all(cache.c);
  resize_all(cache.tanh_c);
  resize_all(cache.h);
  cache.x = inputs;

  std::vector<float> pre(4 * h);
  for (std::size_t t = 0; t < t_count; ++t) {
    const std::vector<float>& xt = inputs[t];
    const std::vector<float>* hprev = (t > 0) ? &cache.h[t - 1] : nullptr;
    for (std::size_t r = 0; r < 4 * h; ++r) {
      float acc = b[r];
      const float* wrow = w + r * d;
      for (std::size_t j = 0; j < d; ++j) acc += wrow[j] * xt[j];
      if (hprev != nullptr) {
        const float* urow = u + r * h;
        for (std::size_t j = 0; j < h; ++j) acc += urow[j] * (*hprev)[j];
      }
      pre[r] = acc;
    }
    for (std::size_t j = 0; j < h; ++j) {
      const float ig = sigmoidf(pre[j]);
      const float fg = sigmoidf(pre[h + j]);
      const float gg = std::tanh(pre[2 * h + j]);
      const float og = sigmoidf(pre[3 * h + j]);
      const float cprev = (t > 0) ? cache.c[t - 1][j] : 0.0f;
      const float ct = fg * cprev + ig * gg;
      cache.i[t][j] = ig;
      cache.f[t][j] = fg;
      cache.g[t][j] = gg;
      cache.o[t][j] = og;
      cache.c[t][j] = ct;
      cache.tanh_c[t][j] = std::tanh(ct);
      cache.h[t][j] = og * cache.tanh_c[t][j];
    }
  }
}

/// BPTT through one direction. `dh_list` holds dL/dh_t in the direction's
/// time order; gradients are accumulated into `gparams` ([W|U|b] layout).
void backward_direction(const float* params, float* gparams, std::size_t d,
                        std::size_t h,
                        const BiLstmTagger::DirectionCache& cache,
                        const std::vector<std::vector<float>>& dh_list) {
  const float* u = params + 4 * h * d;
  float* gw = gparams;
  float* gu = gparams + 4 * h * d;
  float* gb = gparams + 4 * h * d + 4 * h * h;
  const std::size_t t_count = cache.h.size();

  std::vector<float> dh_carry(h, 0.0f), dc_next(h, 0.0f), dpre(4 * h);
  for (std::size_t tt = t_count; tt-- > 0;) {
    for (std::size_t j = 0; j < h; ++j) {
      const float dh = dh_list[tt][j] + dh_carry[j];
      const float o = cache.o[tt][j];
      const float tc = cache.tanh_c[tt][j];
      const float d_o = dh * tc;
      const float dc = dc_next[j] + dh * o * (1.0f - tc * tc);
      const float i = cache.i[tt][j];
      const float f = cache.f[tt][j];
      const float g = cache.g[tt][j];
      const float cprev = (tt > 0) ? cache.c[tt - 1][j] : 0.0f;
      const float di = dc * g;
      const float dg = dc * i;
      const float df = dc * cprev;
      dc_next[j] = dc * f;
      dpre[j] = di * i * (1.0f - i);
      dpre[h + j] = df * f * (1.0f - f);
      dpre[2 * h + j] = dg * (1.0f - g * g);
      dpre[3 * h + j] = d_o * o * (1.0f - o);
    }
    // Accumulate parameter gradients and propagate to h_{t-1}.
    const std::vector<float>& xt = cache.x[tt];
    const std::vector<float>* hprev = (tt > 0) ? &cache.h[tt - 1] : nullptr;
    std::fill(dh_carry.begin(), dh_carry.end(), 0.0f);
    for (std::size_t r = 0; r < 4 * h; ++r) {
      const float dp = dpre[r];
      if (dp == 0.0f) continue;
      float* gwrow = gw + r * d;
      for (std::size_t j = 0; j < d; ++j) gwrow[j] += dp * xt[j];
      if (hprev != nullptr) {
        float* gurow = gu + r * h;
        const float* urow = u + r * h;
        for (std::size_t j = 0; j < h; ++j) {
          gurow[j] += dp * (*hprev)[j];
          dh_carry[j] += dp * urow[j];
        }
      }
      gb[r] += dp;
    }
  }
}

}  // namespace

std::vector<std::vector<float>> BiLstmTagger::emissions(
    const std::vector<std::int32_t>& sentence) const {
  const std::size_t d = embedding_.dim;
  const std::size_t h = config_.hidden;
  const std::size_t c = config_.num_tags;
  const std::size_t t_count = sentence.size();

  std::vector<std::vector<float>> inputs(t_count, std::vector<float>(d));
  for (std::size_t t = 0; t < t_count; ++t) {
    const float* row = embedding_.row(static_cast<std::size_t>(sentence[t]));
    std::copy(row, row + d, inputs[t].begin());
  }
  DirectionCache fwd, bwd;
  run_direction(params_.data(), d, h, inputs, fwd);
  std::vector<std::vector<float>> rev(inputs.rbegin(), inputs.rend());
  run_direction(params_.data() + dir_params(), d, h, rev, bwd);

  const float* wout = params_.data() + out_offset();
  const float* bout = wout + c * 2 * h;
  std::vector<std::vector<float>> e(t_count, std::vector<float>(c, 0.0f));
  for (std::size_t t = 0; t < t_count; ++t) {
    const std::vector<float>& hf = fwd.h[t];
    const std::vector<float>& hb = bwd.h[t_count - 1 - t];
    for (std::size_t k = 0; k < c; ++k) {
      float acc = bout[k];
      const float* wrow = wout + k * 2 * h;
      for (std::size_t j = 0; j < h; ++j) {
        acc += wrow[j] * hf[j] + wrow[h + j] * hb[j];
      }
      e[t][k] = acc;
    }
  }
  return e;
}

double BiLstmTagger::loss(const std::vector<std::int32_t>& sentence,
                          const std::vector<std::int32_t>& tags) const {
  ANCHOR_CHECK_EQ(sentence.size(), tags.size());
  ANCHOR_CHECK(!sentence.empty());
  const std::vector<std::vector<float>> e = emissions(sentence);
  const std::size_t c = config_.num_tags;
  const std::size_t t_count = e.size();

  if (!config_.use_crf) {
    double total = 0.0;
    for (std::size_t t = 0; t < t_count; ++t) {
      const float lse = log_sum_exp(e[t]);
      total += lse - e[t][static_cast<std::size_t>(tags[t])];
    }
    return total;
  }

  const float* crf = params_.data() + crf_offset();
  const float* trans = crf;              // C×C
  const float* start = crf + c * c;      // C
  const float* end = crf + c * c + c;    // C

  // Forward algorithm in log space.
  std::vector<float> alpha(c), next(c), tmp(c);
  for (std::size_t k = 0; k < c; ++k) alpha[k] = start[k] + e[0][k];
  for (std::size_t t = 1; t < t_count; ++t) {
    for (std::size_t j = 0; j < c; ++j) {
      for (std::size_t i = 0; i < c; ++i) tmp[i] = alpha[i] + trans[i * c + j];
      next[j] = e[t][j] + log_sum_exp(tmp);
    }
    alpha = next;
  }
  for (std::size_t k = 0; k < c; ++k) tmp[k] = alpha[k] + end[k];
  const double log_z = log_sum_exp(tmp);

  double score = start[static_cast<std::size_t>(tags[0])] +
                 e[0][static_cast<std::size_t>(tags[0])];
  for (std::size_t t = 1; t < t_count; ++t) {
    score += trans[static_cast<std::size_t>(tags[t - 1]) * c +
                   static_cast<std::size_t>(tags[t])] +
             e[t][static_cast<std::size_t>(tags[t])];
  }
  score += end[static_cast<std::size_t>(tags[t_count - 1])];
  return log_z - score;
}

std::vector<float> BiLstmTagger::example_gradient(
    const std::vector<std::int32_t>& sentence,
    const std::vector<std::int32_t>& tags,
    const std::vector<float>* locked_mask,
    const std::vector<std::uint8_t>* word_drop) const {
  ANCHOR_CHECK_EQ(sentence.size(), tags.size());
  ANCHOR_CHECK(!sentence.empty());
  const std::size_t d = embedding_.dim;
  const std::size_t h = config_.hidden;
  const std::size_t c = config_.num_tags;
  const std::size_t t_count = sentence.size();

  // --- Forward with caches ---
  std::vector<std::vector<float>> inputs(t_count, std::vector<float>(d, 0.0f));
  for (std::size_t t = 0; t < t_count; ++t) {
    if (word_drop != nullptr && (*word_drop)[t]) continue;  // zeroed token
    const float* row = embedding_.row(static_cast<std::size_t>(sentence[t]));
    std::copy(row, row + d, inputs[t].begin());
  }
  DirectionCache fwd, bwd;
  run_direction(params_.data(), d, h, inputs, fwd);
  std::vector<std::vector<float>> rev(inputs.rbegin(), inputs.rend());
  run_direction(params_.data() + dir_params(), d, h, rev, bwd);

  // Concatenated (and optionally locked-dropout-masked) features.
  std::vector<std::vector<float>> feat(t_count, std::vector<float>(2 * h));
  for (std::size_t t = 0; t < t_count; ++t) {
    for (std::size_t j = 0; j < h; ++j) {
      feat[t][j] = fwd.h[t][j];
      feat[t][h + j] = bwd.h[t_count - 1 - t][j];
    }
    if (locked_mask != nullptr) {
      for (std::size_t j = 0; j < 2 * h; ++j) feat[t][j] *= (*locked_mask)[j];
    }
  }

  const float* wout = params_.data() + out_offset();
  const float* bout = wout + c * 2 * h;
  std::vector<std::vector<float>> e(t_count, std::vector<float>(c, 0.0f));
  for (std::size_t t = 0; t < t_count; ++t) {
    for (std::size_t k = 0; k < c; ++k) {
      float acc = bout[k];
      const float* wrow = wout + k * 2 * h;
      for (std::size_t j = 0; j < 2 * h; ++j) acc += wrow[j] * feat[t][j];
      e[t][k] = acc;
    }
  }

  std::vector<float> grads(params_.size(), 0.0f);
  // --- dL/demissions (and CRF parameter gradients) ---
  std::vector<std::vector<float>> de(t_count, std::vector<float>(c, 0.0f));
  if (!config_.use_crf) {
    for (std::size_t t = 0; t < t_count; ++t) {
      std::vector<float> p = e[t];
      const float lse = log_sum_exp(p);
      for (std::size_t k = 0; k < c; ++k) p[k] = std::exp(p[k] - lse);
      for (std::size_t k = 0; k < c; ++k) {
        de[t][k] = p[k] - (static_cast<std::size_t>(tags[t]) == k ? 1.0f : 0.0f);
      }
    }
  } else {
    const float* crf = params_.data() + crf_offset();
    const float* trans = crf;
    const float* start = crf + c * c;
    const float* end_v = crf + c * c + c;
    float* gcrf = grads.data() + crf_offset();
    float* gtrans = gcrf;
    float* gstart = gcrf + c * c;
    float* gend = gcrf + c * c + c;

    // Forward (alpha) and backward (beta) messages in log space.
    std::vector<std::vector<float>> alpha(t_count, std::vector<float>(c));
    std::vector<std::vector<float>> beta(t_count, std::vector<float>(c));
    std::vector<float> tmp(c);
    for (std::size_t k = 0; k < c; ++k) alpha[0][k] = start[k] + e[0][k];
    for (std::size_t t = 1; t < t_count; ++t) {
      for (std::size_t j = 0; j < c; ++j) {
        for (std::size_t i = 0; i < c; ++i) {
          tmp[i] = alpha[t - 1][i] + trans[i * c + j];
        }
        alpha[t][j] = e[t][j] + log_sum_exp(tmp);
      }
    }
    for (std::size_t k = 0; k < c; ++k) beta[t_count - 1][k] = end_v[k];
    for (std::size_t t = t_count - 1; t-- > 0;) {
      for (std::size_t i = 0; i < c; ++i) {
        for (std::size_t j = 0; j < c; ++j) {
          tmp[j] = trans[i * c + j] + e[t + 1][j] + beta[t + 1][j];
        }
        beta[t][i] = log_sum_exp(tmp);
      }
    }
    for (std::size_t k = 0; k < c; ++k) {
      tmp[k] = alpha[t_count - 1][k] + end_v[k];
    }
    const float log_z = log_sum_exp(tmp);

    // Unary marginals → emission gradient; also start/end gradients.
    for (std::size_t t = 0; t < t_count; ++t) {
      for (std::size_t k = 0; k < c; ++k) {
        const float marg = std::exp(alpha[t][k] + beta[t][k] - log_z);
        de[t][k] = marg - (static_cast<std::size_t>(tags[t]) == k ? 1.0f : 0.0f);
      }
    }
    for (std::size_t k = 0; k < c; ++k) {
      const float m0 = std::exp(alpha[0][k] + beta[0][k] - log_z);
      gstart[k] += m0 - (static_cast<std::size_t>(tags[0]) == k ? 1.0f : 0.0f);
      const float mT =
          std::exp(alpha[t_count - 1][k] + beta[t_count - 1][k] - log_z);
      gend[k] +=
          mT - (static_cast<std::size_t>(tags[t_count - 1]) == k ? 1.0f : 0.0f);
    }
    // Pairwise marginals → transition gradient.
    for (std::size_t t = 1; t < t_count; ++t) {
      for (std::size_t i = 0; i < c; ++i) {
        for (std::size_t j = 0; j < c; ++j) {
          const float pm = std::exp(alpha[t - 1][i] + trans[i * c + j] +
                                    e[t][j] + beta[t][j] - log_z);
          gtrans[i * c + j] +=
              pm - ((static_cast<std::size_t>(tags[t - 1]) == i &&
                     static_cast<std::size_t>(tags[t]) == j)
                        ? 1.0f
                        : 0.0f);
        }
      }
    }
  }

  // --- Output layer gradient and feature deltas ---
  float* gout = grads.data() + out_offset();
  float* gbout = gout + c * 2 * h;
  std::vector<std::vector<float>> dfeat(t_count,
                                        std::vector<float>(2 * h, 0.0f));
  for (std::size_t t = 0; t < t_count; ++t) {
    for (std::size_t k = 0; k < c; ++k) {
      const float delta = de[t][k];
      if (delta == 0.0f) continue;
      float* gwrow = gout + k * 2 * h;
      const float* wrow = wout + k * 2 * h;
      for (std::size_t j = 0; j < 2 * h; ++j) {
        gwrow[j] += delta * feat[t][j];
        dfeat[t][j] += delta * wrow[j];
      }
      gbout[k] += delta;
    }
    if (locked_mask != nullptr) {
      for (std::size_t j = 0; j < 2 * h; ++j) dfeat[t][j] *= (*locked_mask)[j];
    }
  }

  // --- BPTT through both directions ---
  std::vector<std::vector<float>> dh_f(t_count, std::vector<float>(h));
  std::vector<std::vector<float>> dh_b(t_count, std::vector<float>(h));
  for (std::size_t t = 0; t < t_count; ++t) {
    for (std::size_t j = 0; j < h; ++j) {
      dh_f[t][j] = dfeat[t][j];
      // Backward direction's step t corresponds to sentence position
      // t_count-1-t.
      dh_b[t][j] = dfeat[t_count - 1 - t][h + j];
    }
  }
  backward_direction(params_.data(), grads.data(), d, h, fwd, dh_f);
  backward_direction(params_.data() + dir_params(),
                     grads.data() + dir_params(), d, h, bwd, dh_b);
  return grads;
}

BiLstmTagger::BiLstmTagger(
    const embed::Embedding& embedding,
    const std::vector<std::vector<std::int32_t>>& sentences,
    const std::vector<std::vector<std::int32_t>>& tags,
    const BiLstmConfig& config)
    : embedding_(embedding), config_(config) {
  ANCHOR_CHECK_EQ(sentences.size(), tags.size());
  ANCHOR_CHECK(!sentences.empty());
  const std::size_t h = config.hidden;
  const std::size_t c = config.num_tags;

  std::size_t total = 2 * dir_params() + c * 2 * h + c;
  if (config.use_crf) total += c * c + 2 * c;
  params_.assign(total, 0.0f);

  Rng init_rng(config.init_seed);
  // Glorot-style init for the recurrent blocks and output layer.
  auto init_block = [&](std::size_t offset, std::size_t count, double fan) {
    const double scale = 1.0 / std::sqrt(fan);
    for (std::size_t i = 0; i < count; ++i) {
      params_[offset + i] = static_cast<float>(init_rng.normal(0.0, scale));
    }
  };
  const std::size_t d = embedding_.dim;
  for (std::size_t dir = 0; dir < 2; ++dir) {
    const std::size_t base = dir * dir_params();
    init_block(base, 4 * h * d, static_cast<double>(d));
    init_block(base + 4 * h * d, 4 * h * h, static_cast<double>(h));
    // Forget-gate bias starts at 1 (standard LSTM practice).
    for (std::size_t j = 0; j < h; ++j) {
      params_[base + 4 * h * d + 4 * h * h + h + j] = 1.0f;
    }
  }
  init_block(out_offset(), c * 2 * h, static_cast<double>(2 * h));
  // CRF transitions start at zero (uniform), which is already the case.

  Sgd optimizer(config.learning_rate, config.clip_norm);
  std::vector<std::size_t> order(sentences.size());
  std::iota(order.begin(), order.end(), 0u);
  Rng sample_rng(config.sampling_seed);

  std::vector<float> locked_mask(2 * h, 1.0f);
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    if (config.anneal_every > 0 && epoch > 0 &&
        epoch % config.anneal_every == 0) {
      optimizer.set_learning_rate(optimizer.learning_rate() * 0.5f);
    }
    sample_rng.shuffle(order);
    for (const std::size_t idx : order) {
      const auto& sentence = sentences[idx];
      if (sentence.empty()) continue;
      // Locked dropout: one mask shared across all timesteps (inverted).
      const float keep = 1.0f - config.locked_dropout;
      for (auto& m : locked_mask) {
        m = (config.locked_dropout > 0.0f &&
             sample_rng.bernoulli(config.locked_dropout))
                ? 0.0f
                : (config.locked_dropout > 0.0f ? 1.0f / keep : 1.0f);
      }
      std::vector<std::uint8_t> word_drop(sentence.size(), 0);
      for (auto& wd : word_drop) {
        wd = (config.word_dropout > 0.0f &&
              sample_rng.bernoulli(config.word_dropout))
                 ? 1
                 : 0;
      }
      const std::vector<float> grads =
          example_gradient(sentence, tags[idx], &locked_mask, &word_drop);
      optimizer.step(params_, grads);
    }
  }
}

std::vector<std::int32_t> BiLstmTagger::predict(
    const std::vector<std::int32_t>& sentence) const {
  ANCHOR_CHECK(!sentence.empty());
  const std::vector<std::vector<float>> e = emissions(sentence);
  const std::size_t c = config_.num_tags;
  const std::size_t t_count = e.size();
  std::vector<std::int32_t> out(t_count, 0);

  if (!config_.use_crf) {
    for (std::size_t t = 0; t < t_count; ++t) {
      out[t] = static_cast<std::int32_t>(
          std::max_element(e[t].begin(), e[t].end()) - e[t].begin());
    }
    return out;
  }

  // Viterbi decoding.
  const float* crf = params_.data() + crf_offset();
  const float* trans = crf;
  const float* start = crf + c * c;
  const float* end_v = crf + c * c + c;
  std::vector<std::vector<float>> delta(t_count, std::vector<float>(c));
  std::vector<std::vector<std::size_t>> back(t_count,
                                             std::vector<std::size_t>(c, 0));
  for (std::size_t k = 0; k < c; ++k) delta[0][k] = start[k] + e[0][k];
  for (std::size_t t = 1; t < t_count; ++t) {
    for (std::size_t j = 0; j < c; ++j) {
      float best = -1e30f;
      std::size_t arg = 0;
      for (std::size_t i = 0; i < c; ++i) {
        const float s = delta[t - 1][i] + trans[i * c + j];
        if (s > best) {
          best = s;
          arg = i;
        }
      }
      delta[t][j] = best + e[t][j];
      back[t][j] = arg;
    }
  }
  float best = -1e30f;
  std::size_t arg = 0;
  for (std::size_t k = 0; k < c; ++k) {
    const float s = delta[t_count - 1][k] + end_v[k];
    if (s > best) {
      best = s;
      arg = k;
    }
  }
  out[t_count - 1] = static_cast<std::int32_t>(arg);
  for (std::size_t t = t_count - 1; t-- > 0;) {
    arg = back[t + 1][arg];
    out[t] = static_cast<std::int32_t>(arg);
  }
  return out;
}

std::vector<std::int32_t> BiLstmTagger::predict_flat(
    const std::vector<std::vector<std::int32_t>>& sentences) const {
  std::vector<std::int32_t> out;
  for (const auto& s : sentences) {
    const std::vector<std::int32_t> p = predict(s);
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

}  // namespace anchor::model
