#include "model/optimizer.hpp"

#include <cmath>

namespace anchor::model {

Adam::Adam(std::size_t num_params, float lr, float beta1, float beta2,
           float eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps),
      m_(num_params, 0.0f), v_(num_params, 0.0f) {}

void Adam::step(std::vector<float>& params, const std::vector<float>& grads) {
  ANCHOR_CHECK_EQ(params.size(), m_.size());
  ANCHOR_CHECK_EQ(grads.size(), m_.size());
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    const float g = grads[i];
    m_[i] = beta1_ * m_[i] + (1.0f - beta1_) * g;
    v_[i] = beta2_ * v_[i] + (1.0f - beta2_) * g * g;
    const float mhat = m_[i] / bc1;
    const float vhat = v_[i] / bc2;
    params[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
  }
}

void Sgd::step(std::vector<float>& params, const std::vector<float>& grads) {
  ANCHOR_CHECK_EQ(params.size(), grads.size());
  float scale = 1.0f;
  if (clip_ > 0.0f) {
    double norm_sq = 0.0;
    for (const float g : grads) norm_sq += static_cast<double>(g) * g;
    const float norm = static_cast<float>(std::sqrt(norm_sq));
    if (norm > clip_) scale = clip_ / norm;
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i] -= lr_ * scale * grads[i];
  }
}

}  // namespace anchor::model
