#include "model/text_cnn.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "model/optimizer.hpp"
#include "util/rng.hpp"

namespace anchor::model {

namespace {

void softmax(std::vector<float>& logits) {
  const float mx = *std::max_element(logits.begin(), logits.end());
  float sum = 0.0f;
  for (auto& x : logits) {
    x = std::exp(x - mx);
    sum += x;
  }
  for (auto& x : logits) x /= sum;
}

}  // namespace

/// Activations cached for backprop: conv outputs (pre-ReLU), pooled feature
/// vector (post-dropout), argmax positions, logits.
struct TextCnn::Forward {
  // conv[w][k*T + t]: pre-activation of channel k at position t for width w.
  std::vector<std::vector<float>> conv;
  std::vector<std::size_t> conv_len;        // T per width
  std::vector<float> pooled;                // post-ReLU, post-dropout features
  std::vector<std::size_t> argmax;          // winning t per (width, channel)
  std::vector<float> probs;                 // softmax output
};

std::size_t TextCnn::filter_offset(std::size_t width_idx) const {
  const std::size_t d = embedding_.dim;
  std::size_t off = 0;
  for (std::size_t w = 0; w < width_idx; ++w) {
    off += config_.channels * config_.kernel_widths[w] * d + config_.channels;
  }
  return off;
}

std::size_t TextCnn::filter_bias_offset(std::size_t width_idx) const {
  return filter_offset(width_idx) +
         config_.channels * config_.kernel_widths[width_idx] * embedding_.dim;
}

std::size_t TextCnn::classifier_offset() const {
  return filter_offset(config_.kernel_widths.size());
}

TextCnn::Forward TextCnn::forward(const std::vector<std::int32_t>& sentence,
                                  const std::vector<float>* dropout_mask) const {
  const std::size_t d = embedding_.dim;
  const std::size_t f = config_.channels;
  Forward fwd;
  fwd.conv.resize(config_.kernel_widths.size());
  fwd.conv_len.resize(config_.kernel_widths.size());
  fwd.pooled.assign(feature_size(), 0.0f);
  fwd.argmax.assign(feature_size(), 0u);

  for (std::size_t wi = 0; wi < config_.kernel_widths.size(); ++wi) {
    const std::size_t width = config_.kernel_widths[wi];
    // Zero-pad short sentences so every width produces ≥1 position.
    const std::size_t padded_len = std::max(sentence.size(), width);
    const std::size_t t_count = padded_len - width + 1;
    fwd.conv_len[wi] = t_count;
    fwd.conv[wi].assign(f * t_count, 0.0f);

    const float* filters = params_.data() + filter_offset(wi);
    const float* bias = params_.data() + filter_bias_offset(wi);
    for (std::size_t k = 0; k < f; ++k) {
      const float* kernel = filters + k * width * d;
      float best = -1e30f;
      std::size_t best_t = 0;
      for (std::size_t t = 0; t < t_count; ++t) {
        float acc = bias[k];
        for (std::size_t i = 0; i < width; ++i) {
          const std::size_t pos = t + i;
          if (pos >= sentence.size()) break;  // zero padding contributes 0
          const float* row =
              embedding_.row(static_cast<std::size_t>(sentence[pos]));
          const float* krow = kernel + i * d;
          for (std::size_t j = 0; j < d; ++j) acc += krow[j] * row[j];
        }
        fwd.conv[wi][k * t_count + t] = acc;
        if (acc > best) {
          best = acc;
          best_t = t;
        }
      }
      const std::size_t feat_idx = wi * f + k;
      fwd.argmax[feat_idx] = best_t;
      float val = std::max(0.0f, best);  // ReLU after pooling ≡ pool-then-relu
      if (dropout_mask != nullptr) val *= (*dropout_mask)[feat_idx];
      fwd.pooled[feat_idx] = val;
    }
  }

  // Linear classifier.
  const std::size_t c = config_.num_classes;
  const std::size_t fs = feature_size();
  const float* cls = params_.data() + classifier_offset();
  fwd.probs.assign(c, 0.0f);
  for (std::size_t k = 0; k < c; ++k) {
    float acc = cls[c * fs + k];  // bias block after the C×fs weights
    const float* wrow = cls + k * fs;
    for (std::size_t j = 0; j < fs; ++j) acc += wrow[j] * fwd.pooled[j];
    fwd.probs[k] = acc;
  }
  softmax(fwd.probs);
  return fwd;
}

TextCnn::TextCnn(const embed::Embedding& embedding,
                 const std::vector<std::vector<std::int32_t>>& sentences,
                 const std::vector<std::int32_t>& labels,
                 const TextCnnConfig& config)
    : embedding_(embedding), config_(config) {
  ANCHOR_CHECK_EQ(sentences.size(), labels.size());
  ANCHOR_CHECK(!config.kernel_widths.empty());
  const std::size_t d = embedding_.dim;
  const std::size_t c = config.num_classes;
  const std::size_t fs = feature_size();

  std::size_t total = 0;
  for (const std::size_t w : config.kernel_widths) {
    total += config.channels * w * d + config.channels;
  }
  total += c * fs + c;
  params_.assign(total, 0.0f);

  Rng init_rng(config.init_seed);
  for (std::size_t wi = 0; wi < config.kernel_widths.size(); ++wi) {
    const std::size_t width = config.kernel_widths[wi];
    const double scale = 1.0 / std::sqrt(static_cast<double>(width * d));
    float* filters = params_.data() + filter_offset(wi);
    for (std::size_t i = 0; i < config.channels * width * d; ++i) {
      filters[i] = static_cast<float>(init_rng.normal(0.0, scale));
    }
  }
  {
    const double scale = 1.0 / std::sqrt(static_cast<double>(fs));
    float* cls = params_.data() + classifier_offset();
    for (std::size_t i = 0; i < c * fs; ++i) {
      cls[i] = static_cast<float>(init_rng.normal(0.0, scale));
    }
  }

  Adam optimizer(params_.size(), config.learning_rate);
  std::vector<std::size_t> order(sentences.size());
  std::iota(order.begin(), order.end(), 0u);
  Rng sample_rng(config.sampling_seed);

  std::vector<float> grads(params_.size(), 0.0f);
  std::vector<float> mask(fs, 1.0f);
  const float keep = 1.0f - config.dropout;

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    sample_rng.shuffle(order);
    for (std::size_t start = 0; start < order.size();
         start += config.batch_size) {
      const std::size_t end = std::min(order.size(), start + config.batch_size);
      std::fill(grads.begin(), grads.end(), 0.0f);
      const float inv_batch = 1.0f / static_cast<float>(end - start);

      for (std::size_t b = start; b < end; ++b) {
        const auto& sentence = sentences[order[b]];
        const auto label = static_cast<std::size_t>(labels[order[b]]);

        // Inverted dropout: scale kept units by 1/keep during training so
        // inference needs no rescaling.
        for (auto& m : mask) {
          m = (config.dropout > 0.0f && sample_rng.bernoulli(config.dropout))
                  ? 0.0f
                  : (config.dropout > 0.0f ? 1.0f / keep : 1.0f);
        }
        const Forward fwd = forward(sentence, &mask);

        // Classifier gradient.
        float* gcls = grads.data() + classifier_offset();
        std::vector<float> dfeat(fs, 0.0f);
        const float* cls = params_.data() + classifier_offset();
        for (std::size_t k = 0; k < c; ++k) {
          const float delta =
              (fwd.probs[k] - (k == label ? 1.0f : 0.0f)) * inv_batch;
          float* wrow = gcls + k * fs;
          for (std::size_t j = 0; j < fs; ++j) {
            wrow[j] += delta * fwd.pooled[j];
            dfeat[j] += delta * cls[k * fs + j];
          }
          gcls[c * fs + k] += delta;
        }

        // Through dropout, ReLU, max-pool into the winning conv window.
        for (std::size_t wi = 0; wi < config.kernel_widths.size(); ++wi) {
          const std::size_t width = config.kernel_widths[wi];
          const std::size_t t_count = fwd.conv_len[wi];
          float* gfilters = grads.data() + filter_offset(wi);
          float* gbias = grads.data() + filter_bias_offset(wi);
          for (std::size_t k = 0; k < config.channels; ++k) {
            const std::size_t feat_idx = wi * config.channels + k;
            const float pre = fwd.conv[wi][k * t_count + fwd.argmax[feat_idx]];
            if (pre <= 0.0f) continue;  // ReLU gate
            const float g = dfeat[feat_idx] * mask[feat_idx];
            if (g == 0.0f) continue;
            const std::size_t t = fwd.argmax[feat_idx];
            float* kernel = gfilters + k * width * d;
            for (std::size_t i = 0; i < width; ++i) {
              const std::size_t pos = t + i;
              if (pos >= sentence.size()) break;
              const float* row =
                  embedding_.row(static_cast<std::size_t>(sentence[pos]));
              float* krow = kernel + i * d;
              for (std::size_t j = 0; j < d; ++j) krow[j] += g * row[j];
            }
            gbias[k] += g;
          }
        }
      }
      optimizer.step(params_, grads);
    }
  }
}

std::int32_t TextCnn::predict(const std::vector<std::int32_t>& sentence) const {
  const Forward fwd = forward(sentence, nullptr);
  return static_cast<std::int32_t>(
      std::max_element(fwd.probs.begin(), fwd.probs.end()) -
      fwd.probs.begin());
}

std::vector<std::int32_t> TextCnn::predict_all(
    const std::vector<std::vector<std::int32_t>>& sentences) const {
  std::vector<std::int32_t> out;
  out.reserve(sentences.size());
  for (const auto& s : sentences) out.push_back(predict(s));
  return out;
}

}  // namespace anchor::model
