// Linear bag-of-words sentence classifier (paper §C.3.1).
//
// Features are the average of the sentence's word vectors; a linear softmax
// layer is trained with Adam. The embedding is frozen by default (the
// paper's main protocol) or fine-tuned (Appendix E.4). Model-initialization
// and data-sampling randomness are driven by *separate* seeds so the
// Appendix E.3 randomness-source study can vary them independently.
#pragma once

#include <cstdint>
#include <vector>

#include "embed/embedding.hpp"
#include "model/optimizer.hpp"

namespace anchor::model {

struct LinearBowConfig {
  std::size_t num_classes = 2;
  float learning_rate = 1e-3f;
  std::size_t epochs = 30;
  std::size_t batch_size = 32;
  std::uint64_t init_seed = 1;
  std::uint64_t sampling_seed = 1;
  bool fine_tune_embeddings = false;
  /// Prediction-churn stabilization strength λ ∈ [0, 1] (Fard et al., 2016 —
  /// the complementary churn-reduction technique the paper's related work
  /// discusses). When a previous model's class distributions are supplied
  /// to the constructor, the training target for example i becomes
  /// (1−λ)·onehot(label_i) + λ·anchor_probs_i, pulling the retrained model
  /// toward its predecessor's predictions. λ = 0 (default) is plain
  /// training.
  float stabilization_lambda = 0.0f;
};

class LinearBowClassifier {
 public:
  /// Trains on (sentences, labels); the embedding is copied so fine-tuning
  /// never mutates the caller's matrix. `anchor_probs` (optional) gives the
  /// previous model's class distribution per *training* sentence for churn
  /// stabilization; it must be null when config.stabilization_lambda == 0
  /// and sized like `sentences` otherwise.
  LinearBowClassifier(const embed::Embedding& embedding,
                      const std::vector<std::vector<std::int32_t>>& sentences,
                      const std::vector<std::int32_t>& labels,
                      const LinearBowConfig& config,
                      const std::vector<std::vector<float>>* anchor_probs =
                          nullptr);

  std::int32_t predict(const std::vector<std::int32_t>& sentence) const;
  std::vector<std::int32_t> predict_all(
      const std::vector<std::vector<std::int32_t>>& sentences) const;

  /// Softmax class distribution for a sentence — the anchor signal a
  /// successor model trains against under stabilization.
  std::vector<float> probabilities(
      const std::vector<std::int32_t>& sentence) const;
  std::vector<std::vector<float>> probabilities_all(
      const std::vector<std::vector<std::int32_t>>& sentences) const;

  /// The embedding the model predicts with (differs from the input only
  /// under fine-tuning).
  const embed::Embedding& embedding() const { return embedding_; }

 private:
  std::vector<float> features(const std::vector<std::int32_t>& sentence) const;
  std::vector<float> logits(const std::vector<float>& feat) const;

  embed::Embedding embedding_;
  LinearBowConfig config_;
  // weights_ holds the C×d matrix row-major followed by C biases.
  std::vector<float> weights_;
};

}  // namespace anchor::model
