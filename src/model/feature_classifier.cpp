#include "model/feature_classifier.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "model/optimizer.hpp"
#include "util/rng.hpp"

namespace anchor::model {

FeatureClassifier::FeatureClassifier(
    const std::vector<std::vector<float>>& features,
    const std::vector<std::int32_t>& labels,
    const FeatureClassifierConfig& config)
    : config_(config) {
  ANCHOR_CHECK_EQ(features.size(), labels.size());
  ANCHOR_CHECK(!features.empty());
  dim_ = features.front().size();
  const std::size_t c = config.num_classes;

  Rng init_rng(config.init_seed);
  weights_.assign(c * dim_ + c, 0.0f);
  const double scale = 1.0 / std::sqrt(static_cast<double>(dim_));
  for (std::size_t i = 0; i < c * dim_; ++i) {
    weights_[i] = static_cast<float>(init_rng.normal(0.0, scale));
  }

  Adam optimizer(weights_.size(), config.learning_rate);
  std::vector<std::size_t> order(features.size());
  std::iota(order.begin(), order.end(), 0u);
  Rng sample_rng(config.sampling_seed);
  std::vector<float> grads(weights_.size(), 0.0f);

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    sample_rng.shuffle(order);
    for (std::size_t start = 0; start < order.size();
         start += config.batch_size) {
      const std::size_t end = std::min(order.size(), start + config.batch_size);
      std::fill(grads.begin(), grads.end(), 0.0f);
      const float inv = 1.0f / static_cast<float>(end - start);
      for (std::size_t b = start; b < end; ++b) {
        const auto& feat = features[order[b]];
        ANCHOR_CHECK_EQ(feat.size(), dim_);
        std::vector<float> p = logits(feat);
        const float mx = *std::max_element(p.begin(), p.end());
        float sum = 0.0f;
        for (auto& x : p) {
          x = std::exp(x - mx);
          sum += x;
        }
        for (auto& x : p) x /= sum;
        const auto label = static_cast<std::size_t>(labels[order[b]]);
        for (std::size_t k = 0; k < c; ++k) {
          const float delta = (p[k] - (k == label ? 1.0f : 0.0f)) * inv;
          float* wrow = grads.data() + k * dim_;
          for (std::size_t j = 0; j < dim_; ++j) wrow[j] += delta * feat[j];
          grads[c * dim_ + k] += delta;
        }
      }
      optimizer.step(weights_, grads);
    }
  }
}

std::vector<float> FeatureClassifier::logits(
    const std::vector<float>& feature) const {
  const std::size_t c = config_.num_classes;
  std::vector<float> out(c);
  for (std::size_t k = 0; k < c; ++k) {
    const float* wrow = weights_.data() + k * dim_;
    float acc = weights_[c * dim_ + k];
    for (std::size_t j = 0; j < dim_; ++j) acc += wrow[j] * feature[j];
    out[k] = acc;
  }
  return out;
}

std::int32_t FeatureClassifier::predict(
    const std::vector<float>& feature) const {
  const std::vector<float> s = logits(feature);
  return static_cast<std::int32_t>(std::max_element(s.begin(), s.end()) -
                                   s.begin());
}

std::vector<std::int32_t> FeatureClassifier::predict_all(
    const std::vector<std::vector<float>>& features) const {
  std::vector<std::int32_t> out;
  out.reserve(features.size());
  for (const auto& f : features) out.push_back(predict(f));
  return out;
}

}  // namespace anchor::model
