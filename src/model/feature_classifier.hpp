// Softmax regression over precomputed dense feature vectors — the "linear
// probe" the paper trains on top of frozen BERT features (§6.2 / App. D.7).
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace anchor::model {

struct FeatureClassifierConfig {
  std::size_t num_classes = 2;
  float learning_rate = 1e-2f;
  std::size_t epochs = 40;
  std::size_t batch_size = 32;
  std::uint64_t init_seed = 1;
  std::uint64_t sampling_seed = 1;
};

class FeatureClassifier {
 public:
  /// Trains on row-major features (`num_examples` × `dim`) with int labels.
  FeatureClassifier(const std::vector<std::vector<float>>& features,
                    const std::vector<std::int32_t>& labels,
                    const FeatureClassifierConfig& config);

  std::int32_t predict(const std::vector<float>& feature) const;
  std::vector<std::int32_t> predict_all(
      const std::vector<std::vector<float>>& features) const;

 private:
  std::vector<float> logits(const std::vector<float>& feature) const;

  FeatureClassifierConfig config_;
  std::size_t dim_ = 0;
  std::vector<float> weights_;  // C×d row-major followed by C biases
};

}  // namespace anchor::model
