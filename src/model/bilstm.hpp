// BiLSTM sequence tagger with optional linear-chain CRF decoding layer —
// the paper's NER downstream model (Akbik et al. 2018 style; §C.3.2). The
// main experiments use the BiLSTM without the CRF for speed; Appendix E.2
// turns the CRF on. Both paths are implemented with full manual
// backpropagation (BPTT; CRF gradients via forward-backward), validated
// against finite differences in the tests.
#pragma once

#include <cstdint>
#include <vector>

#include "embed/embedding.hpp"

namespace anchor::model {

struct BiLstmConfig {
  std::size_t num_tags = 5;
  std::size_t hidden = 24;
  float learning_rate = 0.1f;   // vanilla SGD, as the paper
  float clip_norm = 5.0f;
  std::size_t epochs = 6;
  /// Halve the learning rate every `anneal_every` epochs (simplified form of
  /// the paper's patience-based annealing).
  std::size_t anneal_every = 4;
  float word_dropout = 0.05f;   // zero a token's embedding with this prob.
  float locked_dropout = 0.3f;  // shared-across-time dropout on [h_f; h_b]
  bool use_crf = false;
  std::uint64_t init_seed = 1;
  std::uint64_t sampling_seed = 1;
};

class BiLstmTagger {
 public:
  /// Trains on token sequences with per-token tag sequences.
  BiLstmTagger(const embed::Embedding& embedding,
               const std::vector<std::vector<std::int32_t>>& sentences,
               const std::vector<std::vector<std::int32_t>>& tags,
               const BiLstmConfig& config);

  /// Per-token tag predictions (Viterbi when the CRF is enabled, per-token
  /// argmax otherwise).
  std::vector<std::int32_t> predict(
      const std::vector<std::int32_t>& sentence) const;

  /// Flattened predictions over a dataset, token-major (matching the
  /// flattened gold-tag layout the task evaluators use).
  std::vector<std::int32_t> predict_flat(
      const std::vector<std::vector<std::int32_t>>& sentences) const;

  /// Per-sentence emission logits (T × num_tags), exposed for tests.
  std::vector<std::vector<float>> emissions(
      const std::vector<std::int32_t>& sentence) const;

  /// Total negative log-likelihood of the gold tags (exposed for the
  /// finite-difference gradient tests).
  double loss(const std::vector<std::int32_t>& sentence,
              const std::vector<std::int32_t>& tags) const;

  std::vector<float>& parameters() { return params_; }
  const std::vector<float>& parameters() const { return params_; }

  /// Computes the full parameter gradient for one example (exposed for the
  /// finite-difference tests; training uses it internally).
  std::vector<float> example_gradient(const std::vector<std::int32_t>& sentence,
                                      const std::vector<std::int32_t>& tags,
                                      const std::vector<float>* locked_mask,
                                      const std::vector<std::uint8_t>*
                                          word_drop) const;

  struct DirectionCache;  // per-direction activations for BPTT (internal)

 private:
  // Parameter layout offsets into params_.
  std::size_t dir_params() const;          // one direction's size
  std::size_t out_offset() const;          // classifier W/b
  std::size_t crf_offset() const;          // transitions/start/end

  embed::Embedding embedding_;
  BiLstmConfig config_;
  std::vector<float> params_;
};

}  // namespace anchor::model
