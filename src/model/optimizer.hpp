// First-order optimizers for the downstream models.
//
// The paper trains sentiment models with Adam and sequence models with
// vanilla SGD (Appendix C.3); both are implemented here over flat parameter
// vectors so every model can share them.
#pragma once

#include <cstddef>
#include <vector>

#include "util/check.hpp"

namespace anchor::model {

/// Adam (Kingma & Ba) with the standard bias correction.
class Adam {
 public:
  explicit Adam(std::size_t num_params, float lr = 1e-3f, float beta1 = 0.9f,
                float beta2 = 0.999f, float eps = 1e-8f);

  /// Applies one update in place; `grads` must match the parameter size.
  void step(std::vector<float>& params, const std::vector<float>& grads);

  float learning_rate() const { return lr_; }
  void set_learning_rate(float lr) { lr_ = lr; }

 private:
  float lr_, beta1_, beta2_, eps_;
  std::vector<float> m_, v_;
  std::size_t t_ = 0;
};

/// Plain SGD with optional gradient-norm clipping (the BiLSTM trainer clips
/// at 5, as flair does).
class Sgd {
 public:
  explicit Sgd(float lr, float clip_norm = 0.0f) : lr_(lr), clip_(clip_norm) {}

  void step(std::vector<float>& params, const std::vector<float>& grads);

  float learning_rate() const { return lr_; }
  void set_learning_rate(float lr) { lr_ = lr; }

 private:
  float lr_;
  float clip_;
};

}  // namespace anchor::model
