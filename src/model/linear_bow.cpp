#include "model/linear_bow.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/rng.hpp"

namespace anchor::model {

namespace {

/// In-place softmax with max-shift.
void softmax(std::vector<float>& logits) {
  const float mx = *std::max_element(logits.begin(), logits.end());
  float sum = 0.0f;
  for (auto& x : logits) {
    x = std::exp(x - mx);
    sum += x;
  }
  for (auto& x : logits) x /= sum;
}

}  // namespace

LinearBowClassifier::LinearBowClassifier(
    const embed::Embedding& embedding,
    const std::vector<std::vector<std::int32_t>>& sentences,
    const std::vector<std::int32_t>& labels, const LinearBowConfig& config,
    const std::vector<std::vector<float>>* anchor_probs)
    : embedding_(embedding), config_(config) {
  ANCHOR_CHECK_EQ(sentences.size(), labels.size());
  ANCHOR_CHECK(!sentences.empty());
  ANCHOR_CHECK_GE(config.num_classes, 2u);
  ANCHOR_CHECK_GE(config.stabilization_lambda, 0.0f);
  ANCHOR_CHECK_LE(config.stabilization_lambda, 1.0f);
  if (config.stabilization_lambda > 0.0f) {
    ANCHOR_CHECK_MSG(anchor_probs != nullptr,
                     "stabilization requires anchor model probabilities");
    ANCHOR_CHECK_EQ(anchor_probs->size(), sentences.size());
  } else {
    ANCHOR_CHECK_MSG(anchor_probs == nullptr,
                     "anchor probabilities supplied with lambda == 0");
  }
  const std::size_t d = embedding_.dim;
  const std::size_t c = config.num_classes;

  Rng init_rng(config.init_seed);
  weights_.assign(c * d + c, 0.0f);
  const double scale = 1.0 / std::sqrt(static_cast<double>(d));
  for (std::size_t i = 0; i < c * d; ++i) {
    weights_[i] = static_cast<float>(init_rng.normal(0.0, scale));
  }

  Adam optimizer(weights_.size(), config.learning_rate);
  // Fine-tuning keeps a separate Adam state for the embedding table.
  std::vector<float> emb_grad;
  Adam emb_optimizer(config.fine_tune_embeddings ? embedding_.data.size() : 0,
                     config.learning_rate);
  if (config.fine_tune_embeddings) {
    emb_grad.assign(embedding_.data.size(), 0.0f);
  }

  std::vector<std::size_t> order(sentences.size());
  std::iota(order.begin(), order.end(), 0u);
  Rng sample_rng(config.sampling_seed);

  std::vector<float> grads(weights_.size(), 0.0f);
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    sample_rng.shuffle(order);
    for (std::size_t start = 0; start < order.size();
         start += config.batch_size) {
      const std::size_t end =
          std::min(order.size(), start + config.batch_size);
      std::fill(grads.begin(), grads.end(), 0.0f);
      if (config.fine_tune_embeddings) {
        std::fill(emb_grad.begin(), emb_grad.end(), 0.0f);
      }
      const float inv_batch = 1.0f / static_cast<float>(end - start);

      for (std::size_t b = start; b < end; ++b) {
        const auto& sentence = sentences[order[b]];
        const auto label = static_cast<std::size_t>(labels[order[b]]);
        ANCHOR_CHECK_LT(label, c);
        const std::vector<float> feat = features(sentence);
        std::vector<float> probs = logits(feat);
        softmax(probs);

        // Training target: onehot(label), blended toward the anchor model's
        // distribution under stabilization (Fard et al., 2016).
        const float lambda = config.stabilization_lambda;
        const std::vector<float>* anchor =
            lambda > 0.0f ? &(*anchor_probs)[order[b]] : nullptr;
        if (anchor != nullptr) ANCHOR_CHECK_EQ(anchor->size(), c);

        // dL/dlogit = p − target; accumulate W, b gradients.
        for (std::size_t k = 0; k < c; ++k) {
          float target = (k == label ? 1.0f : 0.0f);
          if (anchor != nullptr) {
            target = (1.0f - lambda) * target + lambda * (*anchor)[k];
          }
          const float delta = (probs[k] - target) * inv_batch;
          float* wrow = grads.data() + k * d;
          for (std::size_t j = 0; j < d; ++j) wrow[j] += delta * feat[j];
          grads[c * d + k] += delta;
        }

        if (config.fine_tune_embeddings && !sentence.empty()) {
          // d feat / d row(w) = 1/len for each occurrence of w.
          const float inv_len = 1.0f / static_cast<float>(sentence.size());
          for (const std::int32_t w : sentence) {
            float* grow =
                emb_grad.data() + static_cast<std::size_t>(w) * d;
            for (std::size_t k = 0; k < c; ++k) {
              float target = (k == label ? 1.0f : 0.0f);
              if (anchor != nullptr) {
                target = (1.0f - lambda) * target + lambda * (*anchor)[k];
              }
              const float delta = (probs[k] - target) * inv_batch;
              const float* wrow = weights_.data() + k * d;
              for (std::size_t j = 0; j < d; ++j) {
                grow[j] += delta * wrow[j] * inv_len;
              }
            }
          }
        }
      }
      optimizer.step(weights_, grads);
      if (config.fine_tune_embeddings) {
        emb_optimizer.step(embedding_.data, emb_grad);
      }
    }
  }
}

std::vector<float> LinearBowClassifier::features(
    const std::vector<std::int32_t>& sentence) const {
  const std::size_t d = embedding_.dim;
  std::vector<float> feat(d, 0.0f);
  if (sentence.empty()) return feat;
  for (const std::int32_t w : sentence) {
    const float* row = embedding_.row(static_cast<std::size_t>(w));
    for (std::size_t j = 0; j < d; ++j) feat[j] += row[j];
  }
  const float inv = 1.0f / static_cast<float>(sentence.size());
  for (auto& x : feat) x *= inv;
  return feat;
}

std::vector<float> LinearBowClassifier::logits(
    const std::vector<float>& feat) const {
  const std::size_t d = embedding_.dim;
  const std::size_t c = config_.num_classes;
  std::vector<float> out(c, 0.0f);
  for (std::size_t k = 0; k < c; ++k) {
    const float* wrow = weights_.data() + k * d;
    float acc = weights_[c * d + k];
    for (std::size_t j = 0; j < d; ++j) acc += wrow[j] * feat[j];
    out[k] = acc;
  }
  return out;
}

std::int32_t LinearBowClassifier::predict(
    const std::vector<std::int32_t>& sentence) const {
  const std::vector<float> scores = logits(features(sentence));
  return static_cast<std::int32_t>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
}

std::vector<std::int32_t> LinearBowClassifier::predict_all(
    const std::vector<std::vector<std::int32_t>>& sentences) const {
  std::vector<std::int32_t> out;
  out.reserve(sentences.size());
  for (const auto& s : sentences) out.push_back(predict(s));
  return out;
}

std::vector<float> LinearBowClassifier::probabilities(
    const std::vector<std::int32_t>& sentence) const {
  std::vector<float> probs = logits(features(sentence));
  softmax(probs);
  return probs;
}

std::vector<std::vector<float>> LinearBowClassifier::probabilities_all(
    const std::vector<std::vector<std::int32_t>>& sentences) const {
  std::vector<std::vector<float>> out;
  out.reserve(sentences.size());
  for (const auto& s : sentences) out.push_back(probabilities(s));
  return out;
}

}  // namespace anchor::model
