// Blocking RPC client for the serving daemon. One connection, one request
// in flight at a time — the server-side batcher provides the concurrency,
// coalescing requests from many such clients into shared batches.
//
// Results come back as the same serve-layer structs in-process callers
// get (LookupResult, GateReport), so code can swap between the in-process
// LookupService and a remote daemon without changing its downstream types.
#pragma once

#include <cstdint>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "obs/trace.hpp"
#include "serve/deployment_gate.hpp"
#include "serve/lookup_service.hpp"

namespace anchor::net {

/// The server answered with an error frame (e.g. unknown candidate
/// version). The connection remains usable.
struct RpcError : std::runtime_error {
  explicit RpcError(const std::string& what) : std::runtime_error(what) {}
};

class Client {
 public:
  /// Connects to the daemon; throws NetError when nothing is listening.
  /// `rpc_timeout_ms` bounds every subsequent send/recv on the connection
  /// (0 = wait forever, the pre-deadline behavior): a backend that
  /// accepts the request and then hangs surfaces as a NetError the caller
  /// can retry, instead of wedging the calling thread for good.
  Client(const std::string& host, std::uint16_t port, int rpc_timeout_ms = 0);

  /// Re-arms the per-operation deadline on the live connection.
  void set_rpc_timeout(int timeout_ms) { stream_.set_io_timeout(timeout_ms); }

  /// Batched lookups, mirroring LookupService's entry points.
  serve::LookupResult lookup_ids(const std::vector<std::size_t>& ids);
  serve::LookupResult lookup_words(const std::vector<std::string>& words);
  /// Single-key convenience (still one RPC; the server coalesces).
  serve::LookupResult lookup_id(std::size_t id);
  serve::LookupResult lookup_word(const std::string& word);

  /// Approximate nearest-neighbor search against the server's live
  /// IVF-PQ index (the TOPK RPC). The by-id / by-word forms resolve the
  /// query row server-side through the batcher; the raw form carries the
  /// vector. nprobe/rerank 0 = server defaults. Throws RpcError when the
  /// server has TOPK disabled or no live version.
  ann::TopKResult topk_id(std::uint64_t id, std::size_t k,
                          std::size_t nprobe = 0, std::size_t rerank = 0);
  ann::TopKResult topk_word(const std::string& word, std::size_t k,
                            std::size_t nprobe = 0, std::size_t rerank = 0);
  ann::TopKResult topk_vector(const std::vector<float>& query, std::size_t k,
                              std::size_t nprobe = 0, std::size_t rerank = 0);
  /// Raw request form (what the cluster router uses for candidates-mode
  /// fan-out); the three conveniences above wrap it.
  ann::TopKResult topk(const TopKRequest& req);

  /// Gates + promotes `candidate` on the server. Throws RpcError when the
  /// version is unknown there. `force` bypasses the instability gate and
  /// flips live directly (still audited, still refused while a canary
  /// runs) — the escape hatch a rollback needs when the near-threshold
  /// gate would refuse the reverse direction; not for routine promotes.
  serve::GateReport try_promote(const std::string& candidate,
                                bool force = false);

  /// Starts a two-phase canaried promotion of `candidate` on the server:
  /// offline gate first, then online shadow-traffic agreement (the server
  /// auto-promotes/auto-rolls-back; poll canary_status()). fraction /
  /// shadow_rate ≤ 0 use the server's configured defaults. Throws
  /// RpcError when the version is unknown or a canary is already running.
  CanaryStatusReport canary_start(const std::string& candidate,
                                  double fraction = 0.0,
                                  double shadow_rate = 0.0);
  /// State + online measurements of the current (or last) canary.
  CanaryStatusReport canary_status();
  /// Aborts a running canary (incumbent stays live); returns the
  /// resulting status. No-op when none is running. With `drain` the
  /// server finishes scoring in-flight shadows first, so the returned
  /// status is the final measured word on the candidate.
  CanaryStatusReport canary_abort(bool drain = false);

  /// Cluster-router RPCs (anchor_router answers these; a plain backend
  /// replies with an Error frame). rollout_start kicks off a shard-by-
  /// shard promotion of `candidate`: mode 0 = offline gated promote per
  /// shard, mode 1 = per-shard canary (fraction / shadow_rate ≤ 0 use the
  /// backend's configured defaults). The reply is the rollout's state at
  /// that instant; poll rollout_status() until report.terminal().
  RolloutStatusReport rollout_start(const std::string& candidate,
                                    std::uint8_t mode = 0,
                                    double fraction = 0.0,
                                    double shadow_rate = 0.0);
  RolloutStatusReport rollout_status();
  /// Stops a running rollout between shards (draining an in-flight
  /// canary) and rolls already-promoted shards back.
  RolloutStatusReport rollout_abort(bool drain = true);
  /// The router's ShardMap in its serialized text form
  /// (cluster::ShardMap::parse round-trips it).
  std::string shard_map();

  /// Installs (spec != "") or clears (spec == "") a fault-injection
  /// config on the backend — FaultConfig text form, e.g.
  /// "delay=0.2:50,drop=0.05". Returns the canonical form the server
  /// echoed. Throws RpcError when the backend was not started with
  /// --fault-inject.
  std::string fault_set(const std::string& spec);

  ServerStatsReport stats();
  /// The server's metrics registry (counters, gauges, histograms) — what
  /// `anchor_cli metrics` renders. Both daemons answer this.
  obs::MetricsReport metrics();
  /// The server's load/heat telemetry: windowed request rates, the
  /// heavy-hitter sketch, and the range heat map. Against a router this
  /// returns the fleet merge in global id space.
  HeatReport heat();
  void ping();
  /// Asks the daemon to exit its serving loop. The reply is confirmed
  /// before returning, so a scripted caller can wait(1) on the daemon pid.
  void shutdown_server();

  // ---- request tracing --------------------------------------------------
  // A traced request carries a TraceContext in its frame extension; every
  // stage along the path (server dispatch, batcher, lookup, and — through
  // a router — scatter/gather and per-shard RTTs) records spans into its
  // process's obs::Tracer. The client itself records the end-to-end
  // kClientSend span and triggers the slow-request log.

  /// Fraction of requests to trace (0 = off, 1 = all). Sampled per
  /// request with fresh trace ids.
  void set_trace_sampling(double rate) { trace_sampling_ = rate; }
  /// Forces the NEXT request (only) to carry exactly `ctx` — how tests
  /// and `anchor_cli` pin a known trace id.
  void set_next_trace(const obs::TraceContext& ctx) { next_trace_ = ctx; }
  /// The context the most recent request carried (invalid when untraced).
  const obs::TraceContext& last_trace() const { return last_trace_; }

 private:
  /// Sends one frame, reads one reply. Throws RpcError on kError replies,
  /// WireError when the reply type is not `expected`.
  std::vector<std::uint8_t> roundtrip(MsgType request, const WireWriter& body,
                                      MsgType expected);

  TcpStream stream_;
  double trace_sampling_ = 0.0;
  obs::TraceContext next_trace_;
  obs::TraceContext last_trace_;
  std::mt19937_64 sample_rng_{std::random_device{}()};
};

}  // namespace anchor::net
