// Fault injection for the serving data plane — the chaos harness's hooks.
//
// A FaultInjector sits between the server's dispatch loop and its reply
// writes and, with configured probabilities, perturbs the reply the way
// real fleets fail: added latency (a GC pause, a loaded box), a dropped
// reply (a wedged worker that accepted the request), a closed connection
// (an OOM-killed process mid-exchange), or a truncated frame (a crash
// mid-send — the nastiest case, because the prefix looks well-formed).
//
// Faults apply ONLY to data-plane replies (lookups). Control traffic —
// ping probes, stats, shutdown, FAULT_SET itself — stays reliable, so
// the chaos tests can still orchestrate the cluster they are breaking,
// and health probes reflect process liveness rather than injected chaos.
//
// The injector is per-Server (not process-global): an in-process test can
// run a faulty backend and a clean one side by side. It is armed at
// startup (`--fault-inject` / ServerConfig::faults) and reconfigured at
// runtime via the FAULT_SET RPC; an unarmed server refuses FAULT_SET, so
// a production daemon cannot be perturbed remotely by default.
//
// Config text form (also the FAULT_SET payload):
//   delay=P:MS,drop=P,close=P,truncate=P
// each clause optional, P in [0,1]; e.g. "delay=0.2:50,drop=0.05".
// The empty string is the all-zeroes (no-fault) config.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace anchor::net {

struct FaultConfig {
  double delay_prob = 0.0;
  int delay_ms = 0;
  double drop_prob = 0.0;
  double close_prob = 0.0;
  double truncate_prob = 0.0;

  bool any() const {
    return delay_prob > 0.0 || drop_prob > 0.0 || close_prob > 0.0 ||
           truncate_prob > 0.0;
  }

  /// Parses the text form; throws std::runtime_error on malformed clauses
  /// or probabilities outside [0,1]. "" parses to the no-fault config.
  static FaultConfig parse(const std::string& text);
  std::string serialize() const;

  bool operator==(const FaultConfig& o) const;
};

/// The dispatch loop asks `next_action()` once per data-plane reply and
/// acts on the verdict. Delay composes with the others: a reply can be
/// delayed AND THEN dropped/closed/truncated (sleep first), mirroring a
/// slow box that then dies.
class FaultInjector {
 public:
  enum class Action : std::uint8_t {
    kNone = 0,
    kDrop = 1,      // swallow the reply, keep the connection open
    kClose = 2,     // close the connection without replying
    kTruncate = 3,  // send a strict prefix of the frame, then close
  };
  struct Verdict {
    int delay_ms = 0;  // sleep this long before acting (0 = none)
    Action action = Action::kNone;
  };

  explicit FaultInjector(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  void configure(const FaultConfig& config);
  FaultConfig config() const;

  /// Draws the fate of one data-plane reply. Thread-safe, lock-free on
  /// the no-fault fast path.
  Verdict next_action();

  /// How many replies each fault class has perturbed (for the daemon's
  /// metrics endpoint — chaos should be observable too).
  std::uint64_t injected_delays() const { return delays_.load(); }
  std::uint64_t injected_drops() const { return drops_.load(); }
  std::uint64_t injected_closes() const { return closes_.load(); }
  std::uint64_t injected_truncates() const { return truncates_.load(); }

 private:
  double uniform();  // [0,1), caller holds mu_

  mutable std::mutex mu_;
  FaultConfig config_;
  std::atomic<bool> armed_{false};  // fast-path gate: any() of config_
  std::uint64_t rng_state_;
  std::atomic<std::uint64_t> delays_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> closes_{0};
  std::atomic<std::uint64_t> truncates_{0};
};

}  // namespace anchor::net
