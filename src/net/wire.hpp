// Length-prefixed binary wire protocol for the serving front-end.
//
// Every message is one frame: a u32 payload length, then a 4-byte header
// (magic, protocol version, message type, extension length), then
// `ext_len` extension bytes, then a type-specific payload. The extension
// carries the optional TraceContext (17 bytes; see PROTOCOL.md) — peers
// skip extension bytes they do not understand, so tracing rides along
// without perturbing any payload layout. All integers and floats are
// little-endian (x86 native; see PROTOCOL.md for the normative layout). Response payloads reuse the serve-layer
// structs verbatim — a lookup reply IS a serialized serve::LookupResult,
// a promote reply IS a serialized serve::GateReport — so the client
// deserializes straight into the same types in-process callers use.
//
// WireWriter/WireReader are deliberately dumb append/consume cursors:
// bounds are checked on every read and a violation throws WireError, so a
// malformed or truncated frame can never read out of bounds.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "ann/ivf_pq.hpp"
#include "obs/heavy_hitters.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/windowed.hpp"
#include "serve/batcher.hpp"
#include "serve/canary.hpp"
#include "serve/deployment_gate.hpp"
#include "serve/lookup_service.hpp"
#include "serve/serve_stats.hpp"

namespace anchor::net {

class TcpStream;

/// Thrown on malformed frames/payloads (bad magic, truncated field,
/// oversized frame). A connection that produced one is not trustworthy and
/// should be closed.
struct WireError : std::runtime_error {
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

inline constexpr std::uint8_t kWireMagic = 0xA7;
/// v2: CanaryStatus payloads carry the worst-k displacement keys (an
/// insertion before trailing fields — not decodable as v1), CanaryAbort
/// grew an optional drain byte, and the cluster router types 0x0A–0x0D
/// were added.
/// v3: the frame header grew a fourth byte (extension length) so frames
/// can carry an optional TraceContext; StatsSnapshot payloads append the
/// full latency histogram; the METRICS pair 0x0E/0x8E was added. Mixed
/// v2/v3 peers disconnect cleanly on the version byte instead of
/// tripping over the layout mid-payload.
inline constexpr std::uint8_t kWireVersion = 3;
/// Byte size of the TraceContext frame extension (u64 trace id, u64 span
/// id, u8 flags). An ext_len ≥ this carries a trace; extension bytes
/// beyond the first 17 are skipped (room for future extensions within
/// v3).
inline constexpr std::uint8_t kTraceExtBytes = 17;
/// Frames above this are rejected before allocation — a garbage length
/// prefix must not become a multi-gigabyte resize.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 26;  // 64 MiB

enum class MsgType : std::uint8_t {
  // Requests.
  kLookupIds = 0x01,
  kLookupWords = 0x02,
  kTryPromote = 0x03,
  kStats = 0x04,
  kPing = 0x05,
  kShutdown = 0x06,
  kCanaryStart = 0x07,
  kCanaryStatus = 0x08,
  kCanaryAbort = 0x09,
  // Cluster-router requests (answered by anchor_router; a plain backend
  // answers them with an Error frame like any unknown type).
  kRolloutStart = 0x0A,
  kRolloutStatus = 0x0B,
  kRolloutAbort = 0x0C,
  kShardMap = 0x0D,
  // Answered by daemon AND router: a MetricsReport of the process's
  // metrics registry.
  kMetrics = 0x0E,
  // Installs (or clears, with an empty spec) a fault-injection config on
  // the receiving backend at runtime — the chaos harness's control knob.
  // Only honored when the daemon was started with --fault-inject (arming
  // the subsystem); otherwise answered with an Error frame.
  kFaultSet = 0x0F,
  // Approximate top-k search against the live IVF-PQ index (answered by
  // daemon AND router; the router fans a candidates-mode request out to
  // every shard and merges). Added in protocol v3 as a new type pair —
  // v3 peers that predate it answer with an Error frame, which clients
  // surface as "TOPK unsupported" rather than a protocol failure.
  kTopK = 0x10,
  // Load & drift telemetry snapshot (answered by daemon AND router): a
  // HeatReport of windowed request stats, the heavy-hitter key sketch,
  // and the per-range heat map. The router fans the request out to every
  // live replica of every shard and merges — replica data adds within a
  // shard, shard data is lifted into global id space and concatenated.
  // Added within protocol v3 as a new type pair, same compatibility
  // stance as TOPK: older peers answer with an Error frame, which
  // clients surface as "HEAT unsupported".
  kHeat = 0x11,
  // Responses: request type | 0x80.
  kLookupIdsReply = 0x81,
  kLookupWordsReply = 0x82,
  kTryPromoteReply = 0x83,
  kStatsReply = 0x84,
  kPong = 0x85,
  kShutdownReply = 0x86,
  kCanaryStartReply = 0x87,
  kCanaryStatusReply = 0x88,
  kCanaryAbortReply = 0x89,
  kRolloutStartReply = 0x8A,
  kRolloutStatusReply = 0x8B,
  kRolloutAbortReply = 0x8C,
  kShardMapReply = 0x8D,
  kMetricsReply = 0x8E,
  kFaultSetReply = 0x8F,
  kTopKReply = 0x90,
  kHeatReply = 0x91,
  // Carries a string; sent instead of the normal reply when the server
  // failed to serve the request (e.g. unknown candidate version).
  kError = 0x7F,
};

/// Append-only payload builder.
class WireWriter {
 public:
  /// Pre-size the buffer when the payload size is known — saves the
  /// growth reallocations on large frames.
  void reserve(std::size_t bytes) { buf_.reserve(bytes); }
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { raw(&v, sizeof(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void f32(float v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void f32s(const float* data, std::size_t n) { raw(data, n * sizeof(float)); }
  void bytes(const std::uint8_t* data, std::size_t n) { raw(data, n); }

  const std::vector<std::uint8_t>& buffer() const { return buf_; }

 private:
  // resize+memcpy rather than insert: identical behavior, but GCC 12's
  // -Wstringop-overflow false-fires on the inlined insert-into-empty-
  // vector memmove in some TUs.
  void raw(const void* p, std::size_t n) {
    const std::size_t old = buf_.size();
    buf_.resize(old + n);
    std::memcpy(buf_.data() + old, p, n);
  }
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked payload consumer over a received frame.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& payload)
      : WireReader(payload.data(), payload.size()) {}

  std::uint8_t u8() { return take<std::uint8_t>(); }
  std::uint16_t u16() { return take<std::uint16_t>(); }
  std::uint32_t u32() { return take<std::uint32_t>(); }
  std::uint64_t u64() { return take<std::uint64_t>(); }
  float f32() { return take<float>(); }
  double f64() { return take<double>(); }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  void f32s(float* out, std::size_t n) {
    need(n * sizeof(float));
    std::memcpy(out, data_ + pos_, n * sizeof(float));
    pos_ += n * sizeof(float);
  }
  void bytes(std::uint8_t* out, std::size_t n) {
    need(n);
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  std::size_t remaining() const { return size_ - pos_; }
  /// Call after decoding a payload: trailing bytes mean the peer and we
  /// disagree about the layout, which should fail loudly, not silently.
  void expect_done() const {
    if (pos_ != size_) {
      throw WireError("trailing bytes in payload: " +
                      std::to_string(size_ - pos_));
    }
  }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n) throw WireError("truncated payload");
  }
  template <typename T>
  T take() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---- frame I/O ---------------------------------------------------------

/// Builds one complete frame (length prefix + header + optional trace
/// extension + payload) as a contiguous buffer. write_frame sends exactly
/// this; it is exposed so the fault injector can send a deliberately
/// truncated prefix of a well-formed frame.
std::vector<std::uint8_t> encode_frame(MsgType type, const WireWriter& payload,
                                       const obs::TraceContext& trace);

/// Writes one frame (length prefix + header + payload) in a single send.
/// When `trace` is valid, it rides in the frame extension.
void write_frame(TcpStream& stream, MsgType type, const WireWriter& payload,
                 const obs::TraceContext& trace);
void write_frame(TcpStream& stream, MsgType type, const WireWriter& payload);

/// Reads one frame. Returns false on clean EOF before a frame starts.
/// Throws WireError on bad magic/version/length or an extension length
/// exceeding the frame, NetError on socket failures or EOF mid-frame.
/// When `trace` is non-null it receives the frame's TraceContext (a
/// zeroed context when the frame carried none).
bool read_frame(TcpStream& stream, MsgType* type,
                std::vector<std::uint8_t>* payload,
                obs::TraceContext* trace = nullptr);

// ---- payload codecs (shared by Client and Server) ----------------------

void encode_lookup_result(const serve::LookupResult& result, WireWriter* w);
/// Encodes rows [first, first+count) of `result` in the same layout —
/// what the server uses to answer from a batcher ResultSlice without
/// materializing a per-caller LookupResult.
void encode_lookup_result_slice(const serve::LookupResult& result,
                                std::size_t first, std::size_t count,
                                WireWriter* w);
/// Same layout, straight from a batcher slice (empty slices with no
/// backing batch encode as a zero-row result).
void encode_result_slice(const serve::ResultSlice& slice, WireWriter* w);
serve::LookupResult decode_lookup_result(WireReader* r);

void encode_gate_report(const serve::GateReport& report, WireWriter* w);
serve::GateReport decode_gate_report(WireReader* r);

/// Sparse histogram codec: aggregates, then {bucket index, count} pairs
/// for the nonzero buckets only — a latency histogram with a handful of
/// hot buckets costs tens of bytes, not kNumBuckets · 8.
void encode_histogram(const obs::HistogramSnapshot& h, WireWriter* w);
obs::HistogramSnapshot decode_histogram(WireReader* r);

void encode_stats_snapshot(const serve::StatsSnapshot& s, WireWriter* w);
serve::StatsSnapshot decode_stats_snapshot(WireReader* r);

void encode_metrics_report(const obs::MetricsReport& m, WireWriter* w);
obs::MetricsReport decode_metrics_report(WireReader* r);

/// Stats reply payload: what the daemon reports about itself.
struct ServerStatsReport {
  std::string live_version;
  /// Row encoding of the live snapshot — "fp32", "int8", "pq:4x8", … (the
  /// EmbeddingSnapshot::encoding() string; the router reports "mixed" while
  /// shards disagree). Optional TRAILING wire field: a v3 peer's reply
  /// simply omits it and decodes here as "", so new readers accept old
  /// replies unchanged (old readers reject the longer v4 payload — see
  /// PROTOCOL.md's compatibility note).
  std::string encoding;
  /// Underlying LookupService counters (per executed batch).
  serve::StatsSnapshot service;
  /// Batcher counters: one record per *coalesced* batch, latency measured
  /// from the oldest waiter's enqueue — the client-observed view.
  serve::StatsSnapshot batcher;
};

void encode_server_stats(const ServerStatsReport& s, WireWriter* w);
ServerStatsReport decode_server_stats(WireReader* r);

/// Canary reply payload (all three canary RPCs answer with this): the
/// state machine position, the participating versions, the phase-1
/// offline report, and the live online measurements.
struct CanaryStatusReport {
  serve::CanaryState state = serve::CanaryState::kNone;
  std::string incumbent;
  std::string candidate;
  double fraction = 0.0;
  double shadow_rate = 0.0;
  serve::GateReport offline;      // zero-valued when state == kNone
  serve::CanaryStatsSnapshot online;
  std::string reason;             // terminal decision reason ("" otherwise)
};

void encode_canary_stats(const serve::CanaryStatsSnapshot& s, WireWriter* w);
serve::CanaryStatsSnapshot decode_canary_stats(WireReader* r);

void encode_canary_status(const CanaryStatusReport& s, WireWriter* w);
CanaryStatusReport decode_canary_status(WireReader* r);

// ---- cluster rollout ----------------------------------------------------
// Plain-type mirrors of the cluster router's rollout state machine. They
// live here (not in src/cluster/) because they ARE the wire contract: the
// client decodes them without linking any cluster code, and cluster/
// already depends on net/.

enum class RolloutState : std::uint8_t {
  kIdle = 0,        // no rollout ever started
  kRunning = 1,     // walking the shards
  kCompleted = 2,   // every shard promoted the candidate
  kRolledBack = 3,  // a shard refused; promoted shards were rolled back
  kAborted = 4,     // operator abort; promoted shards were rolled back
};

enum class ShardRolloutState : std::uint8_t {
  kPending = 0,     // not reached yet
  kInProgress = 1,  // gated promote / canary running on this shard
  kPromoted = 2,    // candidate live on this shard
  kFailed = 3,      // gate rejected, canary rolled back, or shard down
  kRolledBack = 4,  // was promoted, then reverted by the rollout
};

std::string rollout_state_name(RolloutState s);
std::string shard_rollout_state_name(ShardRolloutState s);

/// Reply payload of ROLLOUT_START / ROLLOUT_STATUS / ROLLOUT_ABORT.
struct ShardRolloutStatus {
  ShardRolloutState state = ShardRolloutState::kPending;
  std::string detail;  // per-shard decision reason / error text
};

struct RolloutStatusReport {
  RolloutState state = RolloutState::kIdle;
  std::string candidate;
  /// 0 = offline gated promote per shard, 1 = full canary per shard.
  std::uint8_t mode = 0;
  /// ShardMap::version() the rollout was started against.
  std::uint64_t map_version = 0;
  std::vector<ShardRolloutStatus> shards;
  std::string reason;  // terminal summary ("" while running/idle)

  bool terminal() const {
    return state == RolloutState::kCompleted ||
           state == RolloutState::kRolledBack ||
           state == RolloutState::kAborted;
  }
};

void encode_rollout_status(const RolloutStatusReport& s, WireWriter* w);
RolloutStatusReport decode_rollout_status(WireReader* r);

// ---- approximate top-k search (TOPK) ------------------------------------

/// mode — what the server returns:
///   kTopKModeFinal: the k best hits by (exact distance, id) — what end
///     clients want.
///   kTopKModeCandidates: the full ADC shortlist sorted by (adc, id), ids
///     still local to the shard — what the cluster router requests from
///     each shard so its merge can reconstruct the single-process
///     selection exactly (see cluster/cluster_client.hpp).
inline constexpr std::uint8_t kTopKModeFinal = 0;
inline constexpr std::uint8_t kTopKModeCandidates = 1;

/// kind — how the query vector is specified:
///   kTopKKindId / kTopKKindWord resolve a live-store row through the
///   server's batcher (coalescing with concurrent lookups) and search for
///   its neighbors; kTopKKindVector carries a raw float vector (what the
///   router sends shards after resolving the query itself).
inline constexpr std::uint8_t kTopKKindId = 0;
inline constexpr std::uint8_t kTopKKindWord = 1;
inline constexpr std::uint8_t kTopKKindVector = 2;

struct TopKRequest {
  std::uint32_t k = 10;
  std::uint32_t nprobe = 0;  // 0 = server-side default
  std::uint32_t rerank = 0;  // 0 = server-side default
  std::uint8_t mode = kTopKModeFinal;
  std::uint8_t kind = kTopKKindId;
  std::uint64_t id = 0;       // kTopKKindId
  std::string word;           // kTopKKindWord
  std::vector<float> vector;  // kTopKKindVector
};

void encode_topk_request(const TopKRequest& req, WireWriter* w);
TopKRequest decode_topk_request(WireReader* r);

/// The reply IS a serialized ann::TopKResult, same pattern as lookups.
void encode_topk_result(const ann::TopKResult& result, WireWriter* w);
ann::TopKResult decode_topk_result(WireReader* r);

// ---- load & drift telemetry (HEAT) --------------------------------------

/// HEAT reply payload: the process's windowed request stats, heavy-hitter
/// key sketch, and per-range heat map, all as mergeable snapshots (the
/// router merges them exactly like the client would, bit-identically).
/// Backends report keys/ranges in LOCAL row-id space; ClusterClient::heat
/// shifts each shard's view by its global row_begin before merging.
struct HeatReport {
  obs::WindowedSnapshot windowed;
  obs::SketchSnapshot sketch;
  obs::HeatMapSnapshot heat;
};

void encode_windowed_snapshot(const obs::WindowedSnapshot& w, WireWriter* out);
obs::WindowedSnapshot decode_windowed_snapshot(WireReader* r);

void encode_sketch_snapshot(const obs::SketchSnapshot& s, WireWriter* out);
obs::SketchSnapshot decode_sketch_snapshot(WireReader* r);

void encode_heat_map(const obs::HeatMapSnapshot& h, WireWriter* out);
obs::HeatMapSnapshot decode_heat_map(WireReader* r);

void encode_heat_report(const HeatReport& h, WireWriter* out);
HeatReport decode_heat_report(WireReader* r);

}  // namespace anchor::net
