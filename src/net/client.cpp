#include "net/client.hpp"

namespace anchor::net {

Client::Client(const std::string& host, std::uint16_t port,
               int rpc_timeout_ms)
    : stream_(TcpStream::connect(host, port)) {
  if (rpc_timeout_ms > 0) stream_.set_io_timeout(rpc_timeout_ms);
}

std::vector<std::uint8_t> Client::roundtrip(MsgType request,
                                            const WireWriter& body,
                                            MsgType expected) {
  // Attach a trace context: a pinned one (set_next_trace, consumed here)
  // wins over the sampling draw.
  obs::TraceContext ctx = next_trace_;
  next_trace_ = obs::TraceContext{};
  if (!ctx.valid() && trace_sampling_ > 0.0) {
    std::uniform_real_distribution<double> u(0.0, 1.0);
    if (u(sample_rng_) < trace_sampling_) ctx = obs::TraceContext::start();
  }
  last_trace_ = ctx;

  const std::uint64_t start_ns = obs::Tracer::now_ns();
  write_frame(stream_, request, body, ctx);
  MsgType type{};
  std::vector<std::uint8_t> payload;
  if (!read_frame(stream_, &type, &payload)) {
    throw NetError("server closed the connection");
  }
  if (ctx.sampled()) {
    const std::uint64_t end_ns = obs::Tracer::now_ns();
    obs::Tracer::instance().record(ctx, obs::TraceStage::kClientSend,
                                   start_ns, end_ns);
    obs::Tracer::instance().finish_request(ctx, start_ns, end_ns);
  }
  if (type == MsgType::kError) {
    WireReader reader(payload);
    throw RpcError(reader.str());
  }
  if (type != expected) {
    throw WireError("unexpected reply type " +
                    std::to_string(static_cast<int>(type)));
  }
  return payload;
}

serve::LookupResult Client::lookup_ids(const std::vector<std::size_t>& ids) {
  WireWriter body;
  body.u32(static_cast<std::uint32_t>(ids.size()));
  for (const std::size_t id : ids) body.u64(id);
  const auto payload =
      roundtrip(MsgType::kLookupIds, body, MsgType::kLookupIdsReply);
  WireReader reader(payload);
  serve::LookupResult result = decode_lookup_result(&reader);
  reader.expect_done();
  return result;
}

serve::LookupResult Client::lookup_words(
    const std::vector<std::string>& words) {
  WireWriter body;
  body.u32(static_cast<std::uint32_t>(words.size()));
  for (const std::string& word : words) body.str(word);
  const auto payload =
      roundtrip(MsgType::kLookupWords, body, MsgType::kLookupWordsReply);
  WireReader reader(payload);
  serve::LookupResult result = decode_lookup_result(&reader);
  reader.expect_done();
  return result;
}

serve::LookupResult Client::lookup_id(std::size_t id) {
  return lookup_ids({id});
}

serve::LookupResult Client::lookup_word(const std::string& word) {
  return lookup_words({word});
}

ann::TopKResult Client::topk(const TopKRequest& req) {
  WireWriter body;
  encode_topk_request(req, &body);
  const auto payload = roundtrip(MsgType::kTopK, body, MsgType::kTopKReply);
  WireReader reader(payload);
  ann::TopKResult result = decode_topk_result(&reader);
  reader.expect_done();
  return result;
}

ann::TopKResult Client::topk_id(std::uint64_t id, std::size_t k,
                                std::size_t nprobe, std::size_t rerank) {
  TopKRequest req;
  req.kind = kTopKKindId;
  req.id = id;
  req.k = static_cast<std::uint32_t>(k);
  req.nprobe = static_cast<std::uint32_t>(nprobe);
  req.rerank = static_cast<std::uint32_t>(rerank);
  return topk(req);
}

ann::TopKResult Client::topk_word(const std::string& word, std::size_t k,
                                  std::size_t nprobe, std::size_t rerank) {
  TopKRequest req;
  req.kind = kTopKKindWord;
  req.word = word;
  req.k = static_cast<std::uint32_t>(k);
  req.nprobe = static_cast<std::uint32_t>(nprobe);
  req.rerank = static_cast<std::uint32_t>(rerank);
  return topk(req);
}

ann::TopKResult Client::topk_vector(const std::vector<float>& query,
                                    std::size_t k, std::size_t nprobe,
                                    std::size_t rerank) {
  TopKRequest req;
  req.kind = kTopKKindVector;
  req.vector = query;
  req.k = static_cast<std::uint32_t>(k);
  req.nprobe = static_cast<std::uint32_t>(nprobe);
  req.rerank = static_cast<std::uint32_t>(rerank);
  return topk(req);
}

serve::GateReport Client::try_promote(const std::string& candidate,
                                      bool force) {
  WireWriter body;
  body.str(candidate);
  body.u8(force ? 1 : 0);
  const auto payload =
      roundtrip(MsgType::kTryPromote, body, MsgType::kTryPromoteReply);
  WireReader reader(payload);
  serve::GateReport report = decode_gate_report(&reader);
  reader.expect_done();
  return report;
}

CanaryStatusReport Client::canary_start(const std::string& candidate,
                                        double fraction,
                                        double shadow_rate) {
  WireWriter body;
  body.str(candidate);
  body.f64(fraction);
  body.f64(shadow_rate);
  const auto payload =
      roundtrip(MsgType::kCanaryStart, body, MsgType::kCanaryStartReply);
  WireReader reader(payload);
  CanaryStatusReport report = decode_canary_status(&reader);
  reader.expect_done();
  return report;
}

CanaryStatusReport Client::canary_status() {
  const auto payload = roundtrip(MsgType::kCanaryStatus, WireWriter(),
                                 MsgType::kCanaryStatusReply);
  WireReader reader(payload);
  CanaryStatusReport report = decode_canary_status(&reader);
  reader.expect_done();
  return report;
}

CanaryStatusReport Client::canary_abort(bool drain) {
  WireWriter body;
  body.u8(drain ? 1 : 0);
  const auto payload =
      roundtrip(MsgType::kCanaryAbort, body, MsgType::kCanaryAbortReply);
  WireReader reader(payload);
  CanaryStatusReport report = decode_canary_status(&reader);
  reader.expect_done();
  return report;
}

RolloutStatusReport Client::rollout_start(const std::string& candidate,
                                          std::uint8_t mode, double fraction,
                                          double shadow_rate) {
  WireWriter body;
  body.str(candidate);
  body.u8(mode);
  body.f64(fraction);
  body.f64(shadow_rate);
  const auto payload =
      roundtrip(MsgType::kRolloutStart, body, MsgType::kRolloutStartReply);
  WireReader reader(payload);
  RolloutStatusReport report = decode_rollout_status(&reader);
  reader.expect_done();
  return report;
}

RolloutStatusReport Client::rollout_status() {
  const auto payload = roundtrip(MsgType::kRolloutStatus, WireWriter(),
                                 MsgType::kRolloutStatusReply);
  WireReader reader(payload);
  RolloutStatusReport report = decode_rollout_status(&reader);
  reader.expect_done();
  return report;
}

RolloutStatusReport Client::rollout_abort(bool drain) {
  WireWriter body;
  body.u8(drain ? 1 : 0);
  const auto payload =
      roundtrip(MsgType::kRolloutAbort, body, MsgType::kRolloutAbortReply);
  WireReader reader(payload);
  RolloutStatusReport report = decode_rollout_status(&reader);
  reader.expect_done();
  return report;
}

std::string Client::shard_map() {
  const auto payload =
      roundtrip(MsgType::kShardMap, WireWriter(), MsgType::kShardMapReply);
  WireReader reader(payload);
  std::string map = reader.str();
  reader.expect_done();
  return map;
}

std::string Client::fault_set(const std::string& spec) {
  WireWriter body;
  body.str(spec);
  const auto payload =
      roundtrip(MsgType::kFaultSet, body, MsgType::kFaultSetReply);
  WireReader reader(payload);
  std::string echoed = reader.str();
  reader.expect_done();
  return echoed;
}

ServerStatsReport Client::stats() {
  const auto payload =
      roundtrip(MsgType::kStats, WireWriter(), MsgType::kStatsReply);
  WireReader reader(payload);
  ServerStatsReport report = decode_server_stats(&reader);
  reader.expect_done();
  return report;
}

HeatReport Client::heat() {
  const auto payload =
      roundtrip(MsgType::kHeat, WireWriter(), MsgType::kHeatReply);
  WireReader reader(payload);
  HeatReport report = decode_heat_report(&reader);
  reader.expect_done();
  return report;
}

obs::MetricsReport Client::metrics() {
  const auto payload =
      roundtrip(MsgType::kMetrics, WireWriter(), MsgType::kMetricsReply);
  WireReader reader(payload);
  obs::MetricsReport report = decode_metrics_report(&reader);
  reader.expect_done();
  return report;
}

void Client::ping() {
  roundtrip(MsgType::kPing, WireWriter(), MsgType::kPong);
}

void Client::shutdown_server() {
  roundtrip(MsgType::kShutdown, WireWriter(), MsgType::kShutdownReply);
}

}  // namespace anchor::net
