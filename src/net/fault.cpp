#include "net/fault.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

namespace anchor::net {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= s.size()) {
    std::size_t end = s.find(sep, begin);
    if (end == std::string::npos) end = s.size();
    out.push_back(s.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

double parse_prob(const std::string& token, const std::string& clause) {
  std::size_t used = 0;
  double p = 0.0;
  try {
    p = std::stod(token, &used);
  } catch (const std::exception&) {
    throw std::runtime_error("FaultConfig: bad probability in '" + clause +
                             "'");
  }
  if (used != token.size() || p < 0.0 || p > 1.0) {
    throw std::runtime_error(
        "FaultConfig: probability must be in [0,1] in '" + clause + "'");
  }
  return p;
}

int parse_ms(const std::string& token, const std::string& clause) {
  if (token.empty() ||
      token.find_first_not_of("0123456789") != std::string::npos) {
    throw std::runtime_error("FaultConfig: bad delay ms in '" + clause + "'");
  }
  const long ms = std::stol(token);
  if (ms > 60'000) {
    throw std::runtime_error(
        "FaultConfig: delay above 60s is a hang, not a fault: '" + clause +
        "'");
  }
  return static_cast<int>(ms);
}

}  // namespace

FaultConfig FaultConfig::parse(const std::string& text) {
  FaultConfig config;
  if (text.empty()) return config;
  for (const std::string& clause : split(text, ',')) {
    if (clause.empty()) continue;
    const std::size_t eq = clause.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("FaultConfig: clause needs key=value: '" +
                               clause + "'");
    }
    const std::string key = clause.substr(0, eq);
    const std::string value = clause.substr(eq + 1);
    if (key == "delay") {
      // delay=P:MS — both halves required; a delay with no duration (or a
      // duration with no probability) is a config typo worth rejecting.
      const std::vector<std::string> f = split(value, ':');
      if (f.size() != 2) {
        throw std::runtime_error("FaultConfig: delay needs P:MS, got '" +
                                 clause + "'");
      }
      config.delay_prob = parse_prob(f[0], clause);
      config.delay_ms = parse_ms(f[1], clause);
    } else if (key == "drop") {
      config.drop_prob = parse_prob(value, clause);
    } else if (key == "close") {
      config.close_prob = parse_prob(value, clause);
    } else if (key == "truncate") {
      config.truncate_prob = parse_prob(value, clause);
    } else {
      throw std::runtime_error("FaultConfig: unknown fault '" + key +
                               "' (want delay/drop/close/truncate)");
    }
  }
  return config;
}

std::string FaultConfig::serialize() const {
  std::ostringstream os;
  const char* sep = "";
  if (delay_prob > 0.0) {
    os << sep << "delay=" << delay_prob << ":" << delay_ms;
    sep = ",";
  }
  if (drop_prob > 0.0) {
    os << sep << "drop=" << drop_prob;
    sep = ",";
  }
  if (close_prob > 0.0) {
    os << sep << "close=" << close_prob;
    sep = ",";
  }
  if (truncate_prob > 0.0) {
    os << sep << "truncate=" << truncate_prob;
  }
  return os.str();
}

bool FaultConfig::operator==(const FaultConfig& o) const {
  return delay_prob == o.delay_prob && delay_ms == o.delay_ms &&
         drop_prob == o.drop_prob && close_prob == o.close_prob &&
         truncate_prob == o.truncate_prob;
}

FaultInjector::FaultInjector(std::uint64_t seed) : rng_state_(seed | 1) {}

void FaultInjector::configure(const FaultConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
  armed_.store(config.any(), std::memory_order_release);
}

FaultConfig FaultInjector::config() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_;
}

double FaultInjector::uniform() {
  // splitmix64: deterministic per seed, so a seeded chaos run replays.
  rng_state_ += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = rng_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) / 9007199254740992.0;
}

FaultInjector::Verdict FaultInjector::next_action() {
  Verdict v;
  if (!armed_.load(std::memory_order_acquire)) return v;
  std::lock_guard<std::mutex> lock(mu_);
  if (config_.delay_prob > 0.0 && uniform() < config_.delay_prob) {
    v.delay_ms = config_.delay_ms;
    delays_.fetch_add(1, std::memory_order_relaxed);
  }
  // Terminal faults are mutually exclusive; drawn in fixed order so the
  // configured probabilities are each clause's marginal chance given the
  // earlier clauses passed (documented in PROTOCOL.md).
  if (config_.drop_prob > 0.0 && uniform() < config_.drop_prob) {
    v.action = Action::kDrop;
    drops_.fetch_add(1, std::memory_order_relaxed);
  } else if (config_.close_prob > 0.0 && uniform() < config_.close_prob) {
    v.action = Action::kClose;
    closes_.fetch_add(1, std::memory_order_relaxed);
  } else if (config_.truncate_prob > 0.0 &&
             uniform() < config_.truncate_prob) {
    v.action = Action::kTruncate;
    truncates_.fetch_add(1, std::memory_order_relaxed);
  }
  return v;
}

}  // namespace anchor::net
