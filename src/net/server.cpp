#include "net/server.hpp"

#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

#include "net/wire.hpp"

namespace anchor::net {

Server::Server(serve::EmbeddingStore& store, ServerConfig config)
    : store_(store),
      config_(config),
      service_stats_(std::make_shared<serve::ServeStats>()),
      batcher_stats_(std::make_shared<serve::ServeStats>()),
      windowed_(config.windowed),
      batch_windowed_(config.windowed),
      load_([&]() -> std::unique_ptr<obs::KeyLoadRecorder> {
        if (config.hot_key_capacity == 0) return nullptr;
        obs::SpaceSavingSketch::Config sketch;
        sketch.capacity = config.hot_key_capacity;
        obs::RangeHeatMap::Config heat;
        heat.row_begin = 0;
        const serve::SnapshotPtr live = store.live();
        heat.row_end = live ? live->vocab_size() : 0;
        heat.buckets = config.heat_buckets != 0 ? config.heat_buckets : 1;
        return std::make_unique<obs::KeyLoadRecorder>(sketch, heat);
      }()),
      slo_(config.slo),
      // The services get pointers into the recorders above, which is why
      // those are declared (and therefore constructed) first.
      service_(store,
               [&] {
                 serve::LookupConfig lc = config.lookup;
                 lc.load = load_.get();
                 return lc;
               }(),
               service_stats_),
      async_(service_,
             [&] {
               serve::BatcherConfig bc = config.batcher;
               bc.windowed = &batch_windowed_;
               return bc;
             }(),
             batcher_stats_),
      gate_(config.gate),
      listener_(TcpListener::bind_loopback(config.port)),
      faults_(config.fault_seed) {
  if (config_.fault_inject) faults_.configure(config_.faults);
  if (config_.ann_enable) {
    ann_ = std::make_unique<ann::AnnService>(store_, config_.ann);
  }
  // Pin the drift reference against whatever is live now; one immediate
  // run seeds the gauges at their no-drift baseline.
  drift_ = std::make_unique<obs::DriftProbe>(store_, config_.drift);
  register_metrics();
  drift_->register_metrics(metrics_);
  drift_->run_once();
  drift_->start();
}

HeatReport Server::heat_report() {
  // The RPC-level window only: batch_windowed_ counts coalesced *keys*,
  // a different unit, and is exported via Prometheus instead of merged
  // into the fleet's request-rate view.
  HeatReport report;
  report.windowed = windowed_.snapshot();
  if (load_ != nullptr) {
    report.sketch = load_->sketch.snapshot();
    report.heat = load_->heat.snapshot();
  }
  return report;
}

void Server::register_metrics() {
  // Counter/gauge values are bridged at snapshot time from the serve
  // layer's own atomics (no double counting, no hot-path changes); the
  // latency histograms are live LogHistogram snapshots, so the exported
  // _bucket series merge exactly across processes.
  metrics_.register_histogram(
      "anchor_service_latency_us",
      "Per executed lookup batch latency (LookupService view)",
      [this] { return service_stats_->latency_histogram(); });
  metrics_.register_histogram(
      "anchor_batcher_latency_us",
      "Per coalesced batch latency, oldest enqueue to scatter "
      "(client-observed view)",
      [this] { return batcher_stats_->latency_histogram(); });
  if (ann_) {
    metrics_.register_histogram(
        "anchor_topk_latency_us",
        "IVF-PQ search latency per TOPK request (probe+ADC+re-rank)",
        [this] { return topk_latency_us_.snapshot(); });
    metrics_.register_histogram(
        "anchor_topk_cells_probed",
        "Coarse cells probed per TOPK request",
        [this] { return topk_cells_probed_.snapshot(); });
    metrics_.register_histogram(
        "anchor_topk_shortlist_size",
        "ADC shortlist size re-ranked exactly per TOPK request",
        [this] { return topk_shortlist_.snapshot(); });
  }
  // Remembers the previously exported version label so a hot swap zeroes
  // the stale series instead of leaving two versions claiming live.
  auto last_version = std::make_shared<std::string>();
  auto last_encoding = std::make_shared<std::string>();
  metrics_.on_collect([this, last_version,
                       last_encoding](obs::MetricsRegistry& reg) {
    const serve::StatsSnapshot service = service_stats_->snapshot();
    const serve::StatsSnapshot batcher = batcher_stats_->snapshot();
    reg.counter("anchor_lookup_requests_total",
                "Vectors served (client-observed, batcher view)")
        .set(batcher.lookups);
    reg.counter("anchor_batches_total", "Coalesced batches executed")
        .set(batcher.batches);
    reg.counter("anchor_service_lookups_total",
                "Vectors served by the underlying LookupService "
                "(canary traffic included)")
        .set(service.lookups);
    reg.counter("anchor_cache_hits_total", "Hot-row cache hits")
        .set(service.cache_hits);
    reg.counter("anchor_cache_misses_total", "Hot-row cache misses")
        .set(service.cache_misses);
    reg.counter("anchor_oov_fallbacks_total",
                "Lookups answered via subword synthesis")
        .set(service.oov_fallbacks);
    reg.gauge("anchor_batch_occupancy",
              "Mean keys per coalesced batch since start/reset")
        .set(batcher.batches > 0
                 ? static_cast<double>(batcher.lookups) /
                       static_cast<double>(batcher.batches)
                 : 0.0);
    reg.gauge("anchor_batcher_pending", "Requests queued, not yet flushed")
        .set(static_cast<double>(async_.pending()));
    reg.counter("anchor_trace_spans_total",
                "Trace spans recorded into this process's span ring")
        .set(obs::Tracer::instance().spans_recorded());
    if (ann_) {
      reg.counter("anchor_topk_requests_total",
                  "TOPK searches served against the live IVF-PQ index")
          .set(topk_requests_.load(std::memory_order_relaxed));
      reg.counter("anchor_topk_index_builds_total",
                  "IVF-PQ index builds (one per snapshot version served)")
          .set(ann_->builds());
    }
    const std::string version = store_.live_version();
    if (!version.empty()) {
      const std::string name = "anchor_live_version_info{version=\"" +
                               obs::escape_label_value(version) + "\"}";
      if (*last_version != name) {
        if (!last_version->empty()) {
          reg.gauge(*last_version, "Live embedding version (1 = live)")
              .set(0.0);
        }
        *last_version = name;
      }
      reg.gauge(name, "Live embedding version (1 = live)").set(1.0);
    }
    // Row-encoding identity + resident footprint: the capacity story. The
    // label swap mirrors anchor_live_version_info so a rollout to a
    // differently-encoded snapshot zeroes the stale series.
    if (const serve::SnapshotPtr live = store_.live()) {
      const std::string enc_name =
          "anchor_snapshot_encoding_info{encoding=\"" +
          obs::escape_label_value(live->encoding()) + "\"}";
      if (*last_encoding != enc_name) {
        if (!last_encoding->empty()) {
          reg.gauge(*last_encoding,
                    "Live snapshot row encoding (1 = active)")
              .set(0.0);
        }
        *last_encoding = enc_name;
      }
      reg.gauge(enc_name, "Live snapshot row encoding (1 = active)").set(1.0);
    }
    reg.gauge("anchor_store_memory_bytes",
              "Resident bytes across all registered snapshot versions "
              "(row storage + PQ codebooks + OOV tables)")
        .set(static_cast<double>(store_.total_memory_bytes()));
    const CanaryStatusReport canary = canary_status_report();
    reg.gauge("anchor_canary_state",
              "CanaryState enum value (0 none, 1 offline-rejected, "
              "2 running, 3 promoted, 4 rolled-back, 5 aborted)")
        .set(static_cast<double>(canary.state));
    reg.counter("anchor_canary_shadows_total",
                "Shadow lookups scored by the current/last canary")
        .set(canary.online.shadows);
    // Chaos must be observable too: how many replies each injected fault
    // class has perturbed (all zero on an unarmed server).
    reg.counter("anchor_fault_injected_total{fault=\"delay\"}",
                "Replies delayed by the fault injector")
        .set(faults_.injected_delays());
    reg.counter("anchor_fault_injected_total{fault=\"drop\"}",
                "Replies swallowed by the fault injector")
        .set(faults_.injected_drops());
    reg.counter("anchor_fault_injected_total{fault=\"close\"}",
                "Connections closed by the fault injector")
        .set(faults_.injected_closes());
    reg.counter("anchor_fault_injected_total{fault=\"truncate\"}",
                "Replies truncated mid-frame by the fault injector")
        .set(faults_.injected_truncates());
  });
  // The windowed plane: rolling rates, SLO burn, heavy hitters, heat.
  // Top-key series are rank-labeled with the key id as a second label;
  // when a rank's id changes between scrapes the stale series is zeroed,
  // the same discipline as the live-version info gauge.
  auto last_top = std::make_shared<std::vector<std::string>>();
  metrics_.on_collect([this, last_top](obs::MetricsRegistry& reg) {
    const obs::WindowedSnapshot w = windowed_.snapshot();
    reg.gauge("anchor_window_qps_10s", "RPC requests/s over the last 10 s")
        .set(w.qps(10'000'000ull));
    reg.gauge("anchor_window_qps_1m", "RPC requests/s over the last 60 s")
        .set(w.qps(60'000'000ull));
    reg.gauge("anchor_window_error_rate_1m",
              "RPC error fraction over the last 60 s")
        .set(w.error_rate(60'000'000ull));
    reg.gauge("anchor_window_p99_us_1m",
              "RPC p99 latency (µs) over the last 60 s")
        .set(w.latency_in(60'000'000ull).quantile(0.99));
    const obs::WindowedSnapshot bw = batch_windowed_.snapshot();
    reg.gauge("anchor_batcher_window_keys_per_s_1m",
              "Coalesced lookup keys/s over the last 60 s")
        .set(bw.qps(60'000'000ull));
    const obs::SloState slo = slo_.evaluate(w);
    reg.gauge("anchor_slo_burn_short",
              "SLO burn rate over the short window (1.0 = exactly on "
              "budget)")
        .set(slo.short_burn);
    reg.gauge("anchor_slo_burn_long", "SLO burn rate over the long window")
        .set(slo.long_burn);
    reg.gauge("anchor_slo_alert_state",
              "Multi-window burn-rate alert (0 ok, 1 warn, 2 page)")
        .set(static_cast<double>(slo.alert));
    if (load_ != nullptr) {
      const obs::SketchSnapshot sketch = load_->sketch.snapshot();
      reg.counter("anchor_key_load_records_total",
                  "Key occurrences offered to the heavy-hitter sketch")
          .set(sketch.total);
      constexpr std::size_t kExportRanks = 8;
      const std::vector<obs::HeavyHitter> top = sketch.top(kExportRanks);
      last_top->resize(kExportRanks);
      for (std::size_t r = 0; r < kExportRanks; ++r) {
        std::string name;
        if (r < top.size()) {
          name = "anchor_top_key_count{rank=\"" + std::to_string(r) +
                 "\",id=\"" + std::to_string(top[r].key) + "\"}";
        }
        if ((*last_top)[r] != name && !(*last_top)[r].empty()) {
          reg.gauge((*last_top)[r],
                    "Sketch count of the rank-N hottest key")
              .set(0.0);
        }
        (*last_top)[r] = name;
        if (!name.empty()) {
          reg.gauge(name, "Sketch count of the rank-N hottest key")
              .set(static_cast<double>(top[r].count));
        }
      }
      // Heat buckets are cumulative (never reset), so only the populated
      // ones need series — a bucket that ever counted stays nonzero.
      const obs::HeatMapSnapshot heat = load_->heat.snapshot();
      std::size_t populated = 0;
      for (const obs::HeatRange& range : heat.ranges) {
        for (std::size_t b = 0; b < range.buckets.size(); ++b) {
          if (range.buckets[b] == 0) continue;
          ++populated;
          reg.counter("anchor_heat_bucket_total{bucket=\"" +
                          std::to_string(b) + "\"}",
                      "Key-load records landing in this id-range bucket")
              .set(range.buckets[b]);
        }
      }
      reg.gauge("anchor_heat_buckets_populated",
                "Heat-map buckets that have recorded any load")
          .set(static_cast<double>(populated));
    }
  });
}

Server::~Server() { stop(); }

void Server::run() { accept_loop(); }

void Server::start() {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  stop_.store(true, std::memory_order_release);
  if (drift_) drift_->stop();
  if (accept_thread_.joinable()) accept_thread_.join();
  // run() callers drive the accept loop on their own thread; wait for it
  // to observe the stop flag (bounded by poll_interval_ms) so the
  // listener is never closed mid-accept and no connection is pushed
  // after the final reap.
  while (accept_running_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  reap_connections(/*all=*/true);
  // Graceful-shutdown drain: every handler has exited (their in-flight
  // batches are answered), so all that can still be mid-work is the
  // canary's shadow scorer — wait for it rather than tearing the process
  // down under a half-scored comparison window.
  const auto canary = [this] {
    std::lock_guard<std::mutex> lock(canary_mu_);
    return canary_;
  }();
  if (canary) canary->abort(/*drain=*/true);  // no-op unless running
  listener_.close();
}

void Server::reap_connections(bool all) {
  std::vector<std::unique_ptr<Connection>> to_join;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (all) {
      to_join.swap(connections_);
    } else {
      for (std::size_t i = 0; i < connections_.size();) {
        if (connections_[i]->done.load(std::memory_order_acquire)) {
          to_join.push_back(std::move(connections_[i]));
          connections_[i] = std::move(connections_.back());
          connections_.pop_back();
        } else {
          ++i;
        }
      }
    }
  }
  for (auto& conn : to_join) conn->thread.join();
}

void Server::accept_loop() {
  accept_running_.store(true, std::memory_order_release);
  while (!stop_.load(std::memory_order_acquire)) {
    reap_connections(/*all=*/false);
    TcpStream conn = listener_.accept(config_.poll_interval_ms);
    if (!conn.valid()) continue;  // poll timeout — recheck stop flag
    auto connection = std::make_unique<Connection>();
    Connection* raw = connection.get();
    raw->thread =
        std::thread([this, raw, stream = std::move(conn)]() mutable {
          handle_connection(std::move(stream));
          raw->done.store(true, std::memory_order_release);
        });
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.push_back(std::move(connection));
  }
  accept_running_.store(false, std::memory_order_release);
}

void Server::handle_connection(TcpStream stream) {
  stream.set_io_timeout(config_.io_timeout_ms);
  MsgType type{};
  std::vector<std::uint8_t> payload;
  obs::TraceContext trace;
  try {
    while (!stop_.load(std::memory_order_acquire)) {
      // Poll so a stop() issued while the client is idle is honored within
      // one interval instead of blocking in recv forever.
      if (!stream.wait_readable(config_.poll_interval_ms)) continue;
      if (!read_frame(stream, &type, &payload, &trace)) break;  // went away
      // backend_recv brackets the whole server-side handling: frame
      // parsed → reply written.
      const std::uint64_t recv_ns =
          trace.sampled() ? obs::Tracer::now_ns() : 0;
      const bool keep = dispatch(stream, type, payload, trace);
      if (trace.sampled()) {
        obs::Tracer::instance().record(trace, obs::TraceStage::kBackendRecv,
                                       recv_ns, obs::Tracer::now_ns());
      }
      if (!keep) break;
    }
  } catch (const WireError&) {
    // Malformed framing: the stream position is unrecoverable, so close
    // without a reply (an error frame could land mid-garbage anyway).
  } catch (const NetError&) {
    // Peer reset or vanished mid-message; nothing left to answer.
  }
}

bool Server::send_data_reply(TcpStream& stream, MsgType type,
                             const WireWriter& reply) {
  if (config_.fault_inject) {
    const FaultInjector::Verdict v = faults_.next_action();
    if (v.delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(v.delay_ms));
    }
    switch (v.action) {
      case FaultInjector::Action::kDrop:
        // Accepted the request, never answers: the client's read must
        // hit its deadline, not an error frame.
        return true;
      case FaultInjector::Action::kClose:
        return false;  // handler exits; the socket closes with it
      case FaultInjector::Action::kTruncate: {
        // A strict prefix of a well-formed frame — the length prefix
        // promises more bytes than ever arrive, then the connection
        // dies: the crash-mid-send failure mode.
        const std::vector<std::uint8_t> frame =
            encode_frame(type, reply, obs::TraceContext{});
        try {
          stream.write_all(frame.data(), frame.size() / 2);
        } catch (const NetError&) {
        }
        return false;
      }
      case FaultInjector::Action::kNone:
        break;
    }
  }
  write_frame(stream, type, reply);
  return true;
}

namespace {

/// Records one data-plane request into a windowed ring on scope exit:
/// wall latency from construction; counted as an error unless the
/// handler cleared the flag after putting a clean reply on the wire, so
/// malformed frames, serving errors, and injected drops all burn budget.
struct WindowedScope {
  explicit WindowedScope(obs::WindowedStats& w) : w_(w) {}
  ~WindowedScope() {
    w_.record(static_cast<double>(obs::Tracer::now_ns() - t0_) / 1000.0,
              error);
  }
  WindowedScope(const WindowedScope&) = delete;
  WindowedScope& operator=(const WindowedScope&) = delete;

  obs::WindowedStats& w_;
  std::uint64_t t0_ = obs::Tracer::now_ns();
  bool error = true;
};

}  // namespace

bool Server::dispatch(TcpStream& stream, MsgType type,
                      const std::vector<std::uint8_t>& payload,
                      const obs::TraceContext& trace) {
  WireReader reader(payload);
  WireWriter reply;
  // Upper bound on keys whose REPLY still fits the frame cap: each row
  // costs dim f32s plus an oov byte. Checked before running a lookup, so
  // an oversized-but-well-formed request is refused with an error frame
  // instead of allocating gigabytes and failing at send time. Uses the
  // live snapshot's dim; a concurrent hot swap to a different dim is
  // caught by write_frame's own cap check (kError reply, no crash).
  const auto max_reply_keys = [this]() -> std::uint64_t {
    const serve::SnapshotPtr live = store_.live();
    const std::uint64_t row_bytes =
        live ? live->dim() * sizeof(float) + 1 : 1;
    return (kMaxFrameBytes - 1024) / row_bytes;
  };
  // Payload decode errors (WireError) propagate to handle_connection and
  // close the connection — the stream itself is fine but the peer speaks a
  // different layout. Serving errors (unknown version, empty store) keep
  // the connection and answer kError instead.
  switch (type) {
    case MsgType::kLookupIds: {
      WindowedScope wscope(windowed_);
      const std::uint32_t n = reader.u32();
      // Each id occupies 8 payload bytes, so a count the payload cannot
      // hold is malformed — reject before allocating n slots.
      if (n > reader.remaining() / sizeof(std::uint64_t)) {
        throw WireError("id count exceeds payload");
      }
      if (n > max_reply_keys()) {
        WireWriter err;
        err.str("batch too large: reply would exceed the frame cap");
        write_frame(stream, MsgType::kError, err);
        return true;
      }
      std::vector<std::size_t> ids(n);
      for (auto& id : ids) id = static_cast<std::size_t>(reader.u64());
      reader.expect_done();
      try {
        if (const auto canary = active_canary()) {
          // Canary data plane: the router hash-splits the keys between
          // incumbent and candidate (and mirrors the shadow sample),
          // then merges back into request order.
          serve::LookupResult merged;
          canary->lookup_ids_into(ids, &merged);
          encode_lookup_result(merged, &reply);
          const bool sent =
              send_data_reply(stream, MsgType::kLookupIdsReply, reply);
          wscope.error = !sent;
          return sent;
        }
        // Single keys ride the allocation-free ring fast path; bigger
        // requests coalesce on the general path. Traced requests always
        // take the general path — the ring's slots carry no trace, and a
        // sampled request is rare enough that the span fidelity is worth
        // more than the fast path.
        const serve::ResultSlice slice =
            trace.sampled() ? async_.lookup_ids(std::move(ids), trace).get()
            : ids.size() == 1 ? async_.lookup_id(ids[0]).get()
                              : async_.lookup_ids(std::move(ids)).get();
        encode_result_slice(slice, &reply);
        if (!send_data_reply(stream, MsgType::kLookupIdsReply, reply)) {
          return false;
        }
        wscope.error = false;
      } catch (const NetError&) {
        // Transport failure, possibly mid-reply: the stream framing is
        // gone; close the connection instead of appending an error frame
        // onto a truncated reply.
        throw;
      } catch (const std::exception& e) {
        WireWriter err;
        err.str(e.what());
        write_frame(stream, MsgType::kError, err);
      }
      return true;
    }
    case MsgType::kLookupWords: {
      WindowedScope wscope(windowed_);
      const std::uint32_t n = reader.u32();
      // Every word carries at least its 4-byte length prefix.
      if (n > reader.remaining() / sizeof(std::uint32_t)) {
        throw WireError("word count exceeds payload");
      }
      if (n > max_reply_keys()) {
        WireWriter err;
        err.str("batch too large: reply would exceed the frame cap");
        write_frame(stream, MsgType::kError, err);
        return true;
      }
      std::vector<std::string> words(n);
      for (auto& word : words) word = reader.str();
      reader.expect_done();
      try {
        if (const auto canary = active_canary()) {
          serve::LookupResult merged;
          canary->lookup_words_into(words, &merged);
          encode_lookup_result(merged, &reply);
          const bool sent =
              send_data_reply(stream, MsgType::kLookupWordsReply, reply);
          wscope.error = !sent;
          return sent;
        }
        const serve::ResultSlice slice =
            trace.sampled()
                ? async_.lookup_words(std::move(words), trace).get()
                : async_.lookup_words(std::move(words)).get();
        encode_result_slice(slice, &reply);
        if (!send_data_reply(stream, MsgType::kLookupWordsReply, reply)) {
          return false;
        }
        wscope.error = false;
      } catch (const NetError&) {
        throw;  // transport failure mid-reply: close, don't answer
      } catch (const std::exception& e) {
        WireWriter err;
        err.str(e.what());
        write_frame(stream, MsgType::kError, err);
      }
      return true;
    }
    case MsgType::kTopK: {
      WindowedScope wscope(windowed_);
      TopKRequest req = decode_topk_request(&reader);
      reader.expect_done();
      if (!ann_) {
        WireWriter err;
        err.str("TOPK serving is disabled on this server");
        write_frame(stream, MsgType::kError, err);
        return true;
      }
      try {
        // Resolve the query vector. Id/word queries ride the batcher like
        // any lookup, so TOPK resolution coalesces with concurrent lookup
        // traffic instead of bypassing the serving path (and OOV words
        // search from their synthesized vector, same as a lookup).
        std::vector<float> query;
        if (req.kind == kTopKKindVector) {
          query = std::move(req.vector);
        } else {
          const serve::ResultSlice slice =
              req.kind == kTopKKindId
                  ? async_.lookup_id(static_cast<std::size_t>(req.id)).get()
                  : async_.lookup_word(std::move(req.word)).get();
          if (slice.size() != 1) {
            throw std::runtime_error("topk query resolution failed");
          }
          query.assign(slice.row(0), slice.row(0) + slice.dim());
        }
        const ann::IvfPqIndexPtr index = ann_->index_for_live();
        if (!index) throw std::runtime_error("no live version to search");
        if (query.size() != index->dim()) {
          throw std::runtime_error(
              "topk query dim " + std::to_string(query.size()) +
              " != index dim " + std::to_string(index->dim()));
        }
        const std::uint64_t t0 = obs::Tracer::now_ns();
        const ann::TopKResult result =
            req.mode == kTopKModeCandidates
                ? index->candidates(query.data(), req.rerank, req.nprobe)
                : index->search(query.data(), req.k, req.nprobe, req.rerank);
        const std::uint64_t t1 = obs::Tracer::now_ns();
        if (trace.sampled()) {
          obs::Tracer::instance().record(trace, obs::TraceStage::kTopkSearch,
                                         t0, t1);
        }
        topk_requests_.fetch_add(1, std::memory_order_relaxed);
        topk_latency_us_.record(static_cast<double>(t1 - t0) / 1000.0);
        topk_cells_probed_.record(static_cast<double>(result.cells_probed));
        topk_shortlist_.record(static_cast<double>(result.shortlist));
        encode_topk_result(result, &reply);
        const bool sent = send_data_reply(stream, MsgType::kTopKReply, reply);
        wscope.error = !sent;
        return sent;
      } catch (const NetError&) {
        throw;  // transport failure mid-reply: close, don't answer
      } catch (const std::exception& e) {
        WireWriter err;
        err.str(e.what());
        write_frame(stream, MsgType::kError, err);
      }
      return true;
    }
    case MsgType::kTryPromote: {
      const std::string candidate = reader.str();
      // Optional byte (older clients omit it): bypass the gate and flip
      // live directly — the rollout rollback path, where re-running a
      // near-threshold gate in the reverse direction could refuse to
      // restore the incumbent and strand a mixed-version cluster.
      const bool force = reader.remaining() > 0 && reader.u8() != 0;
      reader.expect_done();
      try {
        // Promotions are serialized: concurrent handlers would interleave
        // appends to the gate's audit CSV (and gate two candidates
        // against the same incumbent at once, promoting both).
        std::lock_guard<std::mutex> lock(promote_mu_);
        {
          // An offline promote under a running canary would flip the
          // incumbent out from under the router mid-measurement (and the
          // canary's own decision could later silently override it).
          // state()==kRunning, not active(): a DRAINING canary has
          // active()==false but is still measuring and about to write
          // its own terminal decision — flipping under it is just as
          // wrong.
          std::lock_guard<std::mutex> clock(canary_mu_);
          if (canary_ &&
              canary_->state() == serve::CanaryState::kRunning) {
            throw std::runtime_error(
                "a canary is running (candidate '" +
                canary_->candidate_version() +
                "'); abort it before an offline promote");
          }
        }
        // Online churn gate: before the offline measures run, check what
        // TOPK clients would actually observe across the swap — mean
        // served top-k churn between the incumbent's and the candidate's
        // indexes. Off by default (threshold 0); forced promotes (the
        // rollout-rollback path) bypass it like they bypass the gate.
        if (!force && ann_ && config_.topk_churn_reject > 0.0) {
          const serve::SnapshotPtr incumbent = store_.live();
          const serve::SnapshotPtr cand = store_.snapshot(candidate);
          if (incumbent && cand && incumbent->epoch() != cand->epoch()) {
            const double churn =
                ann_->topk_churn(incumbent, cand, config_.topk_churn_queries,
                                 config_.topk_churn_k);
            if (churn > config_.topk_churn_reject) {
              serve::GateReport rejected;
              rejected.old_version = incumbent->version();
              rejected.new_version = candidate;
              rejected.decision = serve::GateDecision::kReject;
              rejected.reason =
                  "topk churn " + std::to_string(churn) +
                  " exceeds threshold " +
                  std::to_string(config_.topk_churn_reject);
              if (!config_.gate.audit_log.empty()) {
                serve::append_audit_csv(config_.gate.audit_log, rejected);
              }
              encode_gate_report(rejected, &reply);
              write_frame(stream, MsgType::kTryPromoteReply, reply);
              return true;
            }
          }
        }
        serve::GateReport report;
        if (force) {
          const serve::SnapshotPtr snap = store_.snapshot(candidate);
          if (snap == nullptr) {
            throw std::runtime_error("unknown candidate version '" +
                                     candidate + "'");
          }
          report.old_version = store_.live_version();
          report.new_version = candidate;
          report.decision = serve::GateDecision::kAdmit;
          report.promoted = store_.set_live_snapshot(snap);
          report.reason = report.promoted
                              ? "forced promote (gate bypassed)"
                              : "forced promote aborted: candidate was "
                                "re-registered during the request";
          if (!config_.gate.audit_log.empty()) {
            serve::append_audit_csv(config_.gate.audit_log, report);
          }
        } else {
          report = gate_.try_promote(store_, candidate);
        }
        encode_gate_report(report, &reply);
        write_frame(stream, MsgType::kTryPromoteReply, reply);
      } catch (const NetError&) {
        throw;  // transport failure mid-reply: close, don't answer
      } catch (const std::exception& e) {
        WireWriter err;
        err.str(e.what());
        write_frame(stream, MsgType::kError, err);
      }
      return true;
    }
    case MsgType::kStats: {
      reader.expect_done();
      ServerStatsReport report;
      report.live_version = store_.live_version();
      if (const serve::SnapshotPtr live = store_.live()) {
        report.encoding = live->encoding();
      }
      report.service = service_.stats().snapshot();
      report.batcher = async_.stats().snapshot();
      encode_server_stats(report, &reply);
      write_frame(stream, MsgType::kStatsReply, reply);
      return true;
    }
    case MsgType::kPing: {
      reader.expect_done();
      write_frame(stream, MsgType::kPong, reply);
      return true;
    }
    case MsgType::kMetrics: {
      reader.expect_done();
      encode_metrics_report(metrics_.snapshot(), &reply);
      write_frame(stream, MsgType::kMetricsReply, reply);
      return true;
    }
    case MsgType::kHeat: {
      reader.expect_done();
      // Control plane, like kStats/kMetrics: no fault injection, no
      // windowed self-recording — the telemetry RPC must not perturb the
      // telemetry it reports.
      encode_heat_report(heat_report(), &reply);
      write_frame(stream, MsgType::kHeatReply, reply);
      return true;
    }
    case MsgType::kCanaryStart: {
      const std::string candidate = reader.str();
      const double fraction = reader.f64();
      const double shadow_rate = reader.f64();
      reader.expect_done();
      try {
        std::lock_guard<std::mutex> lock(promote_mu_);
        {
          // Same state()==kRunning rationale as kTryPromote: a draining
          // canary still owns the decision slot until it writes its
          // terminal state.
          std::lock_guard<std::mutex> clock(canary_mu_);
          if (canary_ &&
              canary_->state() == serve::CanaryState::kRunning) {
            throw std::runtime_error(
                "a canary is already running (candidate '" +
                canary_->candidate_version() + "'); abort it first");
          }
        }
        serve::CanaryConfig ccfg = config_.canary;
        // Per-request overrides; out-of-range values mean "server
        // default" so a thin client can pass zeros.
        if (fraction > 0.0 && fraction <= 1.0) ccfg.fraction = fraction;
        if (shadow_rate > 0.0 && shadow_rate <= 1.0) {
          ccfg.shadow_rate = shadow_rate;
        }
        // Candidate-side traffic counts into the server's own stats, so
        // kStats does not under-report while the canary runs.
        ccfg.candidate_service_stats = service_stats_;
        ccfg.candidate_batcher_stats = batcher_stats_;
        // Same rationale for key-load attribution: the candidate stack
        // serves a slice of real traffic, so its keys feed the same
        // sketch/heat map and the HEAT view stays whole-traffic.
        ccfg.candidate_lookup.load = load_.get();
        ccfg.candidate_batcher.windowed = &batch_windowed_;
        serve::GateReport offline;
        const auto router =
            gate_.try_promote(store_, candidate, async_, ccfg, &offline);
        {
          std::lock_guard<std::mutex> clock(canary_mu_);
          canary_ = router;
          if (!router) {
            // Phase 1 decided everything (reject, no incumbent, or
            // already live); keep its report for status queries.
            last_canary_status_ = CanaryStatusReport{};
            last_canary_status_.state =
                offline.decision == serve::GateDecision::kReject
                    ? serve::CanaryState::kOfflineRejected
                    : serve::CanaryState::kNone;
            last_canary_status_.incumbent = offline.old_version;
            last_canary_status_.candidate = offline.new_version;
            last_canary_status_.offline = offline;
            last_canary_status_.reason = offline.reason;
          }
        }
        encode_canary_status(canary_status_report(), &reply);
        write_frame(stream, MsgType::kCanaryStartReply, reply);
      } catch (const NetError&) {
        throw;  // transport failure mid-reply: close, don't answer
      } catch (const std::exception& e) {
        WireWriter err;
        err.str(e.what());
        write_frame(stream, MsgType::kError, err);
      }
      return true;
    }
    case MsgType::kCanaryStatus: {
      reader.expect_done();
      encode_canary_status(canary_status_report(), &reply);
      write_frame(stream, MsgType::kCanaryStatusReply, reply);
      return true;
    }
    case MsgType::kCanaryAbort: {
      // The drain byte is optional: an empty payload (older client) means
      // a plain immediate abort.
      const bool drain = reader.remaining() > 0 && reader.u8() != 0;
      reader.expect_done();
      {
        // Deliberately NOT under promote_mu_: a drained abort can wait
        // up to the drain timeout on in-flight lookups, and holding the
        // promote lock that long would stall every other control-plane
        // RPC. Safe without it: abort() decides at most once under its
        // own mutex, and the kRunning guards above keep promotes out
        // until the canary (draining included) reaches a terminal
        // state.
        const auto canary = [this] {
          std::lock_guard<std::mutex> clock(canary_mu_);
          return canary_;
        }();
        if (canary) canary->abort(drain);  // no-op unless running
      }
      encode_canary_status(canary_status_report(), &reply);
      write_frame(stream, MsgType::kCanaryAbortReply, reply);
      return true;
    }
    case MsgType::kFaultSet: {
      const std::string spec = reader.str();
      reader.expect_done();
      if (!config_.fault_inject) {
        WireWriter err;
        err.str("fault injection is not armed (start with --fault-inject)");
        write_frame(stream, MsgType::kError, err);
        return true;
      }
      try {
        faults_.configure(FaultConfig::parse(spec));
      } catch (const std::exception& e) {
        WireWriter err;
        err.str(e.what());
        write_frame(stream, MsgType::kError, err);
        return true;
      }
      // Echo the canonical form so the orchestrator can log what took
      // effect ("" = faults cleared).
      reply.str(faults_.config().serialize());
      write_frame(stream, MsgType::kFaultSetReply, reply);
      return true;
    }
    case MsgType::kShutdown: {
      reader.expect_done();
      // Flags first, reply second: a client that received the reply must
      // observe shutdown_requested() as true. The accept loop stops;
      // stop() (daemon main / destructor) joins the other handlers, and
      // this handler just closes its own connection.
      shutdown_requested_.store(true, std::memory_order_release);
      stop_.store(true, std::memory_order_release);
      write_frame(stream, MsgType::kShutdownReply, reply);
      return false;
    }
    default:
      WireWriter err;
      err.str("unknown request type " +
              std::to_string(static_cast<int>(type)));
      write_frame(stream, MsgType::kError, err);
      return true;
  }
}

std::shared_ptr<serve::CanaryRouter> Server::canary() const {
  std::lock_guard<std::mutex> lock(canary_mu_);
  return canary_;
}

std::shared_ptr<serve::CanaryRouter> Server::active_canary() const {
  std::lock_guard<std::mutex> lock(canary_mu_);
  if (canary_ && canary_->active()) return canary_;
  return nullptr;
}

CanaryStatusReport Server::canary_status_report() const {
  std::shared_ptr<serve::CanaryRouter> canary;
  {
    std::lock_guard<std::mutex> lock(canary_mu_);
    if (!canary_) return last_canary_status_;
    canary = canary_;
  }
  CanaryStatusReport s;
  s.state = canary->state();
  s.incumbent = canary->incumbent_version();
  s.candidate = canary->candidate_version();
  s.fraction = canary->config().fraction;
  s.shadow_rate = canary->config().shadow_rate;
  s.offline = canary->offline_report();
  s.online = canary->stats();
  s.reason = canary->decision_reason();
  return s;
}

}  // namespace anchor::net
