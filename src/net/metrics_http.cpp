#include "net/metrics_http.hpp"

#include <cstring>

namespace anchor::net {

namespace {

// Scrape-side bounds: an HTTP request head larger than this is not a
// scraper, and a peer that dribbles bytes slower than the timeout is
// dropped rather than pinning the exporter thread.
constexpr std::size_t kMaxHeadBytes = 8192;
constexpr int kIoTimeoutMs = 2000;
constexpr int kAcceptPollMs = 100;

}  // namespace

MetricsHttpServer::MetricsHttpServer(std::uint16_t port,
                                     std::function<std::string()> render)
    : listener_(TcpListener::bind_loopback(port)),
      render_(std::move(render)) {}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::start() {
  if (thread_.joinable()) return;
  thread_ = std::thread([this] { serve_loop(); });
}

void MetricsHttpServer::stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  listener_.close();
}

void MetricsHttpServer::serve_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    try {
      TcpStream conn = listener_.accept(kAcceptPollMs);
      if (!conn.valid()) continue;
      handle(std::move(conn));
    } catch (const NetError&) {
      // accept() can fail transiently (or the listener was closed by a
      // racing stop()); a scrape endpoint should never take the process
      // down over it.
      if (stop_.load(std::memory_order_acquire)) return;
    }
  }
}

void MetricsHttpServer::handle(TcpStream stream) {
  stream.set_io_timeout(kIoTimeoutMs);
  // Read until the CRLFCRLF (or bare LFLF) that ends the request head.
  // Byte-at-a-time is fine: heads are ~100 bytes and scrapes are rare.
  std::string head;
  try {
    char c = 0;
    while (head.size() < kMaxHeadBytes) {
      stream.read_exact(&c, 1);
      head.push_back(c);
      if (head.size() >= 4 &&
          head.compare(head.size() - 4, 4, "\r\n\r\n") == 0) {
        break;
      }
      if (head.size() >= 2 && head.compare(head.size() - 2, 2, "\n\n") == 0) {
        break;
      }
    }
  } catch (const NetError&) {
    return;  // truncated request: nothing useful to answer
  }
  // HEAD gets the same status and headers — including the Content-Length
  // a GET would carry — with no body (RFC 9110 §9.3.2); health checkers
  // commonly probe exporters this way. Any other method is treated as
  // GET (a scrape endpoint has exactly one resource to offer).
  const bool is_head = head.compare(0, 5, "HEAD ") == 0;
  const std::string body = render_();
  std::string response = "HTTP/1.0 200 OK\r\n";
  response += "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n";
  response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  response += "Connection: close\r\n\r\n";
  if (!is_head) response += body;
  try {
    stream.write_all(response.data(), response.size());
  } catch (const NetError&) {
    // Scraper went away mid-reply; drop it.
  }
}

}  // namespace anchor::net
