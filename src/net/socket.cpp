#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace anchor::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
  int one = 1;
  // Best-effort: a failure here only costs latency, not correctness.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in loopback_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("invalid IPv4 address: " + host);
  }
  return addr;
}

}  // namespace

// ---- TcpStream ---------------------------------------------------------

TcpStream::~TcpStream() { close(); }

TcpStream::TcpStream(TcpStream&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void TcpStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpStream TcpStream::connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const sockaddr_in addr = loopback_addr(host, port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw NetError("connect to " + host + ":" + std::to_string(port) + ": " +
                   std::strerror(errno));
  }
  set_nodelay(fd);
  return TcpStream(fd);
}

void TcpStream::set_io_timeout(int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void TcpStream::write_all(const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    // MSG_NOSIGNAL: a peer that vanished mid-write surfaces as EPIPE, not
    // a process-killing SIGPIPE.
    const ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw NetError("send timed out (peer not draining)");
      }
      throw_errno("send");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

bool TcpStream::read_exact_or_eof(void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw NetError("recv timed out mid-message");
      }
      throw_errno("recv");
    }
    if (r == 0) {
      if (got == 0) return false;  // clean EOF on a message boundary
      throw NetError("peer closed mid-message (" + std::to_string(got) + "/" +
                     std::to_string(n) + " bytes)");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void TcpStream::read_exact(void* data, std::size_t n) {
  if (!read_exact_or_eof(data, n)) {
    throw NetError("unexpected EOF");
  }
}

bool TcpStream::wait_readable(int timeout_ms) const {
  pollfd pfd{fd_, POLLIN, 0};
  for (;;) {
    const int r = ::poll(&pfd, 1, timeout_ms);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    return r > 0;
  }
}

// ---- TcpListener -------------------------------------------------------

TcpListener::~TcpListener() { close(); }

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(other.port_) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = other.port_;
  }
  return *this;
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener TcpListener::bind_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr("127.0.0.1", port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw NetError("bind 127.0.0.1:" + std::to_string(port) + ": " +
                   std::strerror(errno));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    throw_errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    throw_errno("getsockname");
  }
  return TcpListener(fd, ntohs(addr.sin_port));
}

TcpStream TcpListener::accept(int timeout_ms) {
  // A closed listener yields "no connection" rather than EBADF, so an
  // accept loop that raced a stop/close exits via its own stop flag.
  if (fd_ < 0) return TcpStream(-1);
  pollfd pfd{fd_, POLLIN, 0};
  for (;;) {
    const int r = ::poll(&pfd, 1, timeout_ms);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if (r == 0) return TcpStream(-1);  // timeout
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      throw_errno("accept");
    }
    set_nodelay(conn);
    return TcpStream(conn);
  }
}

}  // namespace anchor::net
