#include "net/wire.hpp"

#include "net/socket.hpp"
#include "util/check.hpp"

namespace anchor::net {

std::vector<std::uint8_t> encode_frame(MsgType type, const WireWriter& payload,
                                       const obs::TraceContext& trace) {
  const std::vector<std::uint8_t>& body = payload.buffer();
  const std::uint8_t ext_len = trace.valid() ? kTraceExtBytes : 0;
  ANCHOR_CHECK_MSG(body.size() + 4 + ext_len <= kMaxFrameBytes,
                   "frame too large");
  // One contiguous buffer per frame: a single send() keeps small RPCs in
  // one TCP segment (TCP_NODELAY would otherwise split prefix and body).
  std::vector<std::uint8_t> frame;
  frame.reserve(4 + 4 + ext_len + body.size());
  const std::uint32_t len =
      static_cast<std::uint32_t>(4 + ext_len + body.size());
  const auto* lp = reinterpret_cast<const std::uint8_t*>(&len);
  frame.insert(frame.end(), lp, lp + 4);
  frame.push_back(kWireMagic);
  frame.push_back(kWireVersion);
  frame.push_back(static_cast<std::uint8_t>(type));
  frame.push_back(ext_len);
  if (ext_len != 0) {
    const auto* tp = reinterpret_cast<const std::uint8_t*>(&trace.trace_id);
    frame.insert(frame.end(), tp, tp + 8);
    const auto* sp = reinterpret_cast<const std::uint8_t*>(&trace.span_id);
    frame.insert(frame.end(), sp, sp + 8);
    frame.push_back(trace.flags);
  }
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

void write_frame(TcpStream& stream, MsgType type, const WireWriter& payload,
                 const obs::TraceContext& trace) {
  const std::vector<std::uint8_t> frame = encode_frame(type, payload, trace);
  stream.write_all(frame.data(), frame.size());
}

void write_frame(TcpStream& stream, MsgType type, const WireWriter& payload) {
  write_frame(stream, type, payload, obs::TraceContext{});
}

bool read_frame(TcpStream& stream, MsgType* type,
                std::vector<std::uint8_t>* payload,
                obs::TraceContext* trace) {
  if (trace != nullptr) *trace = obs::TraceContext{};
  std::uint32_t len = 0;
  if (!stream.read_exact_or_eof(&len, sizeof(len))) return false;
  if (len < 4 || len > kMaxFrameBytes) {
    throw WireError("bad frame length: " + std::to_string(len));
  }
  std::uint8_t header[4];
  stream.read_exact(header, sizeof(header));
  if (header[0] != kWireMagic) throw WireError("bad magic byte");
  if (header[1] != kWireVersion) {
    throw WireError("unsupported protocol version " +
                    std::to_string(header[1]));
  }
  *type = static_cast<MsgType>(header[2]);
  const std::uint8_t ext_len = header[3];
  if (ext_len > len - 4) {
    throw WireError("extension length exceeds frame");
  }
  if (ext_len != 0) {
    std::uint8_t ext[255];
    stream.read_exact(ext, ext_len);
    // A trace extension needs all 17 bytes; anything shorter (or any
    // bytes beyond them) is an extension this version does not know and
    // skips — that forward-compat hole is the point of ext_len.
    if (ext_len >= kTraceExtBytes && trace != nullptr) {
      std::memcpy(&trace->trace_id, ext, 8);
      std::memcpy(&trace->span_id, ext + 8, 8);
      trace->flags = ext[16];
    }
  }
  payload->resize(len - 4 - ext_len);
  if (!payload->empty()) stream.read_exact(payload->data(), payload->size());
  return true;
}

// ---- LookupResult ------------------------------------------------------

void encode_lookup_result_slice(const serve::LookupResult& result,
                                std::size_t first, std::size_t count,
                                WireWriter* w) {
  ANCHOR_CHECK_LE(first + count, result.size());
  w->str(result.version);
  w->u32(static_cast<std::uint32_t>(count));
  w->u32(static_cast<std::uint32_t>(result.dim));
  w->f32s(result.vectors.data() + first * result.dim, count * result.dim);
  w->bytes(result.oov.data() + first, count);
}

void encode_lookup_result(const serve::LookupResult& result, WireWriter* w) {
  encode_lookup_result_slice(result, 0, result.size(), w);
}

void encode_result_slice(const serve::ResultSlice& slice, WireWriter* w) {
  if (slice.batch() == nullptr) {
    w->str("");
    w->u32(0);
    w->u32(0);
    return;
  }
  encode_lookup_result_slice(*slice.batch(), slice.first(), slice.size(), w);
}

serve::LookupResult decode_lookup_result(WireReader* r) {
  serve::LookupResult result;
  result.version = r->str();
  const std::uint32_t n = r->u32();
  result.dim = r->u32();
  // Guard the sizes before resizing: both fields are attacker-controlled
  // in principle and the frame cap alone does not bound n·dim. Every row
  // carries at least its oov byte, so n beyond the remaining payload is
  // malformed even at dim == 0 — without this, n=2^32-1, dim=0 would ask
  // for a 4 GiB oov vector from a 13-byte frame.
  if (n > r->remaining() ||
      (result.dim > 0 && n > kMaxFrameBytes / sizeof(float) / result.dim)) {
    throw WireError("lookup result dimensions overflow frame cap");
  }
  result.vectors.resize(static_cast<std::size_t>(n) * result.dim);
  result.oov.resize(n);
  r->f32s(result.vectors.data(), result.vectors.size());
  r->bytes(result.oov.data(), result.oov.size());
  return result;
}

// ---- GateReport --------------------------------------------------------

void encode_gate_report(const serve::GateReport& report, WireWriter* w) {
  w->str(report.old_version);
  w->str(report.new_version);
  w->u8(static_cast<std::uint8_t>(report.decision));
  w->u8(report.promoted ? 1 : 0);
  w->f64(report.eis);
  w->f64(report.one_minus_knn);
  w->u64(report.rows_compared);
  w->str(report.reason);
}

serve::GateReport decode_gate_report(WireReader* r) {
  serve::GateReport report;
  report.old_version = r->str();
  report.new_version = r->str();
  const std::uint8_t decision = r->u8();
  if (decision > static_cast<std::uint8_t>(serve::GateDecision::kReject)) {
    throw WireError("bad gate decision code");
  }
  report.decision = static_cast<serve::GateDecision>(decision);
  report.promoted = r->u8() != 0;
  report.eis = r->f64();
  report.one_minus_knn = r->f64();
  report.rows_compared = r->u64();
  report.reason = r->str();
  return report;
}

// ---- histograms --------------------------------------------------------

void encode_histogram(const obs::HistogramSnapshot& h, WireWriter* w) {
  w->u64(h.count);
  w->u64(h.sum_units);
  w->u64(h.min_units);
  w->u64(h.max_units);
  std::uint32_t nonzero = 0;
  for (const std::uint64_t c : h.counts) {
    if (c != 0) ++nonzero;
  }
  w->u32(nonzero);
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    if (h.counts[i] != 0) {
      w->u16(static_cast<std::uint16_t>(i));
      w->u64(h.counts[i]);
    }
  }
}

obs::HistogramSnapshot decode_histogram(WireReader* r) {
  obs::HistogramSnapshot h;
  h.count = r->u64();
  h.sum_units = r->u64();
  h.min_units = r->u64();
  h.max_units = r->u64();
  const std::uint32_t nonzero = r->u32();
  // Each entry is 10 payload bytes; same overrun discipline as
  // decode_lookup_result.
  if (nonzero > r->remaining() / 10) {
    throw WireError("histogram entry count exceeds payload");
  }
  if (nonzero != 0) {
    h.counts.assign(obs::LogHistogram::kNumBuckets, 0);
    for (std::uint32_t i = 0; i < nonzero; ++i) {
      const std::uint16_t idx = r->u16();
      if (idx >= obs::LogHistogram::kNumBuckets) {
        throw WireError("histogram bucket index out of range");
      }
      h.counts[idx] = r->u64();
    }
  }
  return h;
}

// ---- StatsSnapshot -----------------------------------------------------

void encode_stats_snapshot(const serve::StatsSnapshot& s, WireWriter* w) {
  w->u64(s.lookups);
  w->u64(s.batches);
  w->u64(s.cache_hits);
  w->u64(s.cache_misses);
  w->u64(s.oov_fallbacks);
  w->f64(s.elapsed_seconds);
  w->f64(s.qps);
  w->f64(s.p50_latency_us);
  w->f64(s.p99_latency_us);
  // v3: the full histogram follows, so aggregators can MERGE latency
  // distributions instead of comparing percentile scalars.
  encode_histogram(s.latency, w);
}

serve::StatsSnapshot decode_stats_snapshot(WireReader* r) {
  serve::StatsSnapshot s;
  s.lookups = r->u64();
  s.batches = r->u64();
  s.cache_hits = r->u64();
  s.cache_misses = r->u64();
  s.oov_fallbacks = r->u64();
  s.elapsed_seconds = r->f64();
  s.qps = r->f64();
  s.p50_latency_us = r->f64();
  s.p99_latency_us = r->f64();
  s.latency = decode_histogram(r);
  return s;
}

// ---- metrics -----------------------------------------------------------

void encode_metrics_report(const obs::MetricsReport& m, WireWriter* w) {
  w->u32(static_cast<std::uint32_t>(m.metrics.size()));
  for (const obs::MetricValue& v : m.metrics) {
    w->u8(static_cast<std::uint8_t>(v.kind));
    w->str(v.name);
    w->str(v.help);
    switch (v.kind) {
      case obs::MetricKind::kCounter:
        w->u64(v.counter);
        break;
      case obs::MetricKind::kGauge:
        w->f64(v.gauge);
        break;
      case obs::MetricKind::kHistogram:
        encode_histogram(v.hist, w);
        break;
    }
  }
}

obs::MetricsReport decode_metrics_report(WireReader* r) {
  obs::MetricsReport m;
  const std::uint32_t n = r->u32();
  // Minimum metric entry: kind byte + two empty strings = 9 bytes.
  if (n > r->remaining() / 9) {
    throw WireError("metric count exceeds payload");
  }
  m.metrics.resize(n);
  for (obs::MetricValue& v : m.metrics) {
    const std::uint8_t kind = r->u8();
    if (kind > static_cast<std::uint8_t>(obs::MetricKind::kHistogram)) {
      throw WireError("bad metric kind code");
    }
    v.kind = static_cast<obs::MetricKind>(kind);
    v.name = r->str();
    v.help = r->str();
    switch (v.kind) {
      case obs::MetricKind::kCounter:
        v.counter = r->u64();
        break;
      case obs::MetricKind::kGauge:
        v.gauge = r->f64();
        break;
      case obs::MetricKind::kHistogram:
        v.hist = decode_histogram(r);
        break;
    }
  }
  return m;
}

void encode_server_stats(const ServerStatsReport& s, WireWriter* w) {
  w->str(s.live_version);
  encode_stats_snapshot(s.service, w);
  encode_stats_snapshot(s.batcher, w);
  w->str(s.encoding);
}

ServerStatsReport decode_server_stats(WireReader* r) {
  ServerStatsReport s;
  s.live_version = r->str();
  s.service = decode_stats_snapshot(r);
  s.batcher = decode_stats_snapshot(r);
  // Trailing v4 field: absent in a v3 peer's reply, so only read it when
  // bytes remain (the call sites' expect_done() still rejects junk beyond).
  if (r->remaining() > 0) s.encoding = r->str();
  return s;
}

// ---- Canary ------------------------------------------------------------

void encode_canary_stats(const serve::CanaryStatsSnapshot& s, WireWriter* w) {
  w->u64(s.candidate_lookups);
  w->u64(s.incumbent_lookups);
  w->u64(s.shadows);
  w->f64(s.mean_agreement);
  w->f64(s.agreement_lower);
  w->f64(s.agreement_upper);
  w->f64(s.mean_displacement);
  w->f64(s.mean_latency_delta_us);
  w->f64(s.p50_agreement);
  w->f64(s.p50_displacement);
  w->u32(static_cast<std::uint32_t>(s.worst_keys.size()));
  for (const serve::CanaryWorstKey& k : s.worst_keys) {
    w->u64(k.key);
    w->f64(k.displacement);
  }
}

serve::CanaryStatsSnapshot decode_canary_stats(WireReader* r) {
  serve::CanaryStatsSnapshot s;
  s.candidate_lookups = r->u64();
  s.incumbent_lookups = r->u64();
  s.shadows = r->u64();
  s.mean_agreement = r->f64();
  s.agreement_lower = r->f64();
  s.agreement_upper = r->f64();
  s.mean_displacement = r->f64();
  s.mean_latency_delta_us = r->f64();
  s.p50_agreement = r->f64();
  s.p50_displacement = r->f64();
  const std::uint32_t n_worst = r->u32();
  // Each entry is 16 payload bytes; a count the payload cannot hold is
  // malformed (same overrun discipline as decode_lookup_result).
  if (n_worst > r->remaining() / 16) {
    throw WireError("worst-key count exceeds payload");
  }
  s.worst_keys.resize(n_worst);
  for (serve::CanaryWorstKey& k : s.worst_keys) {
    k.key = r->u64();
    k.displacement = r->f64();
  }
  return s;
}

void encode_canary_status(const CanaryStatusReport& s, WireWriter* w) {
  w->u8(static_cast<std::uint8_t>(s.state));
  w->str(s.incumbent);
  w->str(s.candidate);
  w->f64(s.fraction);
  w->f64(s.shadow_rate);
  encode_gate_report(s.offline, w);
  encode_canary_stats(s.online, w);
  w->str(s.reason);
}

CanaryStatusReport decode_canary_status(WireReader* r) {
  CanaryStatusReport s;
  const std::uint8_t state = r->u8();
  if (state > static_cast<std::uint8_t>(serve::CanaryState::kAborted)) {
    throw WireError("bad canary state code");
  }
  s.state = static_cast<serve::CanaryState>(state);
  s.incumbent = r->str();
  s.candidate = r->str();
  s.fraction = r->f64();
  s.shadow_rate = r->f64();
  s.offline = decode_gate_report(r);
  s.online = decode_canary_stats(r);
  s.reason = r->str();
  return s;
}

// ---- cluster rollout ----------------------------------------------------

std::string rollout_state_name(RolloutState s) {
  switch (s) {
    case RolloutState::kIdle:
      return "idle";
    case RolloutState::kRunning:
      return "running";
    case RolloutState::kCompleted:
      return "completed";
    case RolloutState::kRolledBack:
      return "rolled-back";
    case RolloutState::kAborted:
      return "aborted";
  }
  ANCHOR_CHECK_MSG(false, "unknown RolloutState");
  return "";
}

std::string shard_rollout_state_name(ShardRolloutState s) {
  switch (s) {
    case ShardRolloutState::kPending:
      return "pending";
    case ShardRolloutState::kInProgress:
      return "in-progress";
    case ShardRolloutState::kPromoted:
      return "promoted";
    case ShardRolloutState::kFailed:
      return "failed";
    case ShardRolloutState::kRolledBack:
      return "rolled-back";
  }
  ANCHOR_CHECK_MSG(false, "unknown ShardRolloutState");
  return "";
}

void encode_rollout_status(const RolloutStatusReport& s, WireWriter* w) {
  w->u8(static_cast<std::uint8_t>(s.state));
  w->str(s.candidate);
  w->u8(s.mode);
  w->u64(s.map_version);
  w->u32(static_cast<std::uint32_t>(s.shards.size()));
  for (const ShardRolloutStatus& shard : s.shards) {
    w->u8(static_cast<std::uint8_t>(shard.state));
    w->str(shard.detail);
  }
  w->str(s.reason);
}

RolloutStatusReport decode_rollout_status(WireReader* r) {
  RolloutStatusReport s;
  const std::uint8_t state = r->u8();
  if (state > static_cast<std::uint8_t>(RolloutState::kAborted)) {
    throw WireError("bad rollout state code");
  }
  s.state = static_cast<RolloutState>(state);
  s.candidate = r->str();
  s.mode = r->u8();
  s.map_version = r->u64();
  const std::uint32_t n = r->u32();
  // Every shard entry carries at least its state byte + detail length.
  if (n > r->remaining() / 5) {
    throw WireError("shard count exceeds payload");
  }
  s.shards.resize(n);
  for (ShardRolloutStatus& shard : s.shards) {
    const std::uint8_t ss = r->u8();
    if (ss > static_cast<std::uint8_t>(ShardRolloutState::kRolledBack)) {
      throw WireError("bad shard rollout state code");
    }
    shard.state = static_cast<ShardRolloutState>(ss);
    shard.detail = r->str();
  }
  s.reason = r->str();
  return s;
}

void encode_topk_request(const TopKRequest& req, WireWriter* w) {
  w->u32(req.k);
  w->u32(req.nprobe);
  w->u32(req.rerank);
  w->u8(req.mode);
  w->u8(req.kind);
  switch (req.kind) {
    case kTopKKindId:
      w->u64(req.id);
      break;
    case kTopKKindWord:
      w->str(req.word);
      break;
    case kTopKKindVector:
      w->u32(static_cast<std::uint32_t>(req.vector.size()));
      w->f32s(req.vector.data(), req.vector.size());
      break;
    default:
      throw WireError("bad topk query kind");
  }
}

TopKRequest decode_topk_request(WireReader* r) {
  TopKRequest req;
  req.k = r->u32();
  req.nprobe = r->u32();
  req.rerank = r->u32();
  req.mode = r->u8();
  if (req.mode > kTopKModeCandidates) throw WireError("bad topk mode");
  req.kind = r->u8();
  switch (req.kind) {
    case kTopKKindId:
      req.id = r->u64();
      break;
    case kTopKKindWord:
      req.word = r->str();
      break;
    case kTopKKindVector: {
      const std::uint32_t dim = r->u32();
      if (dim > r->remaining() / sizeof(float)) {
        throw WireError("topk vector dim exceeds payload");
      }
      req.vector.resize(dim);
      r->f32s(req.vector.data(), dim);
      break;
    }
    default:
      throw WireError("bad topk query kind");
  }
  return req;
}

void encode_topk_result(const ann::TopKResult& result, WireWriter* w) {
  w->reserve(result.version.size() + 18 + result.hits.size() * 16);
  w->str(result.version);
  w->u32(result.cells_probed);
  w->u32(result.shortlist);
  w->u8(result.flags);
  w->u32(static_cast<std::uint32_t>(result.hits.size()));
  for (const ann::TopKHit& h : result.hits) {
    w->u64(h.id);
    w->f32(h.exact);
    w->f32(h.adc);
  }
}

ann::TopKResult decode_topk_result(WireReader* r) {
  ann::TopKResult result;
  result.version = r->str();
  result.cells_probed = r->u32();
  result.shortlist = r->u32();
  result.flags = r->u8();
  const std::uint32_t n = r->u32();
  // Each hit is exactly 16 bytes on the wire.
  if (n > r->remaining() / 16) {
    throw WireError("topk hit count exceeds payload");
  }
  result.hits.resize(n);
  for (ann::TopKHit& h : result.hits) {
    h.id = r->u64();
    h.exact = r->f32();
    h.adc = r->f32();
  }
  return result;
}

// ---- load & drift telemetry (HEAT) --------------------------------------

void encode_windowed_snapshot(const obs::WindowedSnapshot& w,
                              WireWriter* out) {
  out->u64(w.slice_us);
  out->u64(w.now_us);
  out->u32(static_cast<std::uint32_t>(w.slices.size()));
  for (const obs::WindowSlice& s : w.slices) {
    out->u64(s.epoch);
    out->u64(s.requests);
    out->u64(s.errors);
    encode_histogram(s.latency, out);
  }
}

obs::WindowedSnapshot decode_windowed_snapshot(WireReader* r) {
  obs::WindowedSnapshot w;
  w.slice_us = r->u64();
  w.now_us = r->u64();
  const std::uint32_t n = r->u32();
  // An all-empty snapshot may carry slice_us 0 (nothing recorded yet);
  // actual slices without a slice width are undecodable nonsense.
  if (n != 0 && w.slice_us == 0) {
    throw WireError("windowed slice width is zero");
  }
  // Every slice carries three u64 counters plus a histogram whose fixed
  // aggregates alone are 36 bytes.
  if (n > r->remaining() / 60) {
    throw WireError("windowed slice count exceeds payload");
  }
  w.slices.resize(n);
  std::uint64_t prev_epoch = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    obs::WindowSlice& s = w.slices[i];
    s.epoch = r->u64();
    if (i != 0 && s.epoch <= prev_epoch) {
      // The merge contract requires strictly ascending epochs; a hostile
      // frame must not smuggle duplicates past it.
      throw WireError("windowed slices out of order");
    }
    prev_epoch = s.epoch;
    s.requests = r->u64();
    s.errors = r->u64();
    s.latency = decode_histogram(r);
  }
  return w;
}

void encode_sketch_snapshot(const obs::SketchSnapshot& s, WireWriter* out) {
  out->reserve(20 + s.entries.size() * 24);
  out->u64(s.capacity);
  out->u64(s.total);
  out->u32(static_cast<std::uint32_t>(s.entries.size()));
  for (const obs::HeavyHitter& e : s.entries) {
    out->u64(e.key);
    out->u64(e.count);
    out->u64(e.error);
  }
}

obs::SketchSnapshot decode_sketch_snapshot(WireReader* r) {
  obs::SketchSnapshot s;
  s.capacity = r->u64();
  s.total = r->u64();
  const std::uint32_t n = r->u32();
  // Each entry is exactly 24 bytes on the wire.
  if (n > r->remaining() / 24) {
    throw WireError("sketch entry count exceeds payload");
  }
  s.entries.resize(n);
  for (obs::HeavyHitter& e : s.entries) {
    e.key = r->u64();
    e.count = r->u64();
    e.error = r->u64();
  }
  return s;
}

void encode_heat_map(const obs::HeatMapSnapshot& h, WireWriter* out) {
  out->u64(h.total);
  out->u64(h.elapsed_us);
  out->u32(static_cast<std::uint32_t>(h.ranges.size()));
  for (const obs::HeatRange& rg : h.ranges) {
    out->u64(rg.row_begin);
    out->u64(rg.row_end);
    out->u32(static_cast<std::uint32_t>(rg.buckets.size()));
    for (const std::uint64_t b : rg.buckets) out->u64(b);
  }
}

obs::HeatMapSnapshot decode_heat_map(WireReader* r) {
  obs::HeatMapSnapshot h;
  h.total = r->u64();
  h.elapsed_us = r->u64();
  const std::uint32_t n = r->u32();
  // Every range carries its two bounds plus a bucket count.
  if (n > r->remaining() / 20) {
    throw WireError("heat range count exceeds payload");
  }
  h.ranges.resize(n);
  for (obs::HeatRange& rg : h.ranges) {
    rg.row_begin = r->u64();
    rg.row_end = r->u64();
    if (rg.row_end < rg.row_begin) {
      throw WireError("heat range bounds inverted");
    }
    const std::uint32_t nb = r->u32();
    if (nb > r->remaining() / 8) {
      throw WireError("heat bucket count exceeds payload");
    }
    rg.buckets.resize(nb);
    for (std::uint64_t& b : rg.buckets) b = r->u64();
  }
  return h;
}

void encode_heat_report(const HeatReport& h, WireWriter* out) {
  encode_windowed_snapshot(h.windowed, out);
  encode_sketch_snapshot(h.sketch, out);
  encode_heat_map(h.heat, out);
}

HeatReport decode_heat_report(WireReader* r) {
  HeatReport h;
  h.windowed = decode_windowed_snapshot(r);
  h.sketch = decode_sketch_snapshot(r);
  h.heat = decode_heat_map(r);
  return h;
}

}  // namespace anchor::net
