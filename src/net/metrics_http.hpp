// Minimal Prometheus scrape endpoint: an HTTP/1.0 responder over
// TcpListener that answers every GET with the text exposition a render
// callback produces at scrape time.
//
// This is deliberately NOT a web server. It exists so `curl
// host:port/metrics` and a Prometheus scraper work against the daemons
// without pulling an HTTP library into the image: it reads until the
// blank line ending the request head (discarding method/path — every
// path serves the metrics page, which is what node_exporter-style
// single-purpose exporters do), writes one `200 OK` with
// `Content-Type: text/plain; version=0.0.4`, and closes. Connection
// reuse, chunked encoding, and request bodies are out of scope.
//
// One accept thread, scrapes handled inline (a scrape is one render +
// one write — queueing the next scraper for that long is fine at any
// realistic scrape interval). stop() is idempotent and joins the thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "net/socket.hpp"

namespace anchor::net {

class MetricsHttpServer {
 public:
  /// `render` is called once per scrape, on the exporter's thread; it
  /// must be thread-safe against the process's hot paths (a
  /// MetricsRegistry snapshot is). Binds 127.0.0.1:port immediately
  /// (0 = ephemeral); serves once start() is called.
  MetricsHttpServer(std::uint16_t port, std::function<std::string()> render);
  ~MetricsHttpServer();
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  void start();
  void stop();

 private:
  void serve_loop();
  void handle(TcpStream stream);

  TcpListener listener_;
  std::function<std::string()> render_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace anchor::net
