// TCP front-end for the serving stack: accepts loopback connections and
// drives the async batcher, so out-of-process consumers get gated,
// versioned embeddings over the wire.
//
// Topology: one accept thread + one handler thread per connection. Each
// handler parses frames and blocks on the batcher future for lookups —
// which is exactly what makes the design scale on the serving side:
// concurrent connections' single-key requests coalesce into shared
// batches inside AsyncLookupService instead of each paying the full
// per-batch cost. Control-plane requests (try_promote, stats, shutdown)
// execute on the handler thread directly.
//
// The server binds in the constructor (so an ephemeral port is known
// immediately), but serves only once run() or start() is called. stop()
// is idempotent and safe from any thread; a kShutdown frame from a client
// also stops the accept loop, which is how the daemon supports remote
// shutdown for scripted smoke tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ann/ann_service.hpp"
#include "net/fault.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "obs/drift_probe.hpp"
#include "obs/heavy_hitters.hpp"
#include "obs/log_histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/windowed.hpp"
#include "serve/batcher.hpp"
#include "serve/canary.hpp"
#include "serve/deployment_gate.hpp"
#include "serve/embedding_store.hpp"
#include "serve/lookup_service.hpp"

namespace anchor::net {

struct ServerConfig {
  /// 0 = ephemeral; read the bound port back with Server::port().
  std::uint16_t port = 0;
  serve::LookupConfig lookup;
  serve::BatcherConfig batcher;
  serve::GateConfig gate;
  /// Defaults for kCanaryStart (a request may override fraction and
  /// shadow_rate per canary).
  serve::CanaryConfig canary;
  /// Poll granularity of the accept/handler loops — bounds how long stop()
  /// waits for idle connections to notice.
  int poll_interval_ms = 100;
  /// Per-recv/send stall bound on connection sockets: a client that goes
  /// silent mid-frame or stops draining a reply is dropped after this
  /// long, so it can never pin a handler thread (and therefore stop())
  /// indefinitely. Idle BETWEEN frames is unlimited — that wait is the
  /// stop-aware poll loop.
  int io_timeout_ms = 2000;
  /// Arms the fault-injection subsystem (`--fault-inject` on the daemon).
  /// When false the FAULT_SET RPC is refused, so a production server
  /// cannot be perturbed remotely; `faults` is the initial config (the
  /// no-fault default arms the RPC without perturbing anything yet).
  bool fault_inject = false;
  FaultConfig faults;
  /// Seed for the injector's probability draws — a seeded chaos run
  /// replays the same fault sequence.
  std::uint64_t fault_seed = 0x9e3779b97f4a7c15ull;
  /// Approximate top-k serving (the TOPK RPC). On by default; when
  /// disabled TOPK answers with an Error frame and no index is ever
  /// built. Indexes are built lazily per snapshot version on first use
  /// and swap with the live version automatically (epoch-keyed cache in
  /// ann::AnnService), so gate/canary/rollout flows apply unchanged.
  bool ann_enable = true;
  ann::AnnConfig ann;
  /// Online churn gate: when > 0, a (non-forced) TRY_PROMOTE additionally
  /// measures served top-k churn between the incumbent's and candidate's
  /// indexes over `topk_churn_queries` probe rows at k =
  /// `topk_churn_k`, and refuses the promote when mean churn exceeds
  /// this threshold — the paper's kNN-overlap instability applied to
  /// what TOPK clients would actually observe across the swap.
  double topk_churn_reject = 0.0;
  std::size_t topk_churn_queries = 64;
  std::size_t topk_churn_k = 10;
  /// Windowed-telemetry ring shape, shared by the RPC-level and
  /// batch-level recorders (they must agree so their snapshots merge).
  obs::WindowedConfig windowed;
  /// SLO burn-rate policy over the RPC window (`--slo-p99-us`,
  /// `--slo-error-budget` on the daemon).
  obs::SloConfig slo;
  /// Heavy-hitter sketch entry budget (`--hot-keys`); 0 disables key-load
  /// attribution entirely (no sketch, no heat map, HEAT serves empties).
  std::size_t hot_key_capacity = 512;
  /// Range heat-map fanout over the live vocabulary (`--heat-buckets`).
  std::size_t heat_buckets = 256;
  /// Continuous instability probe (`--drift-interval`); interval 0 keeps
  /// the gauges manual-only (kHeat/metrics still work).
  obs::DriftProbeConfig drift;
};

class Server {
 public:
  /// Binds 127.0.0.1:port and builds the serving stack (LookupService →
  /// AsyncLookupService → DeploymentGate) over the caller's store. The
  /// store must outlive the server; it may be mutated concurrently
  /// (add_version + RPC try_promote is the intended hot-swap flow).
  Server(serve::EmbeddingStore& store, ServerConfig config = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  /// Serves on the calling thread until stop() is called from elsewhere or
  /// a client sends kShutdown. Handler threads are joined by stop()/dtor.
  void run();
  /// Serves on a background thread; returns immediately.
  void start();
  /// Stops accepting, closes the listener, and joins every thread. Safe to
  /// call multiple times and from any thread (except a handler's own).
  void stop();

  /// True once a client's kShutdown was honored — the daemon's main loop
  /// watches this.
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  const serve::LookupService& service() const { return service_; }
  serve::AsyncLookupService& async() { return async_; }
  const serve::DeploymentGate& gate() const { return gate_; }
  /// The process metrics plane: serve-layer counters and latency
  /// histograms are bridged in by the constructor; the kMetrics RPC and
  /// the daemon's Prometheus endpoint both render snapshots of this.
  obs::MetricsRegistry& metrics_registry() { return metrics_; }
  /// The canary most recently started over RPC (running or terminal);
  /// nullptr when none was ever started. For tests/monitoring.
  std::shared_ptr<serve::CanaryRouter> canary() const;
  /// The per-server fault injector (armed via ServerConfig::fault_inject).
  FaultInjector& fault_injector() { return faults_; }
  /// The ANN service behind the TOPK RPC; nullptr when ann_enable=false.
  ann::AnnService* ann() { return ann_.get(); }
  /// RPC-level windowed telemetry (one record per data-plane request).
  obs::WindowedStats& windowed() { return windowed_; }
  /// Key-load recorders fed by LookupService; nullptr when
  /// hot_key_capacity == 0.
  obs::KeyLoadRecorder* key_load() { return load_.get(); }
  /// The continuous instability probe; nullptr for an empty store.
  obs::DriftProbe* drift() { return drift_.get(); }
  /// What the kHeat RPC answers: this server's windowed ring, heavy-hitter
  /// sketch, and range heat map, snapshotted together.
  HeatReport heat_report();

 private:
  void accept_loop();
  void handle_connection(TcpStream stream);
  /// Dispatches one request frame; returns false when the connection
  /// should close (shutdown honored). `trace` is the frame's trace
  /// context (invalid for untraced requests): traced lookups take the
  /// batcher's traced general path so their spans are recorded.
  bool dispatch(TcpStream& stream, MsgType type,
                const std::vector<std::uint8_t>& payload,
                const obs::TraceContext& trace);
  /// Writes a data-plane (lookup) reply through the fault injector;
  /// returns false when the injected fault closed the connection. Control
  /// replies bypass this — chaos must not blind the chaos orchestrator.
  bool send_data_reply(TcpStream& stream, MsgType type,
                       const WireWriter& reply);
  void register_metrics();

  serve::EmbeddingStore& store_;
  ServerConfig config_;
  /// Shared with the canary router's candidate-side stack, so the Stats
  /// RPC keeps covering all traffic while a canary routes part of it.
  std::shared_ptr<serve::ServeStats> service_stats_;
  std::shared_ptr<serve::ServeStats> batcher_stats_;
  /// Telemetry recorders are declared (and constructed) before the
  /// services that hold pointers into them: windowed_ feeds the RPC
  /// dispatch loop, batch_windowed_ rides BatcherConfig::windowed, and
  /// load_ rides LookupConfig::load (so the canary's candidate stack and
  /// the incumbent attribute into the same sketch).
  obs::WindowedStats windowed_;
  obs::WindowedStats batch_windowed_;
  std::unique_ptr<obs::KeyLoadRecorder> load_;
  obs::SloMonitor slo_;
  serve::LookupService service_;
  serve::AsyncLookupService async_;
  serve::DeploymentGate gate_;
  TcpListener listener_;
  obs::MetricsRegistry metrics_;
  /// Declared after metrics_ so its background thread (stopped in stop(),
  /// but belt-and-braces for destruction order) dies before the gauges it
  /// writes.
  std::unique_ptr<obs::DriftProbe> drift_;
  FaultInjector faults_;
  std::unique_ptr<ann::AnnService> ann_;
  /// TOPK observability: request count plus the tuning-relevant shape of
  /// each served search (latency, cells probed, shortlist size).
  std::atomic<std::uint64_t> topk_requests_{0};
  obs::LogHistogram topk_latency_us_;
  obs::LogHistogram topk_cells_probed_;
  obs::LogHistogram topk_shortlist_;

  struct Connection {
    std::thread thread;
    std::atomic<bool> done{false};  // set by the handler as it exits
  };
  /// Joins and drops finished handlers (every accept-loop iteration), so
  /// a long-running daemon does not retain one dead thread per
  /// connection ever served. stop() joins the rest unconditionally.
  void reap_connections(bool all);

  /// The canary-routed data plane: nullptr or inactive → the plain async
  /// path. The pointer is swapped under canary_mu_ by the control plane;
  /// handlers take a shared_ptr copy per request, so an abort/replace
  /// never invalidates a lookup in flight.
  std::shared_ptr<serve::CanaryRouter> active_canary() const;
  CanaryStatusReport canary_status_report() const;

  /// Serializes kTryPromote/kCanary* handling (audit-log appends are not
  /// internally synchronized, and gating is control-plane-rare anyway).
  std::mutex promote_mu_;
  mutable std::mutex canary_mu_;
  std::shared_ptr<serve::CanaryRouter> canary_;
  /// Status of a phase-1-rejected canary (no router to ask).
  CanaryStatusReport last_canary_status_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> shutdown_requested_{false};
  /// True while accept_loop() is executing — run() callers have no
  /// thread for stop() to join, so stop() waits on this flag before
  /// closing the listener out from under the loop.
  std::atomic<bool> accept_running_{false};
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace anchor::net
