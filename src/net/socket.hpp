// Minimal RAII TCP sockets for the serving front-end (POSIX, loopback-
// oriented). Just enough surface for a length-prefixed RPC protocol:
// bind/listen/accept with a pollable timeout, connect, and exact-count
// read/write. No TLS, no non-blocking writes — out-of-process consumers on
// the same host (or a trusted LAN) are the target, per ROADMAP's RPC rung.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace anchor::net {

/// Thrown on socket-level failures (connect refused, peer reset, EOF mid-
/// message). Protocol-level failures throw WireError/RpcError instead.
struct NetError : std::runtime_error {
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

/// A connected TCP stream. Move-only; closes on destruction.
class TcpStream {
 public:
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream();
  TcpStream(TcpStream&& other) noexcept;
  TcpStream& operator=(TcpStream&& other) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1"). Throws
  /// NetError on failure.
  static TcpStream connect(const std::string& host, std::uint16_t port);

  /// Writes exactly `n` bytes (TCP_NODELAY is set at construction, so
  /// frames flush immediately). Throws NetError on any short write.
  void write_all(const void* data, std::size_t n);

  /// Reads exactly `n` bytes. Throws NetError on EOF or error.
  void read_exact(void* data, std::size_t n);

  /// Like read_exact, but a clean EOF *before the first byte* returns
  /// false (peer closed between messages — the normal way a connection
  /// ends). EOF mid-buffer still throws.
  bool read_exact_or_eof(void* data, std::size_t n);

  /// Blocks until the stream is readable or `timeout_ms` elapsed. Lets a
  /// server poll a stop flag while idle connections sit open.
  bool wait_readable(int timeout_ms) const;

  /// Bounds every individual recv/send wait: a peer that stalls
  /// mid-message (accepted the length prefix, never sends the payload;
  /// stops draining a reply) surfaces as NetError after `ms` instead of
  /// blocking the handler thread forever. Any byte of progress restarts
  /// the clock, so slow-but-live peers are unaffected. 0 disables.
  void set_io_timeout(int ms);

  bool valid() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
};

/// A listening socket bound to 127.0.0.1. Move-only; closes on destruction.
class TcpListener {
 public:
  ~TcpListener();
  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on 127.0.0.1:`port`; port 0 picks an ephemeral port
  /// (read it back with port()). Throws NetError on failure.
  static TcpListener bind_loopback(std::uint16_t port);

  std::uint16_t port() const { return port_; }

  /// Accepts one connection, waiting at most `timeout_ms` (-1 = forever).
  /// Returns an invalid stream on timeout; throws NetError on failure.
  /// The accept loop polls with a finite timeout so a stop flag set by
  /// another thread is observed promptly.
  TcpStream accept(int timeout_ms);

  void close();

 private:
  explicit TcpListener(int fd, std::uint16_t port) : fd_(fd), port_(port) {}

  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace anchor::net
