// DistMult (Yang et al., 2015): bilinear-diagonal knowledge graph embedding,
// score(h, r, t) = Σ_j e_h[j]·w_r[j]·e_t[j], trained with margin ranking
// against uniformly corrupted triplets and entity-norm projection — the same
// protocol as our TransE so that stability comparisons isolate the *model
// family*. Included as an extension: the paper demonstrates the
// stability–memory tradeoff on TransE only and conjectures generality.
#pragma once

#include <cstdint>

#include "embed/embedding.hpp"
#include "kge/kg_data.hpp"

namespace anchor::kge {

struct DistMultConfig {
  std::size_t dim = 32;
  float margin = 1.0f;
  float learning_rate = 0.05f;
  std::size_t max_epochs = 120;
  std::size_t eval_every = 10;   // validation mean-rank cadence
  std::size_t patience = 3;      // early-stop patience (in evals)
  std::uint64_t seed = 1;
};

struct DistMultModel {
  embed::Embedding entities;
  embed::Embedding relations;

  /// Plausibility-oriented-low score: the *negative* trilinear product, so
  /// the shared evaluation convention (lower = more plausible) holds.
  double score(const Triplet& t) const;
};

DistMultModel train_distmult(const KgDataset& data,
                             const DistMultConfig& config);

}  // namespace anchor::kge
