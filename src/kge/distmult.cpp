#include "kge/distmult.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace anchor::kge {

namespace {

void normalize_row(float* row, std::size_t dim) {
  double norm = 0.0;
  for (std::size_t j = 0; j < dim; ++j) {
    norm += static_cast<double>(row[j]) * row[j];
  }
  norm = std::sqrt(norm);
  if (norm > 0.0) {
    const float inv = static_cast<float>(1.0 / norm);
    for (std::size_t j = 0; j < dim; ++j) row[j] *= inv;
  }
}

double trilinear(const DistMultModel& m, std::int32_t h, std::int32_t r,
                 std::int32_t t) {
  const float* eh = m.entities.row(static_cast<std::size_t>(h));
  const float* wr = m.relations.row(static_cast<std::size_t>(r));
  const float* et = m.entities.row(static_cast<std::size_t>(t));
  double acc = 0.0;
  for (std::size_t j = 0; j < m.entities.dim; ++j) {
    acc += static_cast<double>(eh[j]) * wr[j] * et[j];
  }
  return acc;
}

double validation_mean_rank(const DistMultModel& m,
                            const std::vector<Triplet>& valid) {
  double total_rank = 0.0;
  for (const auto& t : valid) {
    const double true_score = m.score(t);
    std::size_t rank = 1;
    for (std::size_t e = 0; e < m.entities.vocab_size; ++e) {
      if (static_cast<std::int32_t>(e) == t.tail) continue;
      Triplet c = t;
      c.tail = static_cast<std::int32_t>(e);
      if (m.score(c) < true_score) ++rank;
    }
    total_rank += static_cast<double>(rank);
  }
  return total_rank / static_cast<double>(valid.size());
}

}  // namespace

double DistMultModel::score(const Triplet& t) const {
  return -trilinear(*this, t.head, t.relation, t.tail);
}

DistMultModel train_distmult(const KgDataset& data,
                             const DistMultConfig& config) {
  ANCHOR_CHECK(!data.train.empty());
  const std::size_t dim = config.dim;
  Rng rng(config.seed);

  DistMultModel model;
  model.entities = embed::Embedding(data.num_entities, dim);
  model.relations = embed::Embedding(data.num_relations, dim);
  const float bound = 6.0f / std::sqrt(static_cast<float>(dim));
  for (auto& x : model.entities.data) {
    x = static_cast<float>(rng.uniform(-bound, bound));
  }
  for (auto& x : model.relations.data) {
    x = static_cast<float>(rng.uniform(-bound, bound));
  }

  DistMultModel best = model;
  double best_rank = 1e300;
  std::size_t strikes = 0;

  std::vector<std::size_t> order(data.train.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (std::size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    Rng erng = rng.fork(epoch);
    erng.shuffle(order);
    for (const std::size_t idx : order) {
      const Triplet& pos = data.train[idx];
      normalize_row(model.entities.row(static_cast<std::size_t>(pos.head)),
                    dim);
      normalize_row(model.entities.row(static_cast<std::size_t>(pos.tail)),
                    dim);

      Triplet neg = pos;
      if (erng.bernoulli(0.5)) {
        neg.head = static_cast<std::int32_t>(erng.index(data.num_entities));
      } else {
        neg.tail = static_cast<std::int32_t>(erng.index(data.num_entities));
      }
      normalize_row(model.entities.row(static_cast<std::size_t>(neg.head)),
                    dim);
      normalize_row(model.entities.row(static_cast<std::size_t>(neg.tail)),
                    dim);

      // Margin ranking on the trilinear product s: want s(pos) ≥ s(neg) + γ.
      const double s_pos = trilinear(model, pos.head, pos.relation, pos.tail);
      const double s_neg = trilinear(model, neg.head, neg.relation, neg.tail);
      if (s_pos >= s_neg + config.margin) continue;

      // ∂s/∂e_h = w_r∘e_t, ∂s/∂w_r = e_h∘e_t, ∂s/∂e_t = e_h∘w_r. Gradient
      // ascent on the positive triplet, descent on the negative one.
      auto update = [&](const Triplet& t, float direction) {
        float* eh = model.entities.row(static_cast<std::size_t>(t.head));
        float* wr = model.relations.row(static_cast<std::size_t>(t.relation));
        float* et = model.entities.row(static_cast<std::size_t>(t.tail));
        const float lr = config.learning_rate * direction;
        for (std::size_t j = 0; j < dim; ++j) {
          const float gh = wr[j] * et[j];
          const float gr = eh[j] * et[j];
          const float gt = eh[j] * wr[j];
          eh[j] += lr * gh;
          wr[j] += lr * gr;
          et[j] += lr * gt;
        }
      };
      update(pos, 1.0f);
      update(neg, -1.0f);
    }

    if ((epoch + 1) % config.eval_every == 0 && !data.valid.empty()) {
      const double rank = validation_mean_rank(model, data.valid);
      if (rank < best_rank) {
        best_rank = rank;
        best = model;
        strikes = 0;
      } else if (++strikes >= config.patience) {
        return best;
      }
    }
  }
  return data.valid.empty() ? model : best;
}

}  // namespace anchor::kge
