#include "kge/kg_data.hpp"

#include <cmath>
#include <unordered_set>

#include "util/rng.hpp"

namespace anchor::kge {

namespace {

std::uint64_t triplet_key(const Triplet& t) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(t.head))
          << 40) ^
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(t.relation))
          << 20) ^
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(t.tail));
}

}  // namespace

KgDataset generate_kg(const KgConfig& config) {
  ANCHOR_CHECK_GT(config.num_entities, 2u);
  ANCHOR_CHECK_GT(config.num_relations, 0u);
  Rng rng(config.seed);
  const std::size_t dim = config.latent_dim;

  la::Matrix entities(config.num_entities, dim);
  for (std::size_t i = 0; i < entities.size(); ++i) {
    entities.storage()[i] = rng.normal();
  }
  la::Matrix relations(config.num_relations, dim);
  for (std::size_t i = 0; i < relations.size(); ++i) {
    relations.storage()[i] = rng.normal(0.0, 0.8);
  }

  const std::size_t want = config.train_triplets + config.valid_triplets +
                           config.test_triplets;
  std::unordered_set<std::uint64_t> seen;
  std::vector<Triplet> all;
  all.reserve(want);
  std::vector<double> weights(config.num_entities);

  while (all.size() < want) {
    Triplet t;
    t.head = static_cast<std::int32_t>(rng.index(config.num_entities));
    t.relation = static_cast<std::int32_t>(rng.index(config.num_relations));
    // Tail ∝ exp(−‖g_h + v_r − g_t‖ / temperature).
    const double* gh = entities.row(static_cast<std::size_t>(t.head));
    const double* vr = relations.row(static_cast<std::size_t>(t.relation));
    for (std::size_t e = 0; e < config.num_entities; ++e) {
      const double* gt = entities.row(e);
      double dist = 0.0;
      for (std::size_t j = 0; j < dim; ++j) {
        const double diff = gh[j] + vr[j] - gt[j];
        dist += diff * diff;
      }
      weights[e] = std::exp(-std::sqrt(dist) / config.tail_temperature);
    }
    t.tail = static_cast<std::int32_t>(rng.categorical(weights));
    if (t.tail == t.head) continue;
    if (!seen.insert(triplet_key(t)).second) continue;
    all.push_back(t);
  }

  rng.shuffle(all);
  KgDataset ds;
  ds.num_entities = config.num_entities;
  ds.num_relations = config.num_relations;
  ds.train.assign(all.begin(),
                  all.begin() + static_cast<std::ptrdiff_t>(config.train_triplets));
  ds.valid.assign(
      all.begin() + static_cast<std::ptrdiff_t>(config.train_triplets),
      all.begin() + static_cast<std::ptrdiff_t>(config.train_triplets +
                                                config.valid_triplets));
  ds.test.assign(all.begin() + static_cast<std::ptrdiff_t>(
                                   config.train_triplets +
                                   config.valid_triplets),
                 all.end());
  return ds;
}

KgDataset subsample_train(const KgDataset& full, double drop_fraction,
                          std::uint64_t seed) {
  ANCHOR_CHECK_GE(drop_fraction, 0.0);
  ANCHOR_CHECK_LT(drop_fraction, 1.0);
  KgDataset out = full;
  Rng rng(seed);
  rng.shuffle(out.train);
  const auto keep = static_cast<std::size_t>(
      std::llround((1.0 - drop_fraction) *
                   static_cast<double>(out.train.size())));
  out.train.resize(keep);
  return out;
}

}  // namespace anchor::kge
