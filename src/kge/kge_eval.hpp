// Evaluation for knowledge graph embeddings (paper §6.1): link prediction
// with the unstable-rank@10 instability metric, and triplet classification
// with per-relation thresholds (shared across datasets by default, tuned
// per-dataset in the Appendix D.6 variant).
#pragma once

#include <cstdint>
#include <vector>

#include <functional>

#include "compress/quantize.hpp"
#include "kge/distmult.hpp"
#include "kge/transe.hpp"

namespace anchor::kge {

/// Model-agnostic triplet scorer; the shared convention across KGE models is
/// lower = more plausible (TransE distance, negated DistMult product).
using ScoreFn = std::function<double(const Triplet&)>;

struct LinkPredictionResult {
  /// Raw ranks of the true entity among all corruptions; two entries per
  /// test triplet (tail corruption then head corruption).
  std::vector<std::int32_t> ranks;
  double mean_rank = 0.0;
};

LinkPredictionResult link_prediction(const ScoreFn& score,
                                     std::size_t num_entities,
                                     const std::vector<Triplet>& test);

LinkPredictionResult link_prediction(const TransEModel& model,
                                     const std::vector<Triplet>& test);
LinkPredictionResult link_prediction(const DistMultModel& model,
                                     const std::vector<Triplet>& test);

/// unstable-rank@k: the fraction of rank entries changing by more than k
/// between two models (the paper uses k = 10).
double unstable_rank_at_k(const LinkPredictionResult& a,
                          const LinkPredictionResult& b, std::int32_t k = 10);

/// Positive + corrupted-negative triplet sets for classification; the same
/// seed produces identical negatives for both models being compared, as the
/// shared evaluation requires.
struct LabeledTriplets {
  std::vector<Triplet> triplets;
  std::vector<std::int32_t> labels;  // 1 = real, 0 = corrupted
};

LabeledTriplets make_classification_set(const std::vector<Triplet>& positives,
                                        std::size_t num_entities,
                                        std::uint64_t seed);

/// Per-relation score thresholds maximizing accuracy on a labeled validation
/// set (Socher et al., 2013 protocol). Relations unseen in validation get
/// the global median threshold.
std::vector<double> tune_thresholds(const ScoreFn& score,
                                    const LabeledTriplets& valid,
                                    std::size_t num_relations);

std::vector<double> tune_thresholds(const TransEModel& model,
                                    const LabeledTriplets& valid,
                                    std::size_t num_relations);
std::vector<double> tune_thresholds(const DistMultModel& model,
                                    const LabeledTriplets& valid,
                                    std::size_t num_relations);

/// Classifies triplets: positive iff score ≤ threshold[relation].
std::vector<std::int32_t> classify_triplets(
    const ScoreFn& score, const std::vector<Triplet>& triplets,
    const std::vector<double>& thresholds);

std::vector<std::int32_t> classify_triplets(
    const TransEModel& model, const std::vector<Triplet>& triplets,
    const std::vector<double>& thresholds);
std::vector<std::int32_t> classify_triplets(
    const DistMultModel& model, const std::vector<Triplet>& triplets,
    const std::vector<double>& thresholds);

/// Uniformly quantizes both embedding tables of a model. When `reference`
/// is non-null its clip thresholds are reused (the shared-threshold protocol
/// of Appendix C.2, applied to KGEs).
TransEModel quantize_model(const TransEModel& model, int bits,
                           const TransEModel* clip_reference = nullptr);
DistMultModel quantize_model(const DistMultModel& model, int bits,
                             const DistMultModel* clip_reference = nullptr);

}  // namespace anchor::kge
