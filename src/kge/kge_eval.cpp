#include "kge/kge_eval.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/rng.hpp"

namespace anchor::kge {

LinkPredictionResult link_prediction(const ScoreFn& score,
                                     std::size_t num_entities,
                                     const std::vector<Triplet>& test) {
  ANCHOR_CHECK(!test.empty());
  LinkPredictionResult result;
  result.ranks.reserve(2 * test.size());
  double total = 0.0;

  for (const auto& t : test) {
    const double true_score = score(t);
    // Tail corruption.
    std::int32_t tail_rank = 1;
    for (std::size_t e = 0; e < num_entities; ++e) {
      if (static_cast<std::int32_t>(e) == t.tail) continue;
      Triplet c = t;
      c.tail = static_cast<std::int32_t>(e);
      if (score(c) < true_score) ++tail_rank;
    }
    // Head corruption.
    std::int32_t head_rank = 1;
    for (std::size_t e = 0; e < num_entities; ++e) {
      if (static_cast<std::int32_t>(e) == t.head) continue;
      Triplet c = t;
      c.head = static_cast<std::int32_t>(e);
      if (score(c) < true_score) ++head_rank;
    }
    result.ranks.push_back(tail_rank);
    result.ranks.push_back(head_rank);
    total += tail_rank + head_rank;
  }
  result.mean_rank = total / static_cast<double>(result.ranks.size());
  return result;
}

LinkPredictionResult link_prediction(const TransEModel& model,
                                     const std::vector<Triplet>& test) {
  return link_prediction([&model](const Triplet& t) { return model.score(t); },
                         model.entities.vocab_size, test);
}

LinkPredictionResult link_prediction(const DistMultModel& model,
                                     const std::vector<Triplet>& test) {
  return link_prediction([&model](const Triplet& t) { return model.score(t); },
                         model.entities.vocab_size, test);
}

double unstable_rank_at_k(const LinkPredictionResult& a,
                          const LinkPredictionResult& b, std::int32_t k) {
  ANCHOR_CHECK_EQ(a.ranks.size(), b.ranks.size());
  ANCHOR_CHECK(!a.ranks.empty());
  std::size_t unstable = 0;
  for (std::size_t i = 0; i < a.ranks.size(); ++i) {
    if (std::abs(a.ranks[i] - b.ranks[i]) > k) ++unstable;
  }
  return 100.0 * static_cast<double>(unstable) /
         static_cast<double>(a.ranks.size());
}

LabeledTriplets make_classification_set(const std::vector<Triplet>& positives,
                                        std::size_t num_entities,
                                        std::uint64_t seed) {
  ANCHOR_CHECK(!positives.empty());
  Rng rng(seed);
  LabeledTriplets out;
  out.triplets.reserve(2 * positives.size());
  out.labels.reserve(2 * positives.size());
  for (const auto& t : positives) {
    out.triplets.push_back(t);
    out.labels.push_back(1);
    Triplet neg = t;
    // Corrupt the tail to a different entity (Socher et al. protocol).
    do {
      neg.tail = static_cast<std::int32_t>(rng.index(num_entities));
    } while (neg.tail == t.tail);
    out.triplets.push_back(neg);
    out.labels.push_back(0);
  }
  return out;
}

std::vector<double> tune_thresholds(const ScoreFn& score,
                                    const LabeledTriplets& valid,
                                    std::size_t num_relations) {
  ANCHOR_CHECK_EQ(valid.triplets.size(), valid.labels.size());
  // Gather (score, label) per relation.
  std::vector<std::vector<std::pair<double, std::int32_t>>> per_relation(
      num_relations);
  for (std::size_t i = 0; i < valid.triplets.size(); ++i) {
    const auto& t = valid.triplets[i];
    per_relation[static_cast<std::size_t>(t.relation)].emplace_back(
        score(t), valid.labels[i]);
  }

  std::vector<double> thresholds(num_relations, 0.0);
  std::vector<double> tuned;
  for (std::size_t r = 0; r < num_relations; ++r) {
    auto& scored = per_relation[r];
    if (scored.empty()) continue;
    std::sort(scored.begin(), scored.end());
    // Scan cut points: predict positive iff score ≤ T. The best T sits at a
    // midpoint between consecutive scores (or beyond either end).
    std::size_t total_pos = 0;
    for (const auto& [s, l] : scored) total_pos += (l == 1) ? 1 : 0;
    // Start with T below everything: all predicted negative.
    std::size_t correct = scored.size() - total_pos;
    std::size_t best_correct = correct;
    double best_t = scored.front().first - 1.0;
    for (std::size_t i = 0; i < scored.size(); ++i) {
      // Move T to include scored[i] as positive.
      correct += (scored[i].second == 1) ? 1 : 0;
      correct -= (scored[i].second == 0) ? 1 : 0;
      if (correct > best_correct) {
        best_correct = correct;
        best_t = (i + 1 < scored.size())
                     ? 0.5 * (scored[i].first + scored[i + 1].first)
                     : scored[i].first + 1.0;
      }
    }
    thresholds[r] = best_t;
    tuned.push_back(best_t);
  }
  // Relations without validation data fall back to the median tuned value.
  if (!tuned.empty()) {
    std::sort(tuned.begin(), tuned.end());
    const double median = tuned[tuned.size() / 2];
    for (std::size_t r = 0; r < num_relations; ++r) {
      if (per_relation[r].empty()) thresholds[r] = median;
    }
  }
  return thresholds;
}

std::vector<double> tune_thresholds(const TransEModel& model,
                                    const LabeledTriplets& valid,
                                    std::size_t num_relations) {
  return tune_thresholds(
      [&model](const Triplet& t) { return model.score(t); }, valid,
      num_relations);
}

std::vector<double> tune_thresholds(const DistMultModel& model,
                                    const LabeledTriplets& valid,
                                    std::size_t num_relations) {
  return tune_thresholds(
      [&model](const Triplet& t) { return model.score(t); }, valid,
      num_relations);
}

std::vector<std::int32_t> classify_triplets(
    const ScoreFn& score, const std::vector<Triplet>& triplets,
    const std::vector<double>& thresholds) {
  std::vector<std::int32_t> out;
  out.reserve(triplets.size());
  for (const auto& t : triplets) {
    const double threshold = thresholds[static_cast<std::size_t>(t.relation)];
    out.push_back(score(t) <= threshold ? 1 : 0);
  }
  return out;
}

std::vector<std::int32_t> classify_triplets(
    const TransEModel& model, const std::vector<Triplet>& triplets,
    const std::vector<double>& thresholds) {
  return classify_triplets(
      [&model](const Triplet& t) { return model.score(t); }, triplets,
      thresholds);
}

std::vector<std::int32_t> classify_triplets(
    const DistMultModel& model, const std::vector<Triplet>& triplets,
    const std::vector<double>& thresholds) {
  return classify_triplets(
      [&model](const Triplet& t) { return model.score(t); }, triplets,
      thresholds);
}

namespace {

/// Quantizes one embedding table, reusing the reference table's clip
/// threshold when given (the shared-threshold protocol of Appendix C.2).
embed::Embedding quantize_table(const embed::Embedding& table, int bits,
                                const embed::Embedding* ref) {
  compress::QuantizeConfig config;
  config.bits = bits;
  if (ref != nullptr) {
    config.clip_override = compress::optimal_clip_threshold(ref->data, bits);
  }
  return compress::uniform_quantize(table, config).embedding;
}

}  // namespace

TransEModel quantize_model(const TransEModel& model, int bits,
                           const TransEModel* clip_reference) {
  TransEModel out = model;
  if (bits == 32) return out;
  out.entities = quantize_table(
      model.entities, bits,
      clip_reference != nullptr ? &clip_reference->entities : nullptr);
  out.relations = quantize_table(
      model.relations, bits,
      clip_reference != nullptr ? &clip_reference->relations : nullptr);
  return out;
}

DistMultModel quantize_model(const DistMultModel& model, int bits,
                             const DistMultModel* clip_reference) {
  DistMultModel out = model;
  if (bits == 32) return out;
  out.entities = quantize_table(
      model.entities, bits,
      clip_reference != nullptr ? &clip_reference->entities : nullptr);
  out.relations = quantize_table(
      model.relations, bits,
      clip_reference != nullptr ? &clip_reference->relations : nullptr);
  return out;
}

}  // namespace anchor::kge
