#include "kge/transe.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace anchor::kge {

namespace {

void normalize_row(float* row, std::size_t dim) {
  double norm = 0.0;
  for (std::size_t j = 0; j < dim; ++j) norm += static_cast<double>(row[j]) * row[j];
  norm = std::sqrt(norm);
  if (norm > 0.0) {
    const float inv = static_cast<float>(1.0 / norm);
    for (std::size_t j = 0; j < dim; ++j) row[j] *= inv;
  }
}

double l1_score(const TransEModel& m, std::int32_t h, std::int32_t r,
                std::int32_t t) {
  const float* eh = m.entities.row(static_cast<std::size_t>(h));
  const float* rr = m.relations.row(static_cast<std::size_t>(r));
  const float* et = m.entities.row(static_cast<std::size_t>(t));
  double acc = 0.0;
  for (std::size_t j = 0; j < m.entities.dim; ++j) {
    acc += std::abs(static_cast<double>(eh[j]) + rr[j] - et[j]);
  }
  return acc;
}

/// Validation mean rank of the true tail among all entities (raw setting);
/// the early-stopping criterion, as in Bordes et al.
double validation_mean_rank(const TransEModel& m,
                            const std::vector<Triplet>& valid) {
  double total_rank = 0.0;
  for (const auto& t : valid) {
    const double true_score = l1_score(m, t.head, t.relation, t.tail);
    std::size_t rank = 1;
    for (std::size_t e = 0; e < m.entities.vocab_size; ++e) {
      if (static_cast<std::int32_t>(e) == t.tail) continue;
      if (l1_score(m, t.head, t.relation, static_cast<std::int32_t>(e)) <
          true_score) {
        ++rank;
      }
    }
    total_rank += static_cast<double>(rank);
  }
  return total_rank / static_cast<double>(valid.size());
}

}  // namespace

double TransEModel::score(const Triplet& t) const {
  return l1_score(*this, t.head, t.relation, t.tail);
}

TransEModel train_transe(const KgDataset& data, const TransEConfig& config) {
  ANCHOR_CHECK(!data.train.empty());
  const std::size_t dim = config.dim;
  Rng rng(config.seed);

  TransEModel model;
  model.entities = embed::Embedding(data.num_entities, dim);
  model.relations = embed::Embedding(data.num_relations, dim);
  const float bound = 6.0f / std::sqrt(static_cast<float>(dim));
  for (auto& x : model.entities.data) {
    x = static_cast<float>(rng.uniform(-bound, bound));
  }
  for (auto& x : model.relations.data) {
    x = static_cast<float>(rng.uniform(-bound, bound));
  }
  // Relations normalized once at init (Bordes et al.).
  for (std::size_t r = 0; r < data.num_relations; ++r) {
    normalize_row(model.relations.row(r), dim);
  }

  TransEModel best = model;
  double best_rank = 1e300;
  std::size_t strikes = 0;

  std::vector<std::size_t> order(data.train.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (std::size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    Rng erng = rng.fork(epoch);
    erng.shuffle(order);
    for (const std::size_t idx : order) {
      const Triplet& pos = data.train[idx];
      // Entities participating in this update are projected to the unit ball
      // first (the reference implementation's per-minibatch normalization).
      normalize_row(model.entities.row(static_cast<std::size_t>(pos.head)),
                    dim);
      normalize_row(model.entities.row(static_cast<std::size_t>(pos.tail)),
                    dim);

      Triplet neg = pos;
      if (erng.bernoulli(0.5)) {
        neg.head = static_cast<std::int32_t>(erng.index(data.num_entities));
      } else {
        neg.tail = static_cast<std::int32_t>(erng.index(data.num_entities));
      }
      normalize_row(model.entities.row(static_cast<std::size_t>(neg.head)),
                    dim);
      normalize_row(model.entities.row(static_cast<std::size_t>(neg.tail)),
                    dim);

      const double pos_score = model.score(pos);
      const double neg_score = model.score(neg);
      if (pos_score + config.margin <= neg_score) continue;  // margin satisfied

      // Subgradient of |·| is sign(·); push positive distances down and
      // negative distances up.
      auto update = [&](const Triplet& t, float direction) {
        float* eh = model.entities.row(static_cast<std::size_t>(t.head));
        float* rr = model.relations.row(static_cast<std::size_t>(t.relation));
        float* et = model.entities.row(static_cast<std::size_t>(t.tail));
        for (std::size_t j = 0; j < dim; ++j) {
          const float diff = eh[j] + rr[j] - et[j];
          const float sgn = diff > 0.0f ? 1.0f : (diff < 0.0f ? -1.0f : 0.0f);
          const float step = config.learning_rate * direction * sgn;
          eh[j] -= step;
          rr[j] -= step;
          et[j] += step;
        }
      };
      update(pos, 1.0f);   // decrease positive distance
      update(neg, -1.0f);  // increase negative distance
    }

    if ((epoch + 1) % config.eval_every == 0 && !data.valid.empty()) {
      const double rank = validation_mean_rank(model, data.valid);
      if (rank < best_rank) {
        best_rank = rank;
        best = model;
        strikes = 0;
      } else if (++strikes >= config.patience) {
        return best;
      }
    }
  }
  return data.valid.empty() ? model : best;
}

}  // namespace anchor::kge
