// TransE (Bordes et al., 2013) re-implementation following the paper's §6.1
// protocol: L1 distance, margin 1, uniform head/tail corruption, entity-norm
// projection after every update, SGD, and early stopping on validation mean
// rank with patience.
#pragma once

#include <cstdint>

#include "embed/embedding.hpp"
#include "kge/kg_data.hpp"

namespace anchor::kge {

struct TransEConfig {
  std::size_t dim = 32;
  float margin = 1.0f;
  float learning_rate = 0.01f;
  std::size_t max_epochs = 120;
  std::size_t eval_every = 10;        // validation mean-rank cadence
  std::size_t patience = 3;           // early-stop patience (in evals)
  std::uint64_t seed = 1;
};

/// Trained TransE model: entity and relation embeddings (same dimension, as
/// in the paper's footnote 11).
struct TransEModel {
  embed::Embedding entities;
  embed::Embedding relations;

  /// L1 score ‖e_h + r_r − e_t‖₁ (lower = more plausible).
  double score(const Triplet& t) const;
};

TransEModel train_transe(const KgDataset& data, const TransEConfig& config);

}  // namespace anchor::kge
