// Synthetic named-entity-recognition task (CoNLL-2003 analog).
//
// Tags: O, PER, ORG, LOC, MISC (the paper measures per-token disagreement
// over gold-entity tokens only, without BIO structure — §3). Entity words
// are drawn from gazetteers built out of latent-space topic clusters; entity
// spans are preceded by type-specific cue words so the context — what the
// BiLSTM consumes — is informative.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "text/latent_space.hpp"

namespace anchor::tasks {

inline constexpr std::int32_t kTagO = 0;
inline constexpr std::size_t kNumNerTags = 5;  // O + PER/ORG/LOC/MISC

/// Sequence-labeling dataset with per-token tags and fixed splits.
struct SequenceTaggingDataset {
  std::string name = "conll2003";
  std::size_t num_tags = kNumNerTags;
  std::vector<std::vector<std::int32_t>> train_sentences;
  std::vector<std::vector<std::int32_t>> train_tags;
  std::vector<std::vector<std::int32_t>> test_sentences;
  std::vector<std::vector<std::int32_t>> test_tags;

  /// Token-major flattened gold tags of the test split and the entity mask
  /// (tag != O) the instability metric is restricted to.
  std::vector<std::int32_t> flat_test_gold() const;
  std::vector<std::uint8_t> flat_test_entity_mask() const;
};

struct NerTaskConfig {
  std::size_t train_size = 1200;   // sentences
  std::size_t test_size = 600;
  std::size_t sentence_length = 14;
  double entity_start_prob = 0.18;  // per-position chance to open a span
  std::size_t max_span = 2;
  std::size_t gazetteer_size = 120;  // words per entity type
  std::size_t cue_words = 12;        // cue words per entity type
  double tag_noise = 0.02;           // per-token label noise
  std::uint64_t seed = 2003;
};

/// Generates the NER dataset from the latent space (base year only, as with
/// the sentiment tasks).
SequenceTaggingDataset make_ner_task(const text::LatentSpace& space,
                                     const NerTaskConfig& config);

}  // namespace anchor::tasks
