#include "tasks/ner.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/rng.hpp"

namespace anchor::tasks {

std::vector<std::int32_t> SequenceTaggingDataset::flat_test_gold() const {
  std::vector<std::int32_t> out;
  for (const auto& tags : test_tags) {
    out.insert(out.end(), tags.begin(), tags.end());
  }
  return out;
}

std::vector<std::uint8_t> SequenceTaggingDataset::flat_test_entity_mask()
    const {
  std::vector<std::uint8_t> out;
  for (const auto& tags : test_tags) {
    for (const std::int32_t t : tags) out.push_back(t != kTagO ? 1 : 0);
  }
  return out;
}

SequenceTaggingDataset make_ner_task(const text::LatentSpace& space,
                                     const NerTaskConfig& config) {
  ANCHOR_CHECK_GE(space.config().num_topics, 4u);
  Rng rng(config.seed);
  const std::size_t num_types = kNumNerTags - 1;

  // Gazetteers: entity type t draws words from the topic clusters with
  // topic ≡ t (mod 4), skipping the very head of the Zipf distribution so
  // entities are content-like words rather than stopword-like ones.
  std::vector<std::vector<std::int32_t>> gazetteer(num_types);
  std::vector<std::vector<std::int32_t>> cues(num_types);
  std::unordered_set<std::int32_t> entity_words;
  const std::size_t head_skip = space.vocab_size() / 20;
  for (std::size_t type = 0; type < num_types; ++type) {
    for (std::size_t w = head_skip; w < space.vocab_size(); ++w) {
      if (space.word_topics()[w] % num_types != type) continue;
      const auto id = static_cast<std::int32_t>(w);
      if (cues[type].size() < config.cue_words) {
        cues[type].push_back(id);
      } else if (gazetteer[type].size() < config.gazetteer_size) {
        gazetteer[type].push_back(id);
        entity_words.insert(id);
      } else {
        break;
      }
    }
    ANCHOR_CHECK_MSG(gazetteer[type].size() >= 8,
                     "gazetteer too small for type " << type
                                                     << "; increase vocab");
  }

  const DiscreteSampler neutral(space.unigram_prior());
  auto sample_filler = [&](Rng& r) {
    // One resample attempt keeps gazetteer words rare (not impossible) as
    // O-tagged fillers — realistic annotation ambiguity.
    std::size_t w = neutral.sample(r);
    if (entity_words.count(static_cast<std::int32_t>(w)) > 0) {
      w = neutral.sample(r);
    }
    return static_cast<std::int32_t>(w);
  };

  SequenceTaggingDataset ds;
  auto emit = [&](std::size_t count,
                  std::vector<std::vector<std::int32_t>>& sentences,
                  std::vector<std::vector<std::int32_t>>& tags) {
    sentences.reserve(count);
    tags.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      std::vector<std::int32_t> sentence, sentence_tags;
      sentence.reserve(config.sentence_length);
      sentence_tags.reserve(config.sentence_length);
      std::size_t pos = 0;
      while (pos < config.sentence_length) {
        const bool open_entity =
            rng.bernoulli(config.entity_start_prob) &&
            pos + 2 <= config.sentence_length;  // room for cue + 1 token
        if (!open_entity) {
          sentence.push_back(sample_filler(rng));
          sentence_tags.push_back(kTagO);
          ++pos;
          continue;
        }
        const std::size_t type = rng.index(num_types);
        // Cue word (tagged O) announces the entity type to the context.
        sentence.push_back(cues[type][rng.index(cues[type].size())]);
        sentence_tags.push_back(kTagO);
        ++pos;
        const std::size_t span =
            std::min(1 + rng.index(config.max_span),
                     config.sentence_length - pos);
        for (std::size_t s = 0; s < span; ++s) {
          sentence.push_back(
              gazetteer[type][rng.index(gazetteer[type].size())]);
          sentence_tags.push_back(static_cast<std::int32_t>(type + 1));
          ++pos;
        }
      }
      // Per-token tag noise.
      for (auto& t : sentence_tags) {
        if (rng.bernoulli(config.tag_noise)) {
          t = static_cast<std::int32_t>(rng.index(kNumNerTags));
        }
      }
      sentences.push_back(std::move(sentence));
      tags.push_back(std::move(sentence_tags));
    }
  };
  emit(config.train_size, ds.train_sentences, ds.train_tags);
  emit(config.test_size, ds.test_sentences, ds.test_tags);
  return ds;
}

}  // namespace anchor::tasks
