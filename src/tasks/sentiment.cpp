#include "tasks/sentiment.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace anchor::tasks {

namespace {

/// Word sampler biased along `direction` with strength `s`:
/// weight(w) ∝ prior(w) · exp(s · ⟨direction, g_w⟩).
DiscreteSampler biased_sampler(const text::LatentSpace& space,
                               const std::vector<double>& direction,
                               double s) {
  const std::size_t vocab = space.vocab_size();
  const std::size_t dim = space.latent_dim();
  std::vector<double> weights(vocab);
  double max_logit = -1e300;
  for (std::size_t w = 0; w < vocab; ++w) {
    const double* gw = space.word_vectors().row(w);
    double dot = 0.0;
    for (std::size_t j = 0; j < dim; ++j) dot += direction[j] * gw[j];
    weights[w] = s * dot;
    max_logit = std::max(max_logit, weights[w]);
  }
  for (std::size_t w = 0; w < vocab; ++w) {
    weights[w] = space.unigram_prior()[w] * std::exp(weights[w] - max_logit);
  }
  return DiscreteSampler(weights);
}

}  // namespace

TextClassificationDataset make_sentiment_task(
    const text::LatentSpace& space, const SentimentTaskConfig& config) {
  ANCHOR_CHECK_GT(config.sentence_length, 0u);
  Rng rng(config.seed);

  // Unit sentiment direction θ.
  std::vector<double> theta(space.latent_dim());
  double norm = 0.0;
  for (auto& x : theta) {
    x = rng.normal();
    norm += x * x;
  }
  norm = std::sqrt(norm);
  for (auto& x : theta) x /= norm;

  const DiscreteSampler positive =
      biased_sampler(space, theta, config.polarity_strength);
  std::vector<double> neg_theta(theta.size());
  for (std::size_t j = 0; j < theta.size(); ++j) neg_theta[j] = -theta[j];
  const DiscreteSampler negative =
      biased_sampler(space, neg_theta, config.polarity_strength);
  const DiscreteSampler neutral(space.unigram_prior());

  TextClassificationDataset ds;
  ds.name = config.name;

  auto emit = [&](std::size_t count,
                  std::vector<std::vector<std::int32_t>>& sentences,
                  std::vector<std::int32_t>& labels) {
    sentences.reserve(count);
    labels.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      const bool pos = rng.bernoulli(0.5);
      std::vector<std::int32_t> sentence(config.sentence_length);
      for (auto& tok : sentence) {
        const bool content = rng.bernoulli(config.content_ratio);
        const DiscreteSampler& sampler =
            content ? (pos ? positive : negative) : neutral;
        tok = static_cast<std::int32_t>(sampler.sample(rng));
      }
      bool label = pos;
      if (rng.bernoulli(config.label_noise)) label = !label;
      sentences.push_back(std::move(sentence));
      labels.push_back(label ? 1 : 0);
    }
  };
  emit(config.train_size, ds.train_sentences, ds.train_labels);
  emit(config.val_size, ds.val_sentences, ds.val_labels);
  emit(config.test_size, ds.test_sentences, ds.test_labels);
  return ds;
}

SentimentTaskConfig sentiment_profile(const std::string& name) {
  SentimentTaskConfig c;
  c.name = name;
  if (name == "sst2") {
    c.train_size = 3000;
    c.sentence_length = 12;
    c.content_ratio = 0.45;
    c.polarity_strength = 1.4;
    c.label_noise = 0.08;
    c.seed = 101;
  } else if (name == "mr") {
    // MR is the paper's least stable sentiment task: fewer content words,
    // more noise.
    c.train_size = 2400;
    c.sentence_length = 14;
    c.content_ratio = 0.30;
    c.polarity_strength = 1.1;
    c.label_noise = 0.12;
    c.seed = 202;
  } else if (name == "subj") {
    // Subj is the most stable: strong, clean signal.
    c.train_size = 3000;
    c.sentence_length = 16;
    c.content_ratio = 0.60;
    c.polarity_strength = 1.8;
    c.label_noise = 0.03;
    c.seed = 303;
  } else if (name == "mpqa") {
    // MPQA has short phrases.
    c.train_size = 2400;
    c.sentence_length = 5;
    c.content_ratio = 0.55;
    c.polarity_strength = 1.5;
    c.label_noise = 0.07;
    c.seed = 404;
  } else {
    ANCHOR_CHECK_MSG(false, "unknown sentiment task: " << name);
  }
  return c;
}

const std::vector<std::string>& sentiment_task_names() {
  static const std::vector<std::string> names = {"sst2", "mr", "subj", "mpqa"};
  return names;
}

}  // namespace anchor::tasks
