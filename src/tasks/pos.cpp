#include "tasks/pos.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace anchor::tasks {

SequenceTaggingDataset make_pos_task(const text::LatentSpace& space,
                                     const PosTaskConfig& config) {
  ANCHOR_CHECK_GE(space.config().num_topics, kNumPosTags);
  ANCHOR_CHECK_GE(config.ambiguous_fraction, 0.0);
  ANCHOR_CHECK_LE(config.ambiguous_fraction, 1.0);
  Rng rng(config.seed);

  // Primary tag per word: topic clusters partition into tag classes —
  // syntactic categories as distributional clusters.
  const std::size_t vocab = space.vocab_size();
  std::vector<std::int32_t> primary_tag(vocab);
  for (std::size_t w = 0; w < vocab; ++w) {
    primary_tag[w] =
        static_cast<std::int32_t>(space.word_topics()[w] % kNumPosTags);
  }

  // Ambiguous words: their realized tag is primary OR (primary+1) mod T,
  // decided by the *previous* token's tag parity — so context is required
  // to tag them and a pure per-word lookup caps out below 100%.
  std::vector<std::uint8_t> ambiguous(vocab, 0);
  for (std::size_t w = 0; w < vocab; ++w) {
    if (rng.bernoulli(config.ambiguous_fraction)) ambiguous[w] = 1;
  }

  const DiscreteSampler unigram(space.unigram_prior());

  SequenceTaggingDataset ds;
  ds.name = "pos";
  ds.num_tags = kNumPosTags;

  auto generate_split =
      [&](std::size_t count,
          std::vector<std::vector<std::int32_t>>& sentences,
          std::vector<std::vector<std::int32_t>>& tags) {
        for (std::size_t s = 0; s < count; ++s) {
          std::vector<std::int32_t> sent, tag_seq;
          std::int32_t prev_tag = 0;
          for (std::size_t t = 0; t < config.sentence_length; ++t) {
            const auto w = static_cast<std::int32_t>(unigram.sample(rng));
            std::int32_t tag = primary_tag[static_cast<std::size_t>(w)];
            if (ambiguous[static_cast<std::size_t>(w)] && (prev_tag % 2) == 1) {
              tag = static_cast<std::int32_t>(
                  (tag + 1) % static_cast<std::int32_t>(kNumPosTags));
            }
            std::int32_t observed = tag;
            if (rng.bernoulli(config.tag_noise)) {
              observed = static_cast<std::int32_t>(rng.index(kNumPosTags));
            }
            sent.push_back(w);
            tag_seq.push_back(observed);
            prev_tag = tag;  // the true tag drives the process, not the noise
          }
          sentences.push_back(std::move(sent));
          tags.push_back(std::move(tag_seq));
        }
      };
  generate_split(config.train_size, ds.train_sentences, ds.train_tags);
  generate_split(config.test_size, ds.test_sentences, ds.test_tags);
  return ds;
}

}  // namespace anchor::tasks
