// Synthetic part-of-speech tagging task.
//
// Wendlandt et al. (2018) — the paper's closest related work — study how
// *intrinsic* embedding instability surfaces as part-of-speech tagging
// error; this task lets the extension bench repeat their comparison inside
// our controlled setting and contrast it with the paper's *downstream
// prediction disagreement* lens.
//
// Construction: every word gets a primary tag from its latent topic (topics
// are partitioned into tag classes, mimicking how syntactic categories
// cluster distributionally). A configurable fraction of words is ambiguous:
// their surface tag depends on the *previous* token's tag (determiner-like
// behavior), so a tagger genuinely needs context, not just a per-word
// lookup. Instability is measured over ALL tokens (unlike NER's
// entity-token restriction).
#pragma once

#include <cstdint>

#include "tasks/ner.hpp"  // SequenceTaggingDataset

namespace anchor::tasks {

inline constexpr std::size_t kNumPosTags = 4;  // NOUN, VERB, ADJ, FUNC

struct PosTaskConfig {
  std::size_t train_size = 1200;  // sentences
  std::size_t test_size = 600;
  std::size_t sentence_length = 14;
  /// Fraction of the vocabulary whose tag is context-dependent.
  double ambiguous_fraction = 0.15;
  double tag_noise = 0.02;  // per-token label noise
  std::uint64_t seed = 1979;
};

/// Generates the POS dataset from the latent space (base year only, like
/// every other task: the data is fixed, only the embedding changes).
SequenceTaggingDataset make_pos_task(const text::LatentSpace& space,
                                     const PosTaskConfig& config);

}  // namespace anchor::tasks
