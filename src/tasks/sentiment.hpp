// Synthetic binary sentiment tasks (SST-2 / MR / Subj / MPQA analogs).
//
// Each task draws a sentiment direction θ in the latent space and generates
// labeled sentences whose content words are biased along ±θ, mixed with
// neutral filler words, plus label noise. A linear bag-of-words model over
// any embedding that recovers the latent structure can learn the task —
// the same regime as the paper's sentiment benchmarks. The four named tasks
// differ in size, sentence length, content ratio, and noise, mirroring how
// the paper's four datasets differ in difficulty and observed instability.
//
// Task data is generated from the *base* latent space only, so the dataset
// is identical for every embedding being compared (as in the paper, where
// SST-2 et al. are fixed while the embedding corpus changes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "text/latent_space.hpp"

namespace anchor::tasks {

/// A sentence-classification dataset with fixed train/val/test splits.
struct TextClassificationDataset {
  std::string name;
  std::size_t num_classes = 2;
  std::vector<std::vector<std::int32_t>> train_sentences;
  std::vector<std::int32_t> train_labels;
  std::vector<std::vector<std::int32_t>> val_sentences;
  std::vector<std::int32_t> val_labels;
  std::vector<std::vector<std::int32_t>> test_sentences;
  std::vector<std::int32_t> test_labels;
};

struct SentimentTaskConfig {
  std::string name = "sst2";
  std::size_t train_size = 3000;
  std::size_t val_size = 500;
  std::size_t test_size = 1000;
  std::size_t sentence_length = 12;
  double content_ratio = 0.5;   // fraction of sentiment-bearing tokens
  double polarity_strength = 1.5;  // bias of content words along ±θ
  double label_noise = 0.06;    // probability of flipping the gold label
  std::uint64_t seed = 101;     // task-specific; also seeds θ
};

/// Generates one sentiment dataset from the latent space.
TextClassificationDataset make_sentiment_task(const text::LatentSpace& space,
                                              const SentimentTaskConfig& config);

/// The paper's four sentiment benchmarks, as configured analogs:
/// "sst2", "mr", "subj", "mpqa" (§C.3.1). Difficulty ordering follows the
/// paper's observed instability ordering (Subj most stable, MR least).
SentimentTaskConfig sentiment_profile(const std::string& name);

/// Names of the four tasks in the paper's order.
const std::vector<std::string>& sentiment_task_names();

}  // namespace anchor::tasks
