#include "util/io.hpp"

#include <cstdio>
#include <fstream>

#include "util/check.hpp"

namespace anchor {

void write_bytes(const std::filesystem::path& path,
                 const std::vector<std::uint8_t>& data) {
  std::filesystem::create_directories(path.parent_path());
  // Write-then-rename so a crashed process never leaves a torn cache entry.
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    ANCHOR_CHECK_MSG(out.good(), "cannot open " << tmp);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
    ANCHOR_CHECK_MSG(out.good(), "short write to " << tmp);
  }
  std::filesystem::rename(tmp, path);
}

std::vector<std::uint8_t> read_bytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  ANCHOR_CHECK_MSG(in.good(), "cannot open " << path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> data(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(data.data()), size);
  ANCHOR_CHECK_MSG(in.good(), "short read from " << path);
  return data;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace anchor
