// Shared worker pool for batch-granularity parallelism.
//
// The library's hot loops (core/measures' per-query kNN scoring, row
// normalization, gate evaluation) parallelize over *independent* work items
// only: every item writes its own output slot and reductions happen on the
// calling thread in a fixed order, so results are bit-for-bit identical at
// any thread count — the same determinism discipline util/rng enforces for
// randomness. parallel_for uses a claim-by-atomic chunk loop that the caller
// drains too, so a saturated (or empty) pool can never deadlock a loop.
//
// One process-wide pool (global_pool) is shared by all measure computations;
// size it with ANCHOR_THREADS (default: hardware concurrency). Benches and
// tests may rebuild it via set_global_pool_threads to sweep thread counts.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace anchor::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Runs fn(i) for every i in [begin, end), spread over the workers and the
  /// calling thread. Blocks until every index has run. Iterations must be
  /// independent (no iteration may read another's output); under that
  /// contract results are deterministic at any pool size. Safe to call from
  /// inside a worker thread: the caller claims chunks itself and never
  /// waits on a helper that has not started, so a nested loop completes
  /// even with every worker busy. If fn throws, the throwing chunk's
  /// remaining iterations are skipped but all other chunks still run
  /// (later throws are swallowed), and the first exception is rethrown on
  /// the calling thread once the loop has fully quiesced.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Schedules `fn` on a worker and returns its future. Used to overlap
  /// coarse independent computations (e.g. the gate's EIS vs kNN measures).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// True when the calling thread is one of this process's pool workers.
  static bool on_worker_thread();

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// The process-wide pool. First use constructs it with ANCHOR_THREADS
/// workers when the variable is set and positive, else hardware concurrency.
ThreadPool& global_pool();

/// Number of workers in the global pool (constructing it on first use).
std::size_t global_pool_threads();

/// Rebuilds the global pool with `n` workers (0 restores the default
/// sizing). For benches and tests sweeping thread counts only — callers
/// must ensure no other thread is using the pool during the swap.
void set_global_pool_threads(std::size_t n);

}  // namespace anchor::util
