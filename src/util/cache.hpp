// Content-addressed artifact cache.
//
// Every expensive artifact in the reproduction pipeline — trained embedding
// matrices, downstream model predictions, measure values — is memoized on
// disk keyed by a human-readable config string. Benches can therefore run in
// any order: the first one to need an artifact computes and stores it, later
// ones load it. This mirrors the paper's artifact workflow (train once,
// analyze many times) and keeps re-runs cheap.
#pragma once

#include <filesystem>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "util/io.hpp"

namespace anchor {

/// On-disk key→blob store. Keys are arbitrary strings; file names are
/// `<fnv64 hex>.bin` plus a sidecar `.key` file recording the full key so
/// hash collisions are detected rather than silently served.
class ArtifactCache {
 public:
  /// Opens (creating if needed) a cache rooted at `dir`.
  explicit ArtifactCache(std::filesystem::path dir);

  /// Cache rooted at $ANCHOR_CACHE_DIR, or `fallback` when unset.
  static ArtifactCache from_env(const std::filesystem::path& fallback);

  bool contains(const std::string& key) const;

  /// Loads a typed vector stored under `key`; std::nullopt when absent.
  template <typename T>
  std::optional<std::vector<T>> load(const std::string& key) const {
    const auto path = blob_path(key);
    if (!validate_entry(key)) return std::nullopt;
    return from_blob<T>(read_bytes(path));
  }

  template <typename T>
  void store(const std::string& key, const std::vector<T>& value) const {
    write_key_sidecar(key);
    write_bytes(blob_path(key), to_blob(value));
  }

  /// Memoization helper: returns the cached value for `key`, or runs
  /// `compute`, stores its result, and returns it.
  template <typename T>
  std::vector<T> get_or_compute(
      const std::string& key,
      const std::function<std::vector<T>()>& compute) const {
    if (auto hit = load<T>(key)) return std::move(*hit);
    std::vector<T> value = compute();
    store(key, value);
    return value;
  }

  const std::filesystem::path& dir() const { return dir_; }

 private:
  std::filesystem::path blob_path(const std::string& key) const;
  std::filesystem::path key_path(const std::string& key) const;
  /// True when the blob exists and its sidecar records exactly `key`.
  bool validate_entry(const std::string& key) const;
  void write_key_sidecar(const std::string& key) const;

  std::filesystem::path dir_;
};

}  // namespace anchor
