#include "util/cache.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace anchor {

ArtifactCache::ArtifactCache(std::filesystem::path dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

ArtifactCache ArtifactCache::from_env(const std::filesystem::path& fallback) {
  if (const char* env = std::getenv("ANCHOR_CACHE_DIR"); env && *env) {
    return ArtifactCache(env);
  }
  return ArtifactCache(fallback);
}

std::filesystem::path ArtifactCache::blob_path(const std::string& key) const {
  std::ostringstream os;
  os << std::hex << fnv1a(key) << ".bin";
  return dir_ / os.str();
}

std::filesystem::path ArtifactCache::key_path(const std::string& key) const {
  std::ostringstream os;
  os << std::hex << fnv1a(key) << ".key";
  return dir_ / os.str();
}

bool ArtifactCache::validate_entry(const std::string& key) const {
  const auto blob = blob_path(key);
  const auto side = key_path(key);
  if (!std::filesystem::exists(blob) || !std::filesystem::exists(side)) {
    return false;
  }
  std::ifstream in(side, std::ios::binary);
  std::string recorded((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  ANCHOR_CHECK_MSG(recorded == key,
                   "cache hash collision: '" << recorded << "' vs '" << key
                                             << "'");
  return true;
}

void ArtifactCache::write_key_sidecar(const std::string& key) const {
  const auto side = key_path(key);
  std::filesystem::create_directories(side.parent_path());
  std::ofstream out(side, std::ios::binary | std::ios::trunc);
  ANCHOR_CHECK_MSG(out.good(), "cannot open " << side);
  out << key;
}

bool ArtifactCache::contains(const std::string& key) const {
  return validate_entry(key);
}

}  // namespace anchor
