#include "util/argparse.hpp"

#include <charconv>
#include <sstream>

#include "util/check.hpp"

namespace anchor {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

ArgParser& ArgParser::add_option(const std::string& name,
                                 const std::string& help,
                                 const std::string& default_value,
                                 bool required) {
  ANCHOR_CHECK_MSG(!options_.contains(name), "duplicate option");
  options_[name] = Option{help, default_value, required, false, false};
  return *this;
}

ArgParser& ArgParser::add_flag(const std::string& name,
                               const std::string& help) {
  ANCHOR_CHECK_MSG(!options_.contains(name), "duplicate option");
  options_[name] = Option{help, "", false, true, false};
  return *this;
}

ArgParser& ArgParser::add_positional(const std::string& name,
                                     const std::string& help, bool required) {
  // All required positionals must precede optional ones.
  if (!positionals_.empty() && !positionals_.back().required) {
    ANCHOR_CHECK_MSG(!required, "required positional after optional one");
  }
  positionals_.push_back(Positional{name, help, required, "", false});
  return *this;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return parse(args);
}

bool ArgParser::parse(const std::vector<std::string>& args) {
  std::size_t next_positional = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return false;
    }
    if (arg.rfind("--", 0) == 0) {
      std::string name = arg.substr(2);
      std::optional<std::string> inline_value;
      if (const auto eq = name.find('='); eq != std::string::npos) {
        inline_value = name.substr(eq + 1);
        name = name.substr(0, eq);
      }
      const auto it = options_.find(name);
      if (it == options_.end()) {
        error_ = "unknown option --" + name;
        return false;
      }
      Option& opt = it->second;
      if (opt.is_flag) {
        if (inline_value.has_value()) {
          error_ = "flag --" + name + " does not take a value";
          return false;
        }
        opt.value = "1";
      } else if (inline_value.has_value()) {
        opt.value = *inline_value;
      } else {
        if (i + 1 >= args.size()) {
          error_ = "option --" + name + " expects a value";
          return false;
        }
        opt.value = args[++i];
      }
      opt.seen = true;
      continue;
    }
    if (next_positional >= positionals_.size()) {
      error_ = "unexpected argument '" + arg + "'";
      return false;
    }
    positionals_[next_positional].value = arg;
    positionals_[next_positional].seen = true;
    ++next_positional;
  }

  for (const auto& [name, opt] : options_) {
    if (opt.required && !opt.seen) {
      error_ = "missing required option --" + name;
      return false;
    }
  }
  for (const auto& pos : positionals_) {
    if (pos.required && !pos.seen) {
      error_ = "missing required argument <" + pos.name + ">";
      return false;
    }
  }
  return true;
}

const ArgParser::Option* ArgParser::find(const std::string& name) const {
  const auto it = options_.find(name);
  return it == options_.end() ? nullptr : &it->second;
}

std::string ArgParser::get(const std::string& name) const {
  if (const Option* opt = find(name)) return opt->value;
  for (const auto& pos : positionals_) {
    if (pos.name == name) return pos.value;
  }
  ANCHOR_CHECK_MSG(false, "undeclared argument name");
  return {};
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  const std::string v = get(name);
  std::int64_t out = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  ANCHOR_CHECK_MSG(ec == std::errc{} && ptr == v.data() + v.size(),
                   "argument is not an integer");
  return out;
}

double ArgParser::get_double(const std::string& name) const {
  const std::string v = get(name);
  std::size_t consumed = 0;
  const double out = std::stod(v, &consumed);
  ANCHOR_CHECK_MSG(consumed == v.size(), "argument is not a number");
  return out;
}

bool ArgParser::get_flag(const std::string& name) const {
  const Option* opt = find(name);
  ANCHOR_CHECK_MSG(opt != nullptr && opt->is_flag, "undeclared flag name");
  return opt->seen;
}

bool ArgParser::has(const std::string& name) const {
  if (const Option* opt = find(name)) return opt->seen;
  for (const auto& pos : positionals_) {
    if (pos.name == name) return pos.seen;
  }
  return false;
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << "usage: " << program_;
  for (const auto& pos : positionals_) {
    os << (pos.required ? " <" + pos.name + ">" : " [" + pos.name + "]");
  }
  if (!options_.empty()) os << " [options]";
  os << "\n\n" << description_ << "\n";
  if (!positionals_.empty()) {
    os << "\narguments:\n";
    for (const auto& pos : positionals_) {
      os << "  " << pos.name << "  " << pos.help << "\n";
    }
  }
  if (!options_.empty()) {
    os << "\noptions:\n";
    for (const auto& [name, opt] : options_) {
      os << "  --" << name;
      if (!opt.is_flag) {
        os << " <value>";
        if (!opt.value.empty()) os << " (default: " << opt.value << ")";
        if (opt.required) os << " (required)";
      }
      os << "\n      " << opt.help << "\n";
    }
  }
  return os.str();
}

}  // namespace anchor
