// Plain-text table rendering for the bench harnesses.
//
// Every bench prints its table/figure in the same row/column layout as the
// paper; this helper keeps the formatting consistent and readable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace anchor {

/// Column-aligned text table. Rows are added as vectors of pre-formatted
/// cells; rendering right-pads each column to its widest cell.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders with a header separator line. Numeric formatting is the
  /// caller's responsibility (see format_double).
  void print(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision formatting helper ("%.3f"-style) for table cells.
std::string format_double(double value, int precision = 3);

}  // namespace anchor
