// Lightweight runtime-check macros used across the anchor library.
//
// All checks are active in every build type: the library is used for
// research experiments where silent corruption is far more expensive than
// the cost of a predictable branch.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace anchor {

/// Error thrown by ANCHOR_CHECK* macros on contract violation.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "ANCHOR_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace anchor

/// Aborts (throws anchor::CheckError) when `cond` is false.
#define ANCHOR_CHECK(cond)                                              \
  do {                                                                  \
    if (!(cond))                                                        \
      ::anchor::detail::check_failed(#cond, __FILE__, __LINE__, "");    \
  } while (0)

/// Same as ANCHOR_CHECK but appends a streamed message on failure.
#define ANCHOR_CHECK_MSG(cond, msg)                                     \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream os_;                                           \
      os_ << msg;                                                       \
      ::anchor::detail::check_failed(#cond, __FILE__, __LINE__,         \
                                     os_.str());                        \
    }                                                                   \
  } while (0)

#define ANCHOR_CHECK_EQ(a, b) \
  ANCHOR_CHECK_MSG((a) == (b), "lhs=" << (a) << " rhs=" << (b))
#define ANCHOR_CHECK_NE(a, b) \
  ANCHOR_CHECK_MSG((a) != (b), "both=" << (a))
#define ANCHOR_CHECK_LT(a, b) \
  ANCHOR_CHECK_MSG((a) < (b), "lhs=" << (a) << " rhs=" << (b))
#define ANCHOR_CHECK_LE(a, b) \
  ANCHOR_CHECK_MSG((a) <= (b), "lhs=" << (a) << " rhs=" << (b))
#define ANCHOR_CHECK_GT(a, b) \
  ANCHOR_CHECK_MSG((a) > (b), "lhs=" << (a) << " rhs=" << (b))
#define ANCHOR_CHECK_GE(a, b) \
  ANCHOR_CHECK_MSG((a) >= (b), "lhs=" << (a) << " rhs=" << (b))
