#include "util/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace anchor {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  ANCHOR_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  ANCHOR_CHECK_EQ(cells.size(), header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace anchor
