// Minimal binary serialization used by the artifact cache.
//
// Format: little-endian, a 8-byte magic, element-type tag, and a size prefix.
// Only trivially-copyable element types are supported; this is an internal
// cache format, not an interchange format.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace anchor {

/// Writes `data` to `path` atomically (write to temp file, then rename).
void write_bytes(const std::filesystem::path& path,
                 const std::vector<std::uint8_t>& data);

/// Reads the full content of `path`. Throws on missing file.
std::vector<std::uint8_t> read_bytes(const std::filesystem::path& path);

/// Serializes a vector of trivially copyable T with a type tag + length.
template <typename T>
std::vector<std::uint8_t> to_blob(const std::vector<T>& v);

/// Inverse of to_blob; validates the type tag and length.
template <typename T>
std::vector<T> from_blob(const std::vector<std::uint8_t>& blob);

/// Stable 64-bit FNV-1a hash used to derive cache file names from keys.
std::uint64_t fnv1a(const std::string& s);

namespace detail {

// One tag per supported element type; mismatches indicate a cache-key
// collision or a code change, both of which should fail loudly.
template <typename T>
constexpr std::uint32_t type_tag();
template <>
constexpr std::uint32_t type_tag<float>() { return 0xF107u; }
template <>
constexpr std::uint32_t type_tag<double>() { return 0xD0B1u; }
template <>
constexpr std::uint32_t type_tag<std::int32_t>() { return 0x1432u; }
template <>
constexpr std::uint32_t type_tag<std::uint8_t>() { return 0x0801u; }

}  // namespace detail
}  // namespace anchor

#include "util/io_inl.hpp"
