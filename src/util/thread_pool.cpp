#include "util/thread_pool.hpp"

#include <atomic>
#include <cstdlib>

#include "util/check.hpp"

namespace anchor::util {

namespace {

thread_local bool t_on_worker = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = threads == 0 ? 1 : threads;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::on_worker_thread() { return t_on_worker; }

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ANCHOR_CHECK_MSG(!stop_, "enqueue on a stopping ThreadPool");
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  t_on_worker = true;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  // Inline when there is nothing to spread the work over. Nested calls
  // from a worker thread are fine: the claim loop below never *waits* for
  // a helper to start, so a loop completes even when every other worker is
  // busy (its helpers then find an exhausted cursor and exit).
  if (n == 1 || size() <= 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // Chunked claim loop. Workers and the caller all fetch_add the shared
  // cursor; the caller drains too, so completion never depends on a worker
  // being free. State is shared_ptr-owned: a helper that wakes up after the
  // loop already finished just sees an exhausted cursor and drops its ref.
  struct LoopState {
    std::atomic<std::size_t> next;
    std::size_t end = 0;
    std::size_t chunk = 1;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::atomic<std::size_t> done{0};
    std::size_t total = 0;
    std::mutex m;
    std::condition_variable cv;
    std::exception_ptr error;  // first throw from fn, guarded by m
  };
  auto state = std::make_shared<LoopState>();
  state->next.store(begin);
  state->end = end;
  // ~4 chunks per participant keeps the tail balanced without per-index
  // scheduling overhead.
  state->chunk = std::max<std::size_t>(1, n / ((size() + 1) * 4));
  state->total = n;
  state->fn = &fn;

  const auto drain = [](LoopState& s) {
    for (;;) {
      const std::size_t i = s.next.fetch_add(s.chunk);
      if (i >= s.end) return;
      const std::size_t hi = std::min(i + s.chunk, s.end);
      // A throw from fn must not escape here: on a worker it would hit
      // std::terminate, and unwinding the caller would free the state and
      // fn while helpers still run. Stash the first one and keep counting
      // chunks so the caller's join completes, then rethrows it.
      try {
        for (std::size_t j = i; j < hi; ++j) (*s.fn)(j);
      } catch (...) {
        std::lock_guard<std::mutex> lock(s.m);
        if (!s.error) s.error = std::current_exception();
      }
      if (s.done.fetch_add(hi - i) + (hi - i) == s.total) {
        std::lock_guard<std::mutex> lock(s.m);
        s.cv.notify_all();
      }
    }
  };

  // The caller is one participant; enqueue up to size() more, but never
  // more helpers than there are chunks left after the caller's first claim.
  const std::size_t chunks = (n + state->chunk - 1) / state->chunk;
  const std::size_t helpers = std::min(size(), chunks - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    enqueue([state, drain] { drain(*state); });
  }
  drain(*state);
  std::unique_lock<std::mutex> lock(state->m);
  state->cv.wait(lock, [&] { return state->done.load() == state->total; });
  if (state->error) std::rethrow_exception(state->error);
}

namespace {

std::size_t default_threads() {
  if (const char* env = std::getenv("ANCHOR_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(default_threads());
  return *g_pool;
}

std::size_t global_pool_threads() { return global_pool().size(); }

void set_global_pool_threads(std::size_t n) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_pool = std::make_unique<ThreadPool>(n == 0 ? default_threads() : n);
}

}  // namespace anchor::util
