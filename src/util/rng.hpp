// Deterministic random-number generation for reproducible experiments.
//
// Every stochastic component in the library receives an explicit Rng (or a
// seed from which it constructs one); nothing reads global entropy. This is
// what lets the instability experiments attribute prediction churn to the
// *data* change rather than to incidental nondeterminism.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "util/check.hpp"

namespace anchor {

/// Thin wrapper over std::mt19937_64 with the sampling helpers used across
/// the library. Copyable; copies continue the same stream independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : gen_(seed) {}

  /// Derives a child generator whose stream is decorrelated from this one.
  /// Used to hand independent streams to sub-components (e.g. one per
  /// training epoch) without consuming unbounded state from the parent.
  Rng fork(std::uint64_t salt) {
    const std::uint64_t s = next_u64() ^ (salt * 0xbf58476d1ce4e5b9ULL);
    return Rng(s == 0 ? 0x2545f4914f6cdd1dULL : s);
  }

  std::uint64_t next_u64() { return gen_(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    ANCHOR_CHECK_LE(lo, hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(gen_);
  }

  /// Uniform index in [0, n).
  std::size_t index(std::size_t n) {
    ANCHOR_CHECK_GT(n, 0u);
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }

  bool bernoulli(double p) {
    ANCHOR_CHECK_GE(p, 0.0);
    ANCHOR_CHECK_LE(p, 1.0);
    return uniform() < p;
  }

  /// Samples an index from an (unnormalized, non-negative) weight vector.
  std::size_t categorical(const std::vector<double>& weights) {
    ANCHOR_CHECK(!weights.empty());
    double total = 0.0;
    for (double w : weights) {
      ANCHOR_CHECK_GE(w, 0.0);
      total += w;
    }
    ANCHOR_CHECK_GT(total, 0.0);
    double r = uniform(0.0, total);
    for (std::size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0.0) return i;
    }
    return weights.size() - 1;
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), gen_);
  }

  /// Fills `out` with i.i.d. N(mean, stddev) samples.
  template <typename T>
  void fill_normal(std::vector<T>& out, double mean, double stddev) {
    for (auto& x : out) x = static_cast<T>(normal(mean, stddev));
  }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

/// Precomputed alias-free sampler for a fixed categorical distribution.
/// Uses an inverse-CDF table; O(log n) per draw, deterministic given the Rng.
class DiscreteSampler {
 public:
  explicit DiscreteSampler(const std::vector<double>& weights) {
    ANCHOR_CHECK(!weights.empty());
    cdf_.reserve(weights.size());
    double acc = 0.0;
    for (double w : weights) {
      ANCHOR_CHECK_GE(w, 0.0);
      acc += w;
      cdf_.push_back(acc);
    }
    ANCHOR_CHECK_GT(acc, 0.0);
    total_ = acc;
  }

  std::size_t sample(Rng& rng) const {
    const double r = rng.uniform(0.0, total_);
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), r);
    if (it == cdf_.end()) --it;
    return static_cast<std::size_t>(it - cdf_.begin());
  }

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
  double total_ = 0.0;
};

}  // namespace anchor
