// Small command-line argument parser for the tools/ binaries.
//
// Supports `--name value`, `--name=value`, boolean `--flag`, typed access
// with defaults, required options, and generated usage text. Unknown options
// are an error (typos should fail loudly in experiment scripts).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace anchor {

class ArgParser {
 public:
  /// `program` and `description` feed the usage text.
  ArgParser(std::string program, std::string description);

  /// Declares a value option. `default_value` empty + required=true means
  /// parse() fails when the option is missing.
  ArgParser& add_option(const std::string& name, const std::string& help,
                        const std::string& default_value = "",
                        bool required = false);

  /// Declares a boolean flag (false unless present).
  ArgParser& add_flag(const std::string& name, const std::string& help);

  /// Declares a positional argument (filled in declaration order).
  ArgParser& add_positional(const std::string& name, const std::string& help,
                            bool required = true);

  /// Parses argv (excluding argv[0]). Returns false and fills error() on any
  /// problem; `--help` sets help_requested() and returns false with no error.
  bool parse(const std::vector<std::string>& args);
  bool parse(int argc, const char* const* argv);

  bool help_requested() const { return help_requested_; }
  const std::string& error() const { return error_; }
  std::string usage() const;

  /// Accessors. get() aborts (ANCHOR_CHECK) on undeclared names so typos in
  /// the *code* are caught immediately too.
  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_flag(const std::string& name) const;
  bool has(const std::string& name) const;

 private:
  struct Option {
    std::string help;
    std::string value;
    bool required = false;
    bool is_flag = false;
    bool seen = false;
  };
  struct Positional {
    std::string name;
    std::string help;
    bool required = true;
    std::string value;
    bool seen = false;
  };

  const Option* find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<Positional> positionals_;
  bool help_requested_ = false;
  std::string error_;
};

}  // namespace anchor
