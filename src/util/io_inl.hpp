// Template implementations for io.hpp. Do not include directly.
#pragma once

#include <cstring>
#include <type_traits>

#include "util/check.hpp"

namespace anchor {

inline constexpr std::uint64_t kBlobMagic = 0x414e43485f424c42ULL;  // "ANCH_BLB"

template <typename T>
std::vector<std::uint8_t> to_blob(const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::uint64_t magic = kBlobMagic;
  const std::uint32_t tag = detail::type_tag<T>();
  const std::uint64_t count = v.size();
  std::vector<std::uint8_t> out(sizeof(magic) + sizeof(tag) + sizeof(count) +
                                v.size() * sizeof(T));
  std::uint8_t* p = out.data();
  std::memcpy(p, &magic, sizeof(magic));
  p += sizeof(magic);
  std::memcpy(p, &tag, sizeof(tag));
  p += sizeof(tag);
  std::memcpy(p, &count, sizeof(count));
  p += sizeof(count);
  if (!v.empty()) std::memcpy(p, v.data(), v.size() * sizeof(T));
  return out;
}

template <typename T>
std::vector<T> from_blob(const std::vector<std::uint8_t>& blob) {
  static_assert(std::is_trivially_copyable_v<T>);
  constexpr std::size_t header =
      sizeof(std::uint64_t) + sizeof(std::uint32_t) + sizeof(std::uint64_t);
  ANCHOR_CHECK_GE(blob.size(), header);
  std::uint64_t magic = 0;
  std::uint32_t tag = 0;
  std::uint64_t count = 0;
  const std::uint8_t* p = blob.data();
  std::memcpy(&magic, p, sizeof(magic));
  p += sizeof(magic);
  std::memcpy(&tag, p, sizeof(tag));
  p += sizeof(tag);
  std::memcpy(&count, p, sizeof(count));
  p += sizeof(count);
  ANCHOR_CHECK_EQ(magic, kBlobMagic);
  ANCHOR_CHECK_EQ(tag, detail::type_tag<T>());
  ANCHOR_CHECK_EQ(blob.size(), header + count * sizeof(T));
  std::vector<T> v(count);
  if (count > 0) std::memcpy(v.data(), p, count * sizeof(T));
  return v;
}

}  // namespace anchor
