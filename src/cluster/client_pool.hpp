// A shared, mutex-guarded pool of ClusterClients for the router's data
// plane.
//
// A ClusterClient is deliberately single-threaded (blocking sockets, an
// in-order reply protocol per connection), so the pre-pool router gave
// every client connection its own instance — and with it a private
// backend-socket set, private health guesses, and no shared latency
// signal. The pool inverts that: N instances are constructed up front
// over one shared ClusterHealth / HedgePolicy / ClusterCounters, and
// every router connection handler borrows one per lookup, round-robin
// with per-slot locking. Concurrency is capped at the pool size
// (excess handlers queue on the slot mutexes, which is back-pressure,
// not failure), backend fan-in is bounded at pool_size connections per
// replica, and — the part the hedging tentpole needs — every borrowed
// client records RTTs into the SAME per-shard histograms, so the p99
// the hedge delay derives from is the router's merged view, not one
// connection's.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "cluster/cluster_client.hpp"

namespace anchor::cluster {

class ClusterClientPool {
 public:
  /// Builds `size` clients, all sharing `health`, `hedge`, and
  /// `counters` (each may be nullptr to disable that facility).
  ClusterClientPool(std::size_t size, const ClusterConfig& config,
                    std::shared_ptr<ClusterHealth> health,
                    std::shared_ptr<HedgePolicy> hedge,
                    std::shared_ptr<ClusterCounters> counters);

  std::size_t size() const { return slots_.size(); }

  /// Runs `fn(ClusterClient&)` on a round-robin-chosen instance, holding
  /// that slot's lock for the duration. Returns fn's result.
  template <typename Fn>
  auto with_client(Fn&& fn) {
    Slot& slot = *slots_[next_.fetch_add(1, std::memory_order_relaxed) %
                        slots_.size()];
    std::lock_guard<std::mutex> lock(slot.mu);
    return fn(*slot.client);
  }

  /// Sends kShutdown to every backend replica once (through slot 0) —
  /// forwarding a shutdown N times would race the backends' exits.
  void shutdown_backends();

 private:
  struct Slot {
    std::mutex mu;
    std::unique_ptr<ClusterClient> client;
  };
  std::vector<std::unique_ptr<Slot>> slots_;
  std::atomic<std::uint64_t> next_{0};
};

}  // namespace anchor::cluster
