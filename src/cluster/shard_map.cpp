#include "cluster/shard_map.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"
#include "util/io.hpp"

namespace anchor::cluster {

ShardMap::ShardMap(std::uint64_t version, std::vector<ShardSpec> shards)
    : version_(version), shards_(std::move(shards)) {
  ANCHOR_CHECK_MSG(!shards_.empty(), "ShardMap needs at least one shard");
  std::uint64_t expect_begin = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const ShardSpec& s = shards_[i];
    ANCHOR_CHECK_MSG(!s.replicas.empty(),
                     "shard " << i << " has an empty replica set");
    for (std::size_t r = 0; r < s.replicas.size(); ++r) {
      ANCHOR_CHECK_MSG(!s.replicas[r].host.empty(),
                       "shard " << i << " replica " << r
                                << " has an empty host");
      ANCHOR_CHECK_MSG(s.replicas[r].port != 0,
                       "shard " << i << " replica " << r << " has port 0");
      for (std::size_t q = 0; q < r; ++q) {
        ANCHOR_CHECK_MSG(!(s.replicas[q] == s.replicas[r]),
                         "shard " << i << " lists replica "
                                  << s.replicas[r].address()
                                  << " twice — a hedge to the duplicate "
                                     "would race itself");
      }
    }
    ANCHOR_CHECK_MSG(s.row_begin == expect_begin,
                     "shard " << i << " row range must start at "
                              << expect_begin << " (contiguous coverage), got "
                              << s.row_begin);
    ANCHOR_CHECK_MSG(s.row_end > s.row_begin,
                     "shard " << i << " owns an empty row range");
    expect_begin = s.row_end;
  }
}

std::size_t ShardMap::num_replicas_total() const {
  std::size_t n = 0;
  for (const ShardSpec& s : shards_) n += s.replicas.size();
  return n;
}

std::string ShardMap::serialize() const {
  std::ostringstream os;
  os << "v" << version_;
  for (const ShardSpec& s : shards_) {
    os << ",";
    for (std::size_t r = 0; r < s.replicas.size(); ++r) {
      if (r != 0) os << "|";
      os << s.replicas[r].host << ":" << s.replicas[r].port;
    }
    os << ":" << s.row_begin << ":" << s.row_end;
  }
  return os.str();
}

namespace {

std::uint64_t parse_u64(const std::string& token, const std::string& what) {
  if (token.empty() ||
      token.find_first_not_of("0123456789") != std::string::npos) {
    throw std::runtime_error("ShardMap: bad " + what + " '" + token + "'");
  }
  try {
    return std::stoull(token);
  } catch (const std::exception&) {
    throw std::runtime_error("ShardMap: " + what + " overflows: '" + token +
                             "'");
  }
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= s.size()) {
    std::size_t end = s.find(sep, begin);
    if (end == std::string::npos) end = s.size();
    out.push_back(s.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

Endpoint parse_endpoint(const std::string& host, const std::string& port_tok,
                        const std::string& entry) {
  Endpoint ep;
  ep.host = host;
  const std::uint64_t port = parse_u64(port_tok, "port");
  if (port == 0 || port > 65535) {
    throw std::runtime_error("ShardMap: port out of range in '" + entry + "'");
  }
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

}  // namespace

ShardMap ShardMap::parse(const std::string& text) {
  const std::vector<std::string> parts = split(text, ',');
  if (parts.empty() || parts[0].size() < 2 || parts[0][0] != 'v') {
    throw std::runtime_error(
        "ShardMap: expected leading version token 'v<N>', got '" +
        (parts.empty() ? std::string() : parts[0]) + "'");
  }
  const std::uint64_t version = parse_u64(parts[0].substr(1), "map version");
  std::vector<ShardSpec> shards;
  for (std::size_t i = 1; i < parts.size(); ++i) {
    // Replica sets separated by '|': every sub-entry is host:port except
    // the last, which carries the shard's row range too. A v1 entry has
    // no '|' and parses as a single-replica set.
    const std::vector<std::string> reps = split(parts[i], '|');
    ShardSpec spec;
    for (std::size_t r = 0; r + 1 < reps.size(); ++r) {
      const std::vector<std::string> f = split(reps[r], ':');
      if (f.size() != 2) {
        throw std::runtime_error(
            "ShardMap: replica entry must be host:port, got '" + reps[r] +
            "' in '" + parts[i] + "'");
      }
      spec.replicas.push_back(parse_endpoint(f[0], f[1], parts[i]));
    }
    const std::vector<std::string> f = split(reps.back(), ':');
    if (f.size() != 4) {
      throw std::runtime_error(
          "ShardMap: shard entry must be "
          "host:port[|host:port...]:row_begin:row_end, got '" +
          parts[i] + "'");
    }
    spec.replicas.push_back(parse_endpoint(f[0], f[1], parts[i]));
    spec.row_begin = parse_u64(f[2], "row_begin");
    spec.row_end = parse_u64(f[3], "row_end");
    shards.push_back(std::move(spec));
  }
  try {
    return ShardMap(version, std::move(shards));
  } catch (const CheckError& e) {
    throw std::runtime_error(std::string("ShardMap: ") + e.what());
  }
}

std::size_t ShardMap::shard_of_id(std::uint64_t id) const {
  ANCHOR_CHECK_LT(id, total_rows());
  // Ranges are contiguous and sorted: first shard whose row_end exceeds id.
  const auto it = std::upper_bound(
      shards_.begin(), shards_.end(), id,
      [](std::uint64_t v, const ShardSpec& s) { return v < s.row_end; });
  return static_cast<std::size_t>(it - shards_.begin());
}

std::uint64_t ShardMap::local_id(std::uint64_t id) const {
  return id - shards_[shard_of_id(id)].row_begin;
}

std::size_t ShardMap::shard_of_word(const std::string& word) const {
  return static_cast<std::size_t>(anchor::fnv1a(word) % shards_.size());
}

bool ShardMap::operator==(const ShardMap& other) const {
  if (version_ != other.version_ || shards_.size() != other.shards_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const ShardSpec& a = shards_[i];
    const ShardSpec& b = other.shards_[i];
    if (a.replicas != b.replicas || a.row_begin != b.row_begin ||
        a.row_end != b.row_end) {
      return false;
    }
  }
  return true;
}

}  // namespace anchor::cluster
