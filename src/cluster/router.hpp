// Stateless shard-routing front-end: one TCP server speaking the standard
// wire protocol to unmodified net::Clients, fanned out over N
// anchor_served backends by a ShardMap.
//
// Data plane: all connection handlers share one round-robin POOL of
// mutex-guarded ClusterClients (cluster/client_pool.hpp), so backend
// fan-in is bounded by the pool size and every lookup feeds the same
// shared ClusterHealth (per-replica liveness + in-flight load) and
// HedgePolicy (per-shard RTT histograms). A background probe loop pings
// every REPLICA per interval, so a dead backend degrades requests for at
// most one exchange before everyone routes around it — and with a second
// replica per shard, "routes around it" means failover, not degradation:
// the degraded flag only fires when a shard's whole replica set is down.
//
// Control plane — coordinated rollout: ROLLOUT_START walks the shards IN
// ORDER, promoting the candidate on shard i+1 only after shard i's
// decision landed (offline gated promote, or a full per-shard canary the
// router polls to its terminal state). On the first failing shard the
// rollout stops and rolls the already-promoted shards BACK to their
// incumbents, so the cluster never converges on a bad refresh and never
// serves a mixed-version majority longer than one in-flight shard
// decision. ROLLOUT_STATUS reports the per-shard state machine;
// ROLLOUT_ABORT stops between shards (draining an in-flight canary) and
// rolls back. Every per-shard outcome appends to the router's own audit
// CSV (same format as the gate's).
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/client_pool.hpp"
#include "cluster/cluster_client.hpp"
#include "cluster/shard_map.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace anchor::cluster {

struct RouterConfig {
  /// 0 = ephemeral; read the bound port back with Router::port().
  std::uint16_t port = 0;
  ShardMap map;
  /// Accept/handler poll granularity (bounds stop() latency).
  int poll_interval_ms = 100;
  /// Client-facing per-recv/send stall bound (same role as ServerConfig's).
  int io_timeout_ms = 2000;
  /// Backend-facing stall bound: how long a lookup waits on a hung shard
  /// before its rows degrade.
  int backend_io_timeout_ms = 2000;
  /// Health-probe cadence; 0 disables the probe loop (tests drive health
  /// by hand).
  int probe_interval_ms = 500;
  /// Poll cadence for a per-shard canary during a rollout.
  int rollout_poll_ms = 50;
  /// Data-plane ClusterClient pool size: concurrent scatter-gathers are
  /// capped here (excess handlers queue), and each backend replica sees
  /// at most this many router connections.
  std::size_t pool_size = 4;
  /// Failover budget per shard per lookup (see ClusterConfig).
  int max_attempts = 3;
  /// Hedged reads on/off plus the p99-derived delay policy.
  bool hedge = true;
  HedgePolicy::Config hedge_policy;
  /// Forward a client kShutdown to every backend before stopping — lets
  /// one RPC tear down a whole demo/CI cluster.
  bool forward_shutdown = false;
  /// Per-shard rollout outcomes append here (append_audit_csv format).
  std::filesystem::path audit_log;
  /// Windowed-telemetry ring shape for the router's own rolling view
  /// (recorded per cluster lookup by the pooled clients).
  obs::WindowedConfig windowed;
  /// SLO burn-rate policy over the router window (`--slo-p99-us`,
  /// `--slo-error-budget` on the daemon).
  obs::SloConfig slo;
  /// Router-side heavy-hitter sketch budget over GLOBAL ids (`--hot-keys`);
  /// 0 disables router key-load attribution (HEAT still proxies the
  /// backends' merged view).
  std::size_t hot_key_capacity = 512;
  /// Router heat-map fanout over [0, map.total_rows()) (`--heat-buckets`).
  std::size_t heat_buckets = 256;
};

class Router {
 public:
  explicit Router(RouterConfig config);
  ~Router();
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  std::uint16_t port() const { return listener_.port(); }

  void run();    // serve on the calling thread until stop()
  void start();  // serve on a background thread
  void stop();   // idempotent; joins every thread

  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

  const ShardMap& map() const { return config_.map; }
  const ClusterHealth& health() const { return *health_; }
  /// Shared hedge policy (per-shard RTT histograms the hedge delay is
  /// derived from) and availability counters — for tests/monitoring.
  const HedgePolicy& hedge_policy() const { return *hedge_; }
  const ClusterCounters& counters() const { return *counters_; }
  net::RolloutStatusReport rollout_status() const;

  /// The router's own metrics plane: scatter-gather latency histogram,
  /// request/degradation counters, shards-alive and rollout-state gauges.
  /// The kMetrics RPC and the daemon's Prometheus endpoint render
  /// snapshots of this (disjoint from the backends' registries — scrape
  /// each process separately, or merge histograms downstream).
  obs::MetricsRegistry& metrics_registry() { return metrics_; }

 private:
  void accept_loop();
  void probe_loop();
  void handle_connection(net::TcpStream stream);
  /// `trace` is the request frame's trace context (invalid when
  /// untraced): lookups hand it to the borrowed ClusterClient so the
  /// scatter / per-shard RTT / merge spans and the backends' frames join
  /// the trace.
  bool dispatch(net::TcpStream& stream, net::MsgType type,
                const std::vector<std::uint8_t>& payload,
                const obs::TraceContext& trace);
  void register_metrics();

  /// Starts the rollout thread; returns a non-empty error when one is
  /// already running or the request is malformed.
  std::string start_rollout(const std::string& candidate, std::uint8_t mode,
                            double fraction, double shadow_rate);
  void rollout_body(std::string candidate, std::uint8_t mode, double fraction,
                    double shadow_rate);
  /// Gated or canaried promote of `candidate` on one shard; fills
  /// *old_version with the incumbent it displaced on success.
  bool rollout_shard(std::size_t shard, const std::string& candidate,
                     std::uint8_t mode, double fraction, double shadow_rate,
                     std::string* old_version, std::string* detail);
  void set_shard_state(std::size_t shard, net::ShardRolloutState state,
                       const std::string& detail);
  /// `candidate` is passed through (not re-read from rollout_) so the
  /// terminal audit row can never pick up a successor rollout's
  /// candidate if ROLLOUT_START lands between the state write and the
  /// audit append.
  void finish_rollout(net::RolloutState terminal, const std::string& candidate,
                      const std::string& reason);
  void audit_shard(std::size_t shard, const std::string& candidate,
                   bool promoted, const std::string& detail);

  RouterConfig config_;
  std::shared_ptr<ClusterHealth> health_;
  std::shared_ptr<HedgePolicy> hedge_;
  std::shared_ptr<ClusterCounters> counters_;
  /// Router-side windowed/key-load telemetry, fed by the pooled clients
  /// (declared before pool_, whose ClusterConfig carries pointers in).
  obs::WindowedStats windowed_;
  std::unique_ptr<obs::KeyLoadRecorder> load_;
  obs::SloMonitor slo_;
  std::unique_ptr<ClusterClientPool> pool_;
  net::TcpListener listener_;
  obs::MetricsRegistry metrics_;
  /// Owned hot-path metrics (registry references are stable for its
  /// lifetime; handlers update them lock-free).
  obs::Counter* requests_total_ = nullptr;
  obs::Counter* lookups_total_ = nullptr;
  obs::Counter* degraded_total_ = nullptr;
  obs::LogHistogram* lookup_latency_ = nullptr;
  obs::Counter* topk_total_ = nullptr;
  obs::Counter* topk_partial_ = nullptr;
  obs::LogHistogram* topk_latency_ = nullptr;

  std::atomic<bool> stop_{false};
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> accept_running_{false};
  std::thread accept_thread_;
  std::thread probe_thread_;

  struct Connection {
    std::thread thread;
    std::atomic<bool> done{false};
  };
  void reap_connections(bool all);
  std::mutex conn_mu_;
  std::vector<std::unique_ptr<Connection>> connections_;

  /// Rollout state machine, mutex-guarded (control-plane-rare). The
  /// report is the single source of truth ROLLOUT_STATUS serializes.
  mutable std::mutex rollout_mu_;
  net::RolloutStatusReport rollout_;
  std::atomic<bool> rollout_abort_{false};
  std::thread rollout_thread_;
};

}  // namespace anchor::cluster
