#include "cluster/cluster_client.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <map>

#include "util/check.hpp"

namespace anchor::cluster {

// ---- ClusterHealth -----------------------------------------------------

ClusterHealth::ClusterHealth(std::size_t num_shards) : up_(num_shards) {}

bool ClusterHealth::healthy(std::size_t shard) const {
  return up_[shard].up.load(std::memory_order_acquire);
}

void ClusterHealth::mark(std::size_t shard, bool up) {
  up_[shard].up.store(up, std::memory_order_release);
}

std::size_t ClusterHealth::alive() const {
  std::size_t n = 0;
  for (const Flag& f : up_) {
    if (f.up.load(std::memory_order_acquire)) ++n;
  }
  return n;
}

// ---- ClusterClient -----------------------------------------------------

ClusterClient::ClusterClient(ClusterConfig config,
                             std::shared_ptr<ClusterHealth> health)
    : config_(std::move(config)),
      health_(std::move(health)),
      streams_(config_.map.num_shards()),
      last_shard_ok_(config_.map.num_shards(), 1) {
  ANCHOR_CHECK_MSG(config_.map.num_shards() > 0,
                   "ClusterClient needs a non-empty ShardMap");
}

net::TcpStream* ClusterClient::stream(std::size_t shard) {
  if (!streams_[shard]) {
    const ShardSpec& spec = config_.map.shard(shard);
    try {
      streams_[shard].emplace(net::TcpStream::connect(spec.host, spec.port));
      streams_[shard]->set_io_timeout(config_.io_timeout_ms);
    } catch (const net::NetError&) {
      streams_[shard].reset();
      return nullptr;
    }
  }
  return &*streams_[shard];
}

void ClusterClient::drop(std::size_t shard) { streams_[shard].reset(); }

bool ClusterClient::send_plan(std::size_t shard, const Plan& plan) {
  net::TcpStream* s = stream(shard);
  if (s == nullptr) return false;
  try {
    // A sampled lookup stamps a child context (same trace, fresh span id)
    // on every backend frame, so the backend's spans join this trace.
    if (!plan.local_ids.empty()) {
      net::WireWriter body;
      body.reserve(4 + plan.local_ids.size() * 8);
      body.u32(static_cast<std::uint32_t>(plan.local_ids.size()));
      for (const std::uint64_t id : plan.local_ids) body.u64(id);
      if (trace_.sampled()) {
        net::write_frame(*s, net::MsgType::kLookupIds, body, trace_.child());
      } else {
        net::write_frame(*s, net::MsgType::kLookupIds, body);
      }
    }
    if (!plan.words.empty()) {
      std::size_t bytes = 4;
      for (const std::string& w : plan.words) bytes += 4 + w.size();
      net::WireWriter body;
      body.reserve(bytes);
      body.u32(static_cast<std::uint32_t>(plan.words.size()));
      for (const std::string& w : plan.words) body.str(w);
      if (trace_.sampled()) {
        net::write_frame(*s, net::MsgType::kLookupWords, body,
                         trace_.child());
      } else {
        net::write_frame(*s, net::MsgType::kLookupWords, body);
      }
    }
    return true;
  } catch (const net::NetError&) {
    drop(shard);
    return false;
  }
}

bool ClusterClient::read_plan(std::size_t shard, const Plan& plan,
                              serve::LookupResult* ids_reply,
                              serve::LookupResult* words_reply) {
  net::TcpStream* s = stream(shard);
  if (s == nullptr) return false;
  const auto read_one = [&](net::MsgType expected,
                            serve::LookupResult* out) -> bool {
    net::MsgType type{};
    std::vector<std::uint8_t> payload;
    if (!net::read_frame(*s, &type, &payload)) return false;  // backend EOF
    if (type != expected) return false;  // kError or a protocol mismatch
    net::WireReader reader(payload);
    *out = net::decode_lookup_result(&reader);
    reader.expect_done();
    return true;
  };
  try {
    if (!plan.local_ids.empty() &&
        !read_one(net::MsgType::kLookupIdsReply, ids_reply)) {
      drop(shard);
      return false;
    }
    if (!plan.words.empty() &&
        !read_one(net::MsgType::kLookupWordsReply, words_reply)) {
      drop(shard);
      return false;
    }
    return true;
  } catch (const net::NetError&) {
    drop(shard);
    return false;
  } catch (const net::WireError&) {
    drop(shard);
    return false;
  }
}

serve::LookupResult ClusterClient::execute(const std::vector<Plan>& plans,
                                           std::size_t n_slots,
                                           std::vector<std::uint8_t> flags) {
  const std::size_t n_shards = config_.map.num_shards();
  std::fill(last_shard_ok_.begin(), last_shard_ok_.end(), 1);

  // An all-OOV batch involves no shard, but its reply must still carry
  // the store's dim and live version (the single-process shape — a
  // consumer sizing buffers as n×dim must see the same numbers through
  // the router). Probe shard 0 for them on EVERY such batch — not just
  // cold start — so the reported version cannot go stale across a
  // rollout that happened while this client saw only OOV traffic; the
  // cached hint is the fallback when the probe fails.
  bool any_involved = false;
  for (const Plan& plan : plans) any_involved |= plan.involved();
  if (!any_involved && n_slots > 0 && config_.map.total_rows() > 0 &&
      (!health_ || health_->healthy(0))) {
    Plan probe;
    probe.local_ids.push_back(0);
    probe.id_slots.push_back(0);
    serve::LookupResult ids_reply, words_reply;
    if (send_plan(0, probe) &&
        read_plan(0, probe, &ids_reply, &words_reply) &&
        ids_reply.size() == 1) {
      hint_dim_ = ids_reply.dim;
      hint_version_ = ids_reply.version;
    }
  }

  // Phase 1 — fan out: all involved backends get their frames before any
  // reply is read, so shard execution overlaps. A shard marked down by a
  // previous failure (and not yet revived by a probe) is skipped outright:
  // degrading instantly beats re-paying a 2 s timeout on every request.
  const bool traced = trace_.sampled();
  const std::uint64_t scatter_t0 = traced ? obs::Tracer::now_ns() : 0;
  std::vector<std::uint64_t> send_ns(traced ? n_shards : 0, 0);
  std::vector<std::uint8_t> sent(n_shards, 0);
  std::vector<std::uint8_t> retried(n_shards, 0);
  for (std::size_t b = 0; b < n_shards; ++b) {
    if (!plans[b].involved()) continue;
    if (health_ && !health_->healthy(b)) {
      last_shard_ok_[b] = 0;
      continue;
    }
    if (traced) send_ns[b] = obs::Tracer::now_ns();
    if (send_plan(b, plans[b])) {
      sent[b] = 1;
    } else if (config_.retry && send_plan(b, plans[b])) {
      // send_plan dropped the dead stream; the second call reconnects.
      sent[b] = retried[b] = 1;
    } else {
      last_shard_ok_[b] = 0;
      if (health_) health_->mark(b, false);
    }
  }

  // Phase 2 — gather, in shard order (per-connection replies are ordered
  // anyway). A read failure burns the shard's single retry on a full
  // synchronous resend+reread; a second failure degrades its rows.
  std::vector<serve::LookupResult> ids_replies(n_shards);
  std::vector<serve::LookupResult> words_replies(n_shards);
  for (std::size_t b = 0; b < n_shards; ++b) {
    if (!sent[b]) continue;
    if (read_plan(b, plans[b], &ids_replies[b], &words_replies[b])) {
      if (traced) {
        obs::Tracer::instance().record(trace_, obs::TraceStage::kShardRtt,
                                       send_ns[b], obs::Tracer::now_ns(),
                                       static_cast<std::uint32_t>(b));
      }
      continue;
    }
    if (config_.retry && !retried[b] && send_plan(b, plans[b]) &&
        read_plan(b, plans[b], &ids_replies[b], &words_replies[b])) {
      if (traced) {
        obs::Tracer::instance().record(trace_, obs::TraceStage::kShardRtt,
                                       send_ns[b], obs::Tracer::now_ns(),
                                       static_cast<std::uint32_t>(b));
      }
      continue;
    }
    sent[b] = 0;
    last_shard_ok_[b] = 0;
    if (health_) health_->mark(b, false);
  }
  const std::uint64_t merge_t0 = traced ? obs::Tracer::now_ns() : 0;
  if (traced) {
    obs::Tracer::instance().record(trace_, obs::TraceStage::kRouterScatter,
                                   scatter_t0, merge_t0);
  }

  // Merge. dim comes from the first answering shard whose reply actually
  // matches its sub-request (a stale-topology shard answering the wrong
  // row count must not get to define the output shape and starve the
  // correct shards); the map's row-range total is the authority on
  // vocabulary, so every slot already has a home — scatter fills the
  // served ones and the flags vector already carries kLookupFlagOov for
  // unroutable keys.
  serve::LookupResult out;
  out.dim = 0;
  const auto matching_subs = [&](std::size_t b) {
    return std::array<std::pair<const serve::LookupResult*, std::size_t>, 2>{
        {{&ids_replies[b], plans[b].local_ids.size()},
         {&words_replies[b], plans[b].words.size()}}};
  };
  // Pass 1: row-weighted majority dim among size-matching replies (ties →
  // smaller dim, arbitrarily but deterministically).
  std::map<std::size_t, std::uint64_t> dim_rows;
  for (std::size_t b = 0; b < n_shards; ++b) {
    if (!sent[b]) continue;
    for (const auto& [reply, expected] : matching_subs(b)) {
      if (expected > 0 && reply->size() == expected) {
        dim_rows[reply->dim] += expected;
      }
    }
  }
  std::uint64_t dim_best = 0;
  for (const auto& [dim, rows] : dim_rows) {
    if (rows > dim_best) {
      dim_best = rows;
      out.dim = dim;
    }
  }
  // Pass 2: version majority, counting only replies of the chosen dim.
  std::map<std::string, std::uint64_t> version_rows;
  for (std::size_t b = 0; b < n_shards; ++b) {
    if (!sent[b]) continue;
    for (const auto& [reply, expected] : matching_subs(b)) {
      if (expected > 0 && reply->size() == expected &&
          reply->dim == out.dim) {
        version_rows[reply->version] += expected;
      }
    }
  }
  // Refuse (don't allocate) a merged result that could never be encoded
  // within the frame cap — the same pre-flight the backend server runs,
  // done here once dim is known. Requests whose shards ALL failed skip
  // this (dim 0): the flags-only degraded reply is small by construction.
  if (out.dim > 0 &&
      n_slots > (net::kMaxFrameBytes - 1024) /
                    (out.dim * sizeof(float) + 1)) {
    throw std::runtime_error(
        "batch too large: reply would exceed the frame cap");
  }
  out.vectors.assign(n_slots * out.dim, 0.0f);
  out.oov = std::move(flags);
  out.oov.resize(n_slots, 0);

  const auto scatter = [&](const serve::LookupResult& reply,
                           const std::vector<std::uint32_t>& slots,
                           bool expected_rows_match) {
    // A shard answering with the wrong row count or dim disagrees with the
    // map (a topology change mid-flight); treat its rows as degraded
    // rather than scattering garbage.
    if (!expected_rows_match || reply.dim != out.dim) {
      for (const std::uint32_t slot : slots) {
        out.oov[slot] = serve::kLookupFlagDegraded;
      }
      return;
    }
    for (std::size_t r = 0; r < reply.size(); ++r) {
      std::memcpy(out.vectors.data() + slots[r] * out.dim, reply.row(r),
                  out.dim * sizeof(float));
      out.oov[slots[r]] = reply.oov[r];
    }
  };
  bool degraded = false;
  for (std::size_t b = 0; b < n_shards; ++b) {
    const Plan& plan = plans[b];
    if (!plan.involved()) continue;
    if (!sent[b]) {
      for (const std::uint32_t slot : plan.id_slots) {
        out.oov[slot] = serve::kLookupFlagDegraded;
      }
      for (const std::uint32_t slot : plan.word_slots) {
        out.oov[slot] = serve::kLookupFlagDegraded;
      }
      degraded = true;
      continue;
    }
    if (!plan.local_ids.empty()) {
      scatter(ids_replies[b], plan.id_slots,
              ids_replies[b].size() == plan.local_ids.size());
    }
    if (!plan.words.empty()) {
      scatter(words_replies[b], plan.word_slots,
              words_replies[b].size() == plan.words.size());
    }
  }
  for (std::size_t i = 0; i < out.oov.size() && !degraded; ++i) {
    degraded = out.oov[i] == serve::kLookupFlagDegraded;
  }
  last_degraded_ = degraded;

  // Version = row-weighted majority of the answering shards (a healthy,
  // rollout-coordinated cluster is unanimous; during a rolling promote the
  // majority version is the honest summary). Ties break lexicographically.
  std::uint64_t best = 0;
  for (const auto& [version, rows] : version_rows) {
    if (rows > best) {
      best = rows;
      out.version = version;
    }
  }
  // Fall back to (then refresh) the hint so all-OOV and all-degraded
  // replies keep a stable shape across requests. Same frame-cap
  // pre-flight as above — the hint dim can turn a previously flags-only
  // reply into a full n×dim one.
  if (out.dim == 0) out.dim = hint_dim_;
  if (out.version.empty()) out.version = hint_version_;
  if (out.dim > 0 && out.vectors.empty() && n_slots > 0) {
    if (n_slots > (net::kMaxFrameBytes - 1024) /
                      (out.dim * sizeof(float) + 1)) {
      throw std::runtime_error(
          "batch too large: reply would exceed the frame cap");
    }
    out.vectors.assign(n_slots * out.dim, 0.0f);
  }
  hint_dim_ = out.dim;
  if (!out.version.empty()) hint_version_ = out.version;
  if (traced) {
    obs::Tracer::instance().record(trace_, obs::TraceStage::kRouterMerge,
                                   merge_t0, obs::Tracer::now_ns());
  }
  trace_ = obs::TraceContext{};  // consumed: one set_trace per lookup
  return out;
}

serve::LookupResult ClusterClient::lookup_ids(
    const std::vector<std::size_t>& ids) {
  const std::uint64_t total = config_.map.total_rows();
  std::vector<Plan> plans(config_.map.num_shards());
  std::vector<std::uint8_t> flags(ids.size(), 0);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::uint64_t id = ids[i];
    if (id >= total) {
      flags[i] = serve::kLookupFlagOov;  // same contract as one process
      continue;
    }
    const std::size_t b = config_.map.shard_of_id(id);
    plans[b].local_ids.push_back(id - config_.map.shard(b).row_begin);
    plans[b].id_slots.push_back(static_cast<std::uint32_t>(i));
  }
  return execute(plans, ids.size(), std::move(flags));
}

serve::LookupResult ClusterClient::lookup_words(
    const std::vector<std::string>& words) {
  const std::uint64_t total = config_.map.total_rows();
  std::vector<Plan> plans(config_.map.num_shards());
  std::vector<std::uint8_t> flags(words.size(), 0);
  for (std::size_t i = 0; i < words.size(); ++i) {
    std::size_t id = 0;
    if (serve::parse_synthetic_word_id(words[i], &id) && id < total) {
      // In-vocabulary: route by row range and ship the LOCAL id — the
      // backend's own "w<local>" naming must never be consulted, it
      // numbers a different (sliced) space.
      const std::size_t b = config_.map.shard_of_id(id);
      plans[b].local_ids.push_back(id - config_.map.shard(b).row_begin);
      plans[b].id_slots.push_back(static_cast<std::uint32_t>(i));
    } else {
      // OOV: one deterministic home shard synthesizes it.
      const std::size_t b = config_.map.shard_of_word(words[i]);
      plans[b].words.push_back(words[i]);
      plans[b].word_slots.push_back(static_cast<std::uint32_t>(i));
    }
  }
  return execute(plans, words.size(), std::move(flags));
}

ClusterStatsReport ClusterClient::stats() {
  ClusterStatsReport report;
  const std::size_t n_shards = config_.map.num_shards();
  report.shard_versions.assign(n_shards, "");
  for (std::size_t b = 0; b < n_shards; ++b) {
    if (health_ && !health_->healthy(b)) continue;
    net::TcpStream* s = stream(b);
    if (s == nullptr) continue;
    try {
      net::write_frame(*s, net::MsgType::kStats, net::WireWriter());
      net::MsgType type{};
      std::vector<std::uint8_t> payload;
      if (!net::read_frame(*s, &type, &payload) ||
          type != net::MsgType::kStatsReply) {
        drop(b);
        continue;
      }
      net::WireReader reader(payload);
      const net::ServerStatsReport one = net::decode_server_stats(&reader);
      reader.expect_done();
      ++report.shards_answering;
      report.shard_versions[b] = one.live_version;
      const auto fold = [](serve::StatsSnapshot* acc,
                           const serve::StatsSnapshot& x) {
        acc->lookups += x.lookups;
        acc->batches += x.batches;
        acc->cache_hits += x.cache_hits;
        acc->cache_misses += x.cache_misses;
        acc->oov_fallbacks += x.oov_fallbacks;
        acc->qps += x.qps;
        acc->elapsed_seconds = std::max(acc->elapsed_seconds,
                                        x.elapsed_seconds);
        // Latency distributions MERGE (exact integer bucket adds); the
        // fleet percentiles are re-derived from the merged histogram
        // below. A max over per-shard percentile scalars — the pre-v3
        // behavior — is not a fleet percentile at all.
        acc->latency.merge(x.latency);
      };
      fold(&report.aggregate.service, one.service);
      fold(&report.aggregate.batcher, one.batcher);
    } catch (const std::exception&) {
      drop(b);
    }
  }
  // Unanimous version, or the literal "mixed" while shards disagree (a
  // rollout in flight) — stats is a monitoring surface, and "mixed" is
  // the honest summary; per-shard truth is in shard_versions.
  for (const std::string& v : report.shard_versions) {
    if (v.empty()) continue;
    if (report.aggregate.live_version.empty()) {
      report.aggregate.live_version = v;
    } else if (report.aggregate.live_version != v) {
      report.aggregate.live_version = "mixed";
      break;
    }
  }
  report.aggregate.service.refresh_percentiles();
  report.aggregate.batcher.refresh_percentiles();
  return report;
}

void ClusterClient::shutdown_backends() {
  for (std::size_t b = 0; b < config_.map.num_shards(); ++b) {
    net::TcpStream* s = stream(b);
    if (s == nullptr) continue;
    try {
      net::write_frame(*s, net::MsgType::kShutdown, net::WireWriter());
      net::MsgType type{};
      std::vector<std::uint8_t> payload;
      net::read_frame(*s, &type, &payload);
    } catch (const std::exception&) {
    }
    drop(b);
  }
}

bool ClusterClient::probe(const std::string& host, std::uint16_t port,
                          int timeout_ms) {
  try {
    net::TcpStream s = net::TcpStream::connect(host, port);
    s.set_io_timeout(timeout_ms);
    net::write_frame(s, net::MsgType::kPing, net::WireWriter());
    net::MsgType type{};
    std::vector<std::uint8_t> payload;
    return net::read_frame(s, &type, &payload) &&
           type == net::MsgType::kPong;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace anchor::cluster
