#include "cluster/cluster_client.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstring>
#include <map>
#include <random>
#include <stdexcept>
#include <thread>

#include "util/check.hpp"

namespace anchor::cluster {

// ---- ClusterHealth -----------------------------------------------------

ClusterHealth::ClusterHealth(const ShardMap& map)
    : flags_(map.num_replicas_total()), offsets_(map.num_shards() + 1, 0) {
  for (std::size_t b = 0; b < map.num_shards(); ++b) {
    offsets_[b + 1] = offsets_[b] + map.shard(b).num_replicas();
  }
}

ClusterHealth::ClusterHealth(std::size_t num_shards)
    : flags_(num_shards), offsets_(num_shards + 1, 0) {
  for (std::size_t b = 0; b < num_shards; ++b) offsets_[b + 1] = b + 1;
}

bool ClusterHealth::healthy(std::size_t shard, std::size_t replica) const {
  return flags_[index(shard, replica)].up.load(std::memory_order_acquire);
}

void ClusterHealth::mark(std::size_t shard, std::size_t replica, bool up) {
  flags_[index(shard, replica)].up.store(up, std::memory_order_release);
}

void ClusterHealth::mark(std::size_t shard, bool up) {
  for (std::size_t r = 0; r < replicas(shard); ++r) mark(shard, r, up);
}

bool ClusterHealth::shard_alive(std::size_t shard) const {
  for (std::size_t r = 0; r < replicas(shard); ++r) {
    if (healthy(shard, r)) return true;
  }
  return false;
}

std::size_t ClusterHealth::alive_replicas(std::size_t shard) const {
  std::size_t n = 0;
  for (std::size_t r = 0; r < replicas(shard); ++r) {
    if (healthy(shard, r)) ++n;
  }
  return n;
}

std::size_t ClusterHealth::alive() const {
  std::size_t n = 0;
  for (std::size_t b = 0; b < num_shards(); ++b) {
    if (shard_alive(b)) ++n;
  }
  return n;
}

std::size_t ClusterHealth::replicas_alive() const {
  std::size_t n = 0;
  for (const Rep& r : flags_) {
    if (r.up.load(std::memory_order_acquire)) ++n;
  }
  return n;
}

void ClusterHealth::add_load(std::size_t shard, std::size_t replica,
                             std::int64_t delta) {
  flags_[index(shard, replica)].load.fetch_add(delta,
                                               std::memory_order_relaxed);
}

std::uint64_t ClusterHealth::load(std::size_t shard,
                                  std::size_t replica) const {
  const std::int64_t v =
      flags_[index(shard, replica)].load.load(std::memory_order_relaxed);
  return v > 0 ? static_cast<std::uint64_t>(v) : 0;
}

// ---- HedgePolicy -------------------------------------------------------

HedgePolicy::HedgePolicy(std::size_t num_shards)
    : HedgePolicy(num_shards, Config{}) {}

HedgePolicy::HedgePolicy(std::size_t num_shards, Config config)
    : config_(config) {
  shards_.reserve(num_shards);
  for (std::size_t b = 0; b < num_shards; ++b) {
    shards_.push_back(std::make_unique<PerShard>());
    shards_.back()->next_refresh.store(config_.min_samples,
                                       std::memory_order_relaxed);
  }
}

void HedgePolicy::record(std::size_t shard, double rtt_us) {
  shards_[shard]->rtt.record(rtt_us);
}

double HedgePolicy::hedge_delay_us(std::size_t shard) const {
  PerShard& s = *shards_[shard];
  const std::uint64_t count = s.rtt.count();
  if (count >= config_.min_samples) {
    // Lazy refresh: the first caller to cross the refresh mark recomputes
    // the quantile from the merged histogram; everyone else reads the
    // cached value (quantile() walks 1856 buckets — too hot per lookup).
    std::uint64_t next = s.next_refresh.load(std::memory_order_acquire);
    if (count >= next &&
        s.next_refresh.compare_exchange_strong(next,
                                               count + config_.refresh_every,
                                               std::memory_order_acq_rel)) {
      const double q =
          s.rtt.quantile(config_.quantile) * config_.multiplier;
      s.cached_delay_us.store(
          std::clamp(q, config_.min_delay_us, config_.max_delay_us),
          std::memory_order_release);
    }
    const double cached = s.cached_delay_us.load(std::memory_order_acquire);
    if (cached > 0.0) return cached;
  }
  return std::clamp(config_.default_delay_us, config_.min_delay_us,
                    config_.max_delay_us);
}

obs::HistogramSnapshot HedgePolicy::shard_snapshot(std::size_t shard) const {
  return shards_[shard]->rtt.snapshot();
}

std::uint64_t HedgePolicy::samples(std::size_t shard) const {
  return shards_[shard]->rtt.count();
}

// ---- ClusterClient -----------------------------------------------------

ClusterClient::ClusterClient(ClusterConfig config,
                             std::shared_ptr<ClusterHealth> health,
                             std::shared_ptr<HedgePolicy> hedge,
                             std::shared_ptr<ClusterCounters> counters)
    : config_(std::move(config)),
      health_(std::move(health)),
      hedge_(std::move(hedge)),
      counters_(std::move(counters)),
      conns_(config_.map.num_shards()),
      jitter_state_(std::random_device{}()),
      last_shard_ok_(config_.map.num_shards(), 1) {
  ANCHOR_CHECK_MSG(config_.map.num_shards() > 0,
                   "ClusterClient needs a non-empty ShardMap");
  for (std::size_t b = 0; b < config_.map.num_shards(); ++b) {
    conns_[b].resize(config_.map.shard(b).num_replicas());
  }
}

net::TcpStream* ClusterClient::stream(std::size_t shard,
                                      std::size_t replica) {
  ReplicaConn& c = conns_[shard][replica];
  if (!c.stream) {
    const Endpoint& ep = config_.map.shard(shard).replica(replica);
    try {
      c.stream.emplace(net::TcpStream::connect(ep.host, ep.port));
      c.stream->set_io_timeout(config_.io_timeout_ms);
      c.owed_frames = 0;  // a fresh connection owes nothing
    } catch (const net::NetError&) {
      c.stream.reset();
      return nullptr;
    }
  }
  return &*c.stream;
}

void ClusterClient::drop(std::size_t shard, std::size_t replica) {
  conns_[shard][replica].stream.reset();
  conns_[shard][replica].owed_frames = 0;
}

bool ClusterClient::replica_up(std::size_t shard,
                               std::size_t replica) const {
  return !health_ || health_->healthy(shard, replica);
}

void ClusterClient::mark_replica(std::size_t shard, std::size_t replica,
                                 bool up) {
  if (health_) health_->mark(shard, replica, up);
}

std::size_t ClusterClient::choose_replica(std::size_t shard,
                                          std::size_t exclude) {
  const std::size_t n = config_.map.shard(shard).num_replicas();
  // Rotating start so pooled clients with equal loads do not all pile on
  // replica 0; least in-flight load wins, a connection owing hedge-loser
  // frames loses ties (using it means draining or reconnecting first).
  const std::size_t start = rr_++ % n;
  std::size_t best = kNone;
  std::uint64_t best_load = 0;
  bool best_owed = false;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t r = (start + k) % n;
    if (r == exclude || !replica_up(shard, r)) continue;
    const std::uint64_t load = health_ ? health_->load(shard, r) : 0;
    const bool owed = conns_[shard][r].owed_frames > 0;
    if (best == kNone || (best_owed && !owed) ||
        (owed == best_owed && load < best_load)) {
      best = r;
      best_load = load;
      best_owed = owed;
    }
  }
  return best;
}

bool ClusterClient::settle_owed(std::size_t shard, std::size_t replica,
                                int budget_ms) {
  ReplicaConn& c = conns_[shard][replica];
  if (c.owed_frames == 0) return true;
  if (!c.stream) {
    c.owed_frames = 0;
    return true;
  }
  try {
    while (c.owed_frames > 0) {
      if (!c.stream->wait_readable(budget_ms)) {
        drop(shard, replica);  // reconnect is cheaper than waiting
        return false;
      }
      net::MsgType type{};
      std::vector<std::uint8_t> payload;
      if (!net::read_frame(*c.stream, &type, &payload)) {
        drop(shard, replica);
        return false;
      }
      --c.owed_frames;
    }
    return true;
  } catch (const std::exception&) {
    drop(shard, replica);
    return false;
  }
}

void ClusterClient::drain_owed_nonblocking() {
  for (std::size_t b = 0; b < conns_.size(); ++b) {
    for (std::size_t r = 0; r < conns_[b].size(); ++r) {
      if (conns_[b][r].owed_frames > 0) settle_owed(b, r, 0);
    }
  }
}

bool ClusterClient::send_plan(std::size_t shard, std::size_t replica,
                              const Plan& plan) {
  // A hedge loser from an earlier lookup still owes replies on this
  // connection; they must be consumed (or the stream replaced) before a
  // new sub-request, or reply frames would misalign with requests.
  settle_owed(shard, replica, /*budget_ms=*/50);
  net::TcpStream* s = stream(shard, replica);
  if (s == nullptr) return false;
  try {
    // A sampled lookup stamps a child context (same trace, fresh span id)
    // on every backend frame, so the backend's spans join this trace.
    if (!plan.local_ids.empty()) {
      net::WireWriter body;
      body.reserve(4 + plan.local_ids.size() * 8);
      body.u32(static_cast<std::uint32_t>(plan.local_ids.size()));
      for (const std::uint64_t id : plan.local_ids) body.u64(id);
      if (trace_.sampled()) {
        net::write_frame(*s, net::MsgType::kLookupIds, body, trace_.child());
      } else {
        net::write_frame(*s, net::MsgType::kLookupIds, body);
      }
    }
    if (!plan.words.empty()) {
      std::size_t bytes = 4;
      for (const std::string& w : plan.words) bytes += 4 + w.size();
      net::WireWriter body;
      body.reserve(bytes);
      body.u32(static_cast<std::uint32_t>(plan.words.size()));
      for (const std::string& w : plan.words) body.str(w);
      if (trace_.sampled()) {
        net::write_frame(*s, net::MsgType::kLookupWords, body,
                         trace_.child());
      } else {
        net::write_frame(*s, net::MsgType::kLookupWords, body);
      }
    }
    if (plan.topk) {
      net::WireWriter body;
      net::encode_topk_request(*plan.topk, &body);
      if (trace_.sampled()) {
        net::write_frame(*s, net::MsgType::kTopK, body, trace_.child());
      } else {
        net::write_frame(*s, net::MsgType::kTopK, body);
      }
    }
    return true;
  } catch (const net::NetError&) {
    drop(shard, replica);
    return false;
  }
}

bool ClusterClient::read_plan(std::size_t shard, std::size_t replica,
                              const Plan& plan,
                              serve::LookupResult* ids_reply,
                              serve::LookupResult* words_reply,
                              ann::TopKResult* topk_reply) {
  ReplicaConn& c = conns_[shard][replica];
  if (!c.stream) return false;
  net::TcpStream* s = &*c.stream;
  const auto read_one = [&](net::MsgType expected,
                            serve::LookupResult* out) -> bool {
    net::MsgType type{};
    std::vector<std::uint8_t> payload;
    if (!net::read_frame(*s, &type, &payload)) return false;  // backend EOF
    if (type != expected) return false;  // kError or a protocol mismatch
    net::WireReader reader(payload);
    *out = net::decode_lookup_result(&reader);
    reader.expect_done();
    return true;
  };
  try {
    if (!plan.local_ids.empty() &&
        !read_one(net::MsgType::kLookupIdsReply, ids_reply)) {
      drop(shard, replica);
      return false;
    }
    if (!plan.words.empty() &&
        !read_one(net::MsgType::kLookupWordsReply, words_reply)) {
      drop(shard, replica);
      return false;
    }
    if (plan.topk) {
      // A backend with TOPK disabled (or predating it) answers kError —
      // a per-shard failure (→ partial result), not a protocol breach,
      // but the connection is healthy, so no drop on that path alone.
      net::MsgType type{};
      std::vector<std::uint8_t> payload;
      if (!net::read_frame(*s, &type, &payload) ||
          type != net::MsgType::kTopKReply || topk_reply == nullptr) {
        drop(shard, replica);
        return false;
      }
      net::WireReader reader(payload);
      *topk_reply = net::decode_topk_result(&reader);
      reader.expect_done();
    }
    return true;
  } catch (const net::NetError&) {
    drop(shard, replica);
    return false;
  } catch (const net::WireError&) {
    drop(shard, replica);
    return false;
  }
}

void ClusterClient::backoff_sleep(int attempt) {
  // First failover is immediate (the replacement replica is presumed
  // healthy); later attempts back off exponentially with jitter so pooled
  // clients hammering one struggling shard spread out in time.
  if (attempt <= 1 || config_.backoff_base_ms <= 0) return;
  const int shift = std::min(attempt - 2, 20);
  const std::int64_t base =
      std::min<std::int64_t>(config_.backoff_max_ms,
                             std::int64_t{config_.backoff_base_ms} << shift);
  // splitmix64 step for the jitter draw — cheap, seeded per client.
  jitter_state_ += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = jitter_state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  const double jitter = 0.5 + 0.5 * (static_cast<double>(z >> 11) /
                                     9007199254740992.0);  // [0.5, 1.0)
  const auto sleep_us = static_cast<std::int64_t>(
      static_cast<double>(base) * 1000.0 * jitter);
  if (sleep_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
  }
}

void ClusterClient::scatter_shard(std::size_t shard, const Plan& plan,
                                  ShardState* st) {
  // The attempt budget bounds requests actually SENT (each of which costs
  // a read, possibly a full io timeout). An instant connect/send failure
  // — the common shape when a replica was just killed — does NOT consume
  // it: those failovers are already bounded by the replica count, because
  // every failure marks its replica down and choose_replica skips downed
  // ones. Burning budget on refused connects would leave a shard with one
  // flaky survivor too few read attempts to ride out a transient.
  std::size_t first = kNone;
  std::size_t r = choose_replica(shard, kNone);
  while (r != kNone) {
    st->send_ns = obs::Tracer::now_ns();
    if (send_plan(shard, r, plan)) {
      ++st->attempts;
      st->sent = true;
      st->primary = r;
      if (health_) health_->add_load(shard, r, +1);
      if (counters_ && first != kNone) {
        counters_->failovers.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    // Connect/send failures are instant (no backoff): fail over to the
    // next live replica right away.
    mark_replica(shard, r, false);
    if (counters_) counters_->retries.fetch_add(1, std::memory_order_relaxed);
    if (first == kNone) first = r;
    r = choose_replica(shard, kNone);
  }
}

bool ClusterClient::gather_shard(std::size_t shard, const Plan& plan,
                                 ShardState* st,
                                 serve::LookupResult* ids_reply,
                                 serve::LookupResult* words_reply,
                                 ann::TopKResult* topk_reply) {
  if (!st->sent) return false;
  const std::size_t n_replicas = config_.map.shard(shard).num_replicas();
  const int budget = config_.retry ? std::max(config_.max_attempts, 1) : 1;
  const std::size_t original = st->primary;

  const auto release_load = [&](std::size_t r) {
    if (health_ && r != kNone) health_->add_load(shard, r, -1);
  };

  while (true) {
    // Hedge window: give the primary the shard's p99-derived delay to
    // start answering; when it stays silent, mirror the plan to a second
    // live replica and race them. At most one hedge per shard per lookup.
    if (config_.hedge && hedge_ && n_replicas > 1 && st->hedged == kNone) {
      const double delay_us = hedge_->hedge_delay_us(shard);
      int delay_ms =
          static_cast<int>(std::max(1.0, std::ceil(delay_us / 1000.0)));
      if (config_.io_timeout_ms > 0) {
        delay_ms = std::min(delay_ms, config_.io_timeout_ms);
      }
      net::TcpStream* ps = conns_[shard][st->primary].stream
                               ? &*conns_[shard][st->primary].stream
                               : nullptr;
      if (ps != nullptr && !ps->wait_readable(delay_ms)) {
        const std::size_t h = choose_replica(shard, st->primary);
        if (h != kNone && send_plan(shard, h, plan)) {
          st->hedged = h;
          if (health_) health_->add_load(shard, h, +1);
          if (counters_) {
            counters_->hedges.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    }

    // Read the winner. Un-hedged: one blocking read (io_timeout-bounded).
    // Hedged: poll both connections; the first to turn readable gets the
    // blocking read, and a failed racer does not doom the attempt while
    // the other is still live.
    std::size_t winner = kNone;
    if (st->hedged == kNone) {
      if (read_plan(shard, st->primary, plan, ids_reply, words_reply,
                    topk_reply)) {
        winner = st->primary;
      } else {
        mark_replica(shard, st->primary, false);
      }
    } else {
      std::array<std::size_t, 2> racers = {st->primary, st->hedged};
      std::array<bool, 2> dead = {false, false};
      const std::uint64_t t0 = obs::Tracer::now_ns();
      const double limit_ns = config_.io_timeout_ms > 0
                                  ? config_.io_timeout_ms * 1e6
                                  : 0.0;
      while (winner == kNone && (!dead[0] || !dead[1])) {
        for (int i = 0; i < 2 && winner == kNone; ++i) {
          if (dead[i]) continue;
          const std::size_t r = racers[i];
          net::TcpStream* s =
              conns_[shard][r].stream ? &*conns_[shard][r].stream : nullptr;
          if (s == nullptr) {
            dead[i] = true;
            mark_replica(shard, r, false);
            continue;
          }
          // Sole survivor: no need to poll, the io timeout bounds it.
          if (dead[1 - i] || s->wait_readable(1)) {
            if (read_plan(shard, r, plan, ids_reply, words_reply,
                          topk_reply)) {
              winner = r;
            } else {
              dead[i] = true;
              mark_replica(shard, r, false);
            }
          }
        }
        if (limit_ns > 0.0 &&
            static_cast<double>(obs::Tracer::now_ns() - t0) > limit_ns) {
          // Both replicas accepted the plan and neither started answering
          // within the io timeout — treat both as hung.
          for (int i = 0; i < 2; ++i) {
            if (!dead[i]) {
              drop(shard, racers[i]);
              mark_replica(shard, racers[i], false);
              dead[i] = true;
            }
          }
        }
      }
    }

    if (winner != kNone) {
      // Loser of a race owes its (in-order) replies on its connection;
      // count them so a later lookup drains before reusing the stream.
      if (st->hedged != kNone) {
        const std::size_t loser =
            winner == st->primary ? st->hedged : st->primary;
        if (conns_[shard][loser].stream) {
          conns_[shard][loser].owed_frames += plan.frames();
        }
        if (counters_ && winner == st->hedged) {
          counters_->hedge_wins.fetch_add(1, std::memory_order_relaxed);
        }
        release_load(st->hedged);
      }
      release_load(st->primary);
      mark_replica(shard, winner, true);  // it answered; no probe needed
      if (hedge_) {
        hedge_->record(shard,
                       static_cast<double>(obs::Tracer::now_ns() -
                                           st->send_ns) /
                           1000.0);
      }
      st->primary = winner;
      return true;
    }

    // Every replica this attempt engaged is dead; fail over with backoff
    // until the attempt budget or the live replica set runs out.
    release_load(st->primary);
    release_load(st->hedged);
    st->hedged = kNone;
    bool resent = false;
    while (st->attempts < budget) {
      std::size_t next = choose_replica(shard, kNone);
      if (next == kNone) {
        // Every replica is marked down, but the shard may still be
        // servable: a transient fault can mark the sole survivor down in
        // the same breath that the dead replica fails. Rotate the
        // remaining budget across ALL replicas — pinning to one endpoint
        // (say, the original) would burn the budget on connect-refused
        // while a live-but-marked-down replica sits untried. The shard
        // degrades only once the budget runs out with nobody answering.
        next = (original + static_cast<std::size_t>(st->attempts)) %
               n_replicas;
      }
      if (counters_) {
        counters_->retries.fetch_add(1, std::memory_order_relaxed);
        if (next != original) {
          counters_->failovers.fetch_add(1, std::memory_order_relaxed);
        }
      }
      backoff_sleep(st->attempts);
      ++st->attempts;
      st->send_ns = obs::Tracer::now_ns();
      if (send_plan(shard, next, plan)) {
        st->primary = next;
        if (health_) health_->add_load(shard, next, +1);
        resent = true;
        break;
      }
      mark_replica(shard, next, false);
    }
    if (!resent) return false;
  }
}

serve::LookupResult ClusterClient::execute(const std::vector<Plan>& plans,
                                           std::size_t n_slots,
                                           std::vector<std::uint8_t> flags) {
  const std::uint64_t windowed_t0 =
      config_.windowed != nullptr ? obs::Tracer::now_ns() : 0;
  const std::size_t n_shards = config_.map.num_shards();
  std::fill(last_shard_ok_.begin(), last_shard_ok_.end(), 1);

  // An all-OOV batch involves no shard, but its reply must still carry
  // the store's dim and live version (the single-process shape — a
  // consumer sizing buffers as n×dim must see the same numbers through
  // the router). Probe shard 0 for them on EVERY such batch — not just
  // cold start — so the reported version cannot go stale across a
  // rollout that happened while this client saw only OOV traffic; the
  // cached hint is the fallback when the probe fails.
  bool any_involved = false;
  for (const Plan& plan : plans) any_involved |= plan.involved();
  if (!any_involved && n_slots > 0 && config_.map.total_rows() > 0 &&
      (!health_ || health_->shard_alive(0))) {
    Plan probe;
    probe.local_ids.push_back(0);
    probe.id_slots.push_back(0);
    ShardState pst;
    serve::LookupResult ids_reply, words_reply;
    scatter_shard(0, probe, &pst);
    if (gather_shard(0, probe, &pst, &ids_reply, &words_reply) &&
        ids_reply.size() == 1) {
      hint_dim_ = ids_reply.dim;
      hint_version_ = ids_reply.version;
    }
  }

  // Phase 1 — fan out: every involved shard's plan goes to its chosen
  // (least-loaded live) replica before any reply is read, so shard
  // execution overlaps. A shard whose EVERY replica is marked down is
  // skipped outright: degrading instantly beats re-paying a timeout.
  const bool traced = trace_.sampled();
  const std::uint64_t scatter_t0 = traced ? obs::Tracer::now_ns() : 0;
  std::vector<ShardState> states(n_shards);
  for (std::size_t b = 0; b < n_shards; ++b) {
    if (!plans[b].involved()) continue;
    if (health_ && !health_->shard_alive(b)) {
      last_shard_ok_[b] = 0;
      continue;
    }
    scatter_shard(b, plans[b], &states[b]);
    if (!states[b].sent) last_shard_ok_[b] = 0;
  }

  // Phase 2 — gather, in shard order (per-connection replies are ordered
  // anyway). gather_shard hedges the straggler replica, fails over with
  // bounded backoff, and only reports failure once every replica of the
  // shard is exhausted — which is when its rows degrade.
  std::vector<serve::LookupResult> ids_replies(n_shards);
  std::vector<serve::LookupResult> words_replies(n_shards);
  std::vector<std::uint8_t> ok(n_shards, 0);
  for (std::size_t b = 0; b < n_shards; ++b) {
    if (!states[b].sent) continue;
    if (gather_shard(b, plans[b], &states[b], &ids_replies[b],
                     &words_replies[b])) {
      ok[b] = 1;
      if (traced) {
        obs::Tracer::instance().record(trace_, obs::TraceStage::kShardRtt,
                                       states[b].send_ns,
                                       obs::Tracer::now_ns(),
                                       static_cast<std::uint32_t>(b));
      }
      continue;
    }
    last_shard_ok_[b] = 0;
  }
  const std::uint64_t merge_t0 = traced ? obs::Tracer::now_ns() : 0;
  if (traced) {
    obs::Tracer::instance().record(trace_, obs::TraceStage::kRouterScatter,
                                   scatter_t0, merge_t0);
  }

  // Merge. dim comes from the first answering shard whose reply actually
  // matches its sub-request (a stale-topology shard answering the wrong
  // row count must not get to define the output shape and starve the
  // correct shards); the map's row-range total is the authority on
  // vocabulary, so every slot already has a home — scatter fills the
  // served ones and the flags vector already carries kLookupFlagOov for
  // unroutable keys.
  serve::LookupResult out;
  out.dim = 0;
  const auto matching_subs = [&](std::size_t b) {
    return std::array<std::pair<const serve::LookupResult*, std::size_t>, 2>{
        {{&ids_replies[b], plans[b].local_ids.size()},
         {&words_replies[b], plans[b].words.size()}}};
  };
  // Pass 1: row-weighted majority dim among size-matching replies (ties →
  // smaller dim, arbitrarily but deterministically).
  std::map<std::size_t, std::uint64_t> dim_rows;
  for (std::size_t b = 0; b < n_shards; ++b) {
    if (!ok[b]) continue;
    for (const auto& [reply, expected] : matching_subs(b)) {
      if (expected > 0 && reply->size() == expected) {
        dim_rows[reply->dim] += expected;
      }
    }
  }
  std::uint64_t dim_best = 0;
  for (const auto& [dim, rows] : dim_rows) {
    if (rows > dim_best) {
      dim_best = rows;
      out.dim = dim;
    }
  }
  // Pass 2: version majority, counting only replies of the chosen dim.
  std::map<std::string, std::uint64_t> version_rows;
  for (std::size_t b = 0; b < n_shards; ++b) {
    if (!ok[b]) continue;
    for (const auto& [reply, expected] : matching_subs(b)) {
      if (expected > 0 && reply->size() == expected &&
          reply->dim == out.dim) {
        version_rows[reply->version] += expected;
      }
    }
  }
  // Refuse (don't allocate) a merged result that could never be encoded
  // within the frame cap — the same pre-flight the backend server runs,
  // done here once dim is known. Requests whose shards ALL failed skip
  // this (dim 0): the flags-only degraded reply is small by construction.
  if (out.dim > 0 &&
      n_slots > (net::kMaxFrameBytes - 1024) /
                    (out.dim * sizeof(float) + 1)) {
    throw std::runtime_error(
        "batch too large: reply would exceed the frame cap");
  }
  out.vectors.assign(n_slots * out.dim, 0.0f);
  out.oov = std::move(flags);
  out.oov.resize(n_slots, 0);

  const auto scatter = [&](const serve::LookupResult& reply,
                           const std::vector<std::uint32_t>& slots,
                           bool expected_rows_match) {
    // A shard answering with the wrong row count or dim disagrees with the
    // map (a topology change mid-flight); treat its rows as degraded
    // rather than scattering garbage.
    if (!expected_rows_match || reply.dim != out.dim) {
      for (const std::uint32_t slot : slots) {
        out.oov[slot] = serve::kLookupFlagDegraded;
      }
      return;
    }
    for (std::size_t r = 0; r < reply.size(); ++r) {
      std::memcpy(out.vectors.data() + slots[r] * out.dim, reply.row(r),
                  out.dim * sizeof(float));
      out.oov[slots[r]] = reply.oov[r];
    }
  };
  bool degraded = false;
  for (std::size_t b = 0; b < n_shards; ++b) {
    const Plan& plan = plans[b];
    if (!plan.involved()) continue;
    if (!ok[b]) {
      for (const std::uint32_t slot : plan.id_slots) {
        out.oov[slot] = serve::kLookupFlagDegraded;
      }
      for (const std::uint32_t slot : plan.word_slots) {
        out.oov[slot] = serve::kLookupFlagDegraded;
      }
      degraded = true;
      continue;
    }
    if (!plan.local_ids.empty()) {
      scatter(ids_replies[b], plan.id_slots,
              ids_replies[b].size() == plan.local_ids.size());
    }
    if (!plan.words.empty()) {
      scatter(words_replies[b], plan.word_slots,
              words_replies[b].size() == plan.words.size());
    }
  }
  for (std::size_t i = 0; i < out.oov.size() && !degraded; ++i) {
    degraded = out.oov[i] == serve::kLookupFlagDegraded;
  }
  last_degraded_ = degraded;

  // Version = row-weighted majority of the answering shards (a healthy,
  // rollout-coordinated cluster is unanimous; during a rolling promote the
  // majority version is the honest summary). Ties break lexicographically.
  std::uint64_t best = 0;
  for (const auto& [version, rows] : version_rows) {
    if (rows > best) {
      best = rows;
      out.version = version;
    }
  }
  // Fall back to (then refresh) the hint so all-OOV and all-degraded
  // replies keep a stable shape across requests. Same frame-cap
  // pre-flight as above — the hint dim can turn a previously flags-only
  // reply into a full n×dim one.
  if (out.dim == 0) out.dim = hint_dim_;
  if (out.version.empty()) out.version = hint_version_;
  if (out.dim > 0 && out.vectors.empty() && n_slots > 0) {
    if (n_slots > (net::kMaxFrameBytes - 1024) /
                      (out.dim * sizeof(float) + 1)) {
      throw std::runtime_error(
          "batch too large: reply would exceed the frame cap");
    }
    out.vectors.assign(n_slots * out.dim, 0.0f);
  }
  hint_dim_ = out.dim;
  if (!out.version.empty()) hint_version_ = out.version;
  if (traced) {
    obs::Tracer::instance().record(trace_, obs::TraceStage::kRouterMerge,
                                   merge_t0, obs::Tracer::now_ns());
  }
  trace_ = obs::TraceContext{};  // consumed: one set_trace per lookup
  // Hedge losers whose replies have arrived by now get their connections
  // squared away for free; stragglers stay owed and settle on next use.
  drain_owed_nonblocking();
  if (config_.windowed != nullptr) {
    // One windowed record per cluster lookup: full scatter-gather wall
    // latency; degraded partial results burn error budget.
    config_.windowed->record(
        static_cast<double>(obs::Tracer::now_ns() - windowed_t0) / 1000.0,
        degraded);
  }
  return out;
}

serve::LookupResult ClusterClient::lookup_ids(
    const std::vector<std::size_t>& ids) {
  const std::uint64_t total = config_.map.total_rows();
  std::vector<Plan> plans(config_.map.num_shards());
  std::vector<std::uint8_t> flags(ids.size(), 0);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::uint64_t id = ids[i];
    if (id >= total) {
      flags[i] = serve::kLookupFlagOov;  // same contract as one process
      continue;
    }
    const std::size_t b = config_.map.shard_of_id(id);
    plans[b].local_ids.push_back(id - config_.map.shard(b).row_begin);
    plans[b].id_slots.push_back(static_cast<std::uint32_t>(i));
    // Router-side key-load attribution, in GLOBAL id space (the backends
    // record the same key in their local space).
    if (config_.load != nullptr) config_.load->record(id);
  }
  return execute(plans, ids.size(), std::move(flags));
}

serve::LookupResult ClusterClient::lookup_words(
    const std::vector<std::string>& words) {
  const std::uint64_t total = config_.map.total_rows();
  std::vector<Plan> plans(config_.map.num_shards());
  std::vector<std::uint8_t> flags(words.size(), 0);
  for (std::size_t i = 0; i < words.size(); ++i) {
    std::size_t id = 0;
    if (serve::parse_synthetic_word_id(words[i], &id) && id < total) {
      // In-vocabulary: route by row range and ship the LOCAL id — the
      // backend's own "w<local>" naming must never be consulted, it
      // numbers a different (sliced) space.
      const std::size_t b = config_.map.shard_of_id(id);
      plans[b].local_ids.push_back(id - config_.map.shard(b).row_begin);
      plans[b].id_slots.push_back(static_cast<std::uint32_t>(i));
      if (config_.load != nullptr) config_.load->record(id);
    } else {
      // OOV: one deterministic home shard synthesizes it.
      const std::size_t b = config_.map.shard_of_word(words[i]);
      plans[b].words.push_back(words[i]);
      plans[b].word_slots.push_back(static_cast<std::uint32_t>(i));
    }
  }
  return execute(plans, words.size(), std::move(flags));
}

ann::TopKResult ClusterClient::topk_vector(const std::vector<float>& query,
                                           std::size_t k, std::size_t nprobe,
                                           std::size_t rerank) {
  const std::size_t n_shards = config_.map.num_shards();
  std::fill(last_shard_ok_.begin(), last_shard_ok_.end(), 1);
  // Explicit knobs on every sub-request: the merge below truncates the
  // pooled candidates at `rerank`, so backends and router must agree on
  // the depth — a backend falling back to a *different* local default
  // would break the single-process-equality contract.
  if (nprobe == 0) nprobe = ann::kDefaultNprobe;
  if (rerank == 0) rerank = ann::kDefaultRerank;

  net::TopKRequest sub;
  sub.k = static_cast<std::uint32_t>(k);
  sub.nprobe = static_cast<std::uint32_t>(nprobe);
  sub.rerank = static_cast<std::uint32_t>(rerank);
  sub.mode = net::kTopKModeCandidates;
  sub.kind = net::kTopKKindVector;
  sub.vector = query;

  // Scatter the broadcast through the same plan machinery as lookups
  // (least-loaded replica, hedging, bounded failover).
  const bool traced = trace_.sampled();
  const std::uint64_t scatter_t0 = traced ? obs::Tracer::now_ns() : 0;
  std::vector<Plan> plans(n_shards);
  std::vector<ShardState> states(n_shards);
  for (std::size_t b = 0; b < n_shards; ++b) {
    plans[b].topk = sub;
    if (health_ && !health_->shard_alive(b)) {
      last_shard_ok_[b] = 0;
      continue;
    }
    scatter_shard(b, plans[b], &states[b]);
    if (!states[b].sent) last_shard_ok_[b] = 0;
  }
  std::vector<ann::TopKResult> replies(n_shards);
  std::vector<std::uint8_t> ok(n_shards, 0);
  serve::LookupResult unused_ids, unused_words;
  for (std::size_t b = 0; b < n_shards; ++b) {
    if (!states[b].sent) continue;
    if (gather_shard(b, plans[b], &states[b], &unused_ids, &unused_words,
                     &replies[b])) {
      ok[b] = 1;
      if (traced) {
        obs::Tracer::instance().record(trace_, obs::TraceStage::kShardRtt,
                                       states[b].send_ns,
                                       obs::Tracer::now_ns(),
                                       static_cast<std::uint32_t>(b));
      }
      continue;
    }
    last_shard_ok_[b] = 0;
  }
  const std::uint64_t merge_t0 = traced ? obs::Tracer::now_ns() : 0;
  if (traced) {
    obs::Tracer::instance().record(trace_, obs::TraceStage::kRouterScatter,
                                   scatter_t0, merge_t0);
  }

  // Merge. Each shard's hits arrive sorted by (adc, local id) with LOCAL
  // ids; translate to global ids via the shard's row_begin (contiguous
  // ranges keep the (adc, id) order), pool, and re-select:
  //   1. global top-`rerank` by (adc, global id) — heap selection — which
  //      reconstructs exactly the single-process candidate shortlist,
  //      because each shard's top-`rerank` is a superset of that shard's
  //      members of the global top-`rerank`;
  //   2. top-`k` of those by (exact, global id), the final answer.
  ann::TopKResult out;
  bool partial = false;
  struct Cand {
    float adc;
    std::uint64_t gid;
    float exact;
    bool operator<(const Cand& o) const {
      return adc != o.adc ? adc < o.adc : gid < o.gid;
    }
  };
  std::vector<Cand> pool;
  for (std::size_t b = 0; b < n_shards; ++b) {
    if (!ok[b]) {
      partial = true;
      continue;
    }
    const std::uint64_t row_begin = config_.map.shard(b).row_begin;
    for (const ann::TopKHit& h : replies[b].hits) {
      pool.push_back(Cand{h.adc, h.id + row_begin, h.exact});
    }
    out.cells_probed += replies[b].cells_probed;
    if (out.version.empty()) {
      out.version = replies[b].version;
    } else if (out.version != replies[b].version) {
      out.version = "mixed";  // rolling promote in flight; honest summary
    }
  }
  const std::size_t keep = std::min(rerank, pool.size());
  std::partial_sort(pool.begin(), pool.begin() + keep, pool.end());
  pool.resize(keep);
  out.shortlist = static_cast<std::uint32_t>(keep);
  std::sort(pool.begin(), pool.end(), [](const Cand& a, const Cand& b) {
    return a.exact != b.exact ? a.exact < b.exact : a.gid < b.gid;
  });
  if (pool.size() > k) pool.resize(k);
  out.hits.reserve(pool.size());
  for (const Cand& c : pool) {
    out.hits.push_back(ann::TopKHit{c.gid, c.exact, c.adc});
  }
  if (partial) out.flags |= ann::kTopKFlagPartial;
  last_degraded_ = partial;
  if (traced) {
    obs::Tracer::instance().record(trace_, obs::TraceStage::kRouterMerge,
                                   merge_t0, obs::Tracer::now_ns());
  }
  trace_ = obs::TraceContext{};  // consumed: one set_trace per request
  drain_owed_nonblocking();
  return out;
}

ann::TopKResult ClusterClient::topk_id(std::uint64_t id, std::size_t k,
                                       std::size_t nprobe,
                                       std::size_t rerank) {
  // Resolve the query row with a normal cluster lookup first (the trace,
  // if any, is saved for the search itself — the lookup would consume it).
  const obs::TraceContext saved = trace_;
  trace_ = obs::TraceContext{};
  const serve::LookupResult row =
      lookup_ids({static_cast<std::size_t>(id)});
  if (row.size() != 1 || row.dim == 0 || row.oov[0] != 0) {
    trace_ = obs::TraceContext{};
    throw std::runtime_error("cannot resolve topk query id " +
                             std::to_string(id));
  }
  trace_ = saved;
  return topk_vector(std::vector<float>(row.row(0), row.row(0) + row.dim), k,
                     nprobe, rerank);
}

ann::TopKResult ClusterClient::topk_word(const std::string& word,
                                         std::size_t k, std::size_t nprobe,
                                         std::size_t rerank) {
  const obs::TraceContext saved = trace_;
  trace_ = obs::TraceContext{};
  const serve::LookupResult row = lookup_words({word});
  // OOV is fine (the home shard synthesized a deterministic vector —
  // neighbors of a novel word are exactly the interesting query); only a
  // degraded row has no usable vector at all.
  if (row.size() != 1 || row.dim == 0 ||
      (row.oov[0] & serve::kLookupFlagDegraded) != 0) {
    trace_ = obs::TraceContext{};
    throw std::runtime_error("cannot resolve topk query word '" + word +
                             "'");
  }
  trace_ = saved;
  return topk_vector(std::vector<float>(row.row(0), row.row(0) + row.dim), k,
                     nprobe, rerank);
}

ClusterStatsReport ClusterClient::stats() {
  ClusterStatsReport report;
  const std::size_t n_shards = config_.map.num_shards();
  report.shard_versions.assign(n_shards, "");
  report.shard_encodings.assign(n_shards, "");
  const auto fold = [](serve::StatsSnapshot* acc,
                       const serve::StatsSnapshot& x) {
    acc->lookups += x.lookups;
    acc->batches += x.batches;
    acc->cache_hits += x.cache_hits;
    acc->cache_misses += x.cache_misses;
    acc->oov_fallbacks += x.oov_fallbacks;
    acc->qps += x.qps;
    acc->elapsed_seconds = std::max(acc->elapsed_seconds, x.elapsed_seconds);
    // Latency distributions MERGE (exact integer bucket adds); the
    // fleet percentiles are re-derived from the merged histogram
    // below. A max over per-shard percentile scalars — the pre-v3
    // behavior — is not a fleet percentile at all.
    acc->latency.merge(x.latency);
  };
  for (std::size_t b = 0; b < n_shards; ++b) {
    bool answered = false;
    // EVERY replica is serving traffic, so the fleet aggregate sums over
    // all of them, not one delegate per shard.
    for (std::size_t r = 0; r < config_.map.shard(b).num_replicas(); ++r) {
      if (!replica_up(b, r)) continue;
      settle_owed(b, r, /*budget_ms=*/50);
      net::TcpStream* s = stream(b, r);
      if (s == nullptr) continue;
      try {
        net::write_frame(*s, net::MsgType::kStats, net::WireWriter());
        net::MsgType type{};
        std::vector<std::uint8_t> payload;
        if (!net::read_frame(*s, &type, &payload) ||
            type != net::MsgType::kStatsReply) {
          drop(b, r);
          continue;
        }
        net::WireReader reader(payload);
        const net::ServerStatsReport one = net::decode_server_stats(&reader);
        reader.expect_done();
        if (!answered) {
          answered = true;
          ++report.shards_answering;
          report.shard_versions[b] = one.live_version;
          report.shard_encodings[b] = one.encoding;
        }
        fold(&report.aggregate.service, one.service);
        fold(&report.aggregate.batcher, one.batcher);
      } catch (const std::exception&) {
        drop(b, r);
      }
    }
  }
  // Unanimous version, or the literal "mixed" while shards disagree (a
  // rollout in flight) — stats is a monitoring surface, and "mixed" is
  // the honest summary; per-shard truth is in shard_versions.
  for (const std::string& v : report.shard_versions) {
    if (v.empty()) continue;
    if (report.aggregate.live_version.empty()) {
      report.aggregate.live_version = v;
    } else if (report.aggregate.live_version != v) {
      report.aggregate.live_version = "mixed";
      break;
    }
  }
  // Same contract for the row encoding: unanimous (the deployment norm —
  // shared clip/codebooks imply one encoding) or "mixed" mid-migration.
  for (const std::string& e : report.shard_encodings) {
    if (e.empty()) continue;
    if (report.aggregate.encoding.empty()) {
      report.aggregate.encoding = e;
    } else if (report.aggregate.encoding != e) {
      report.aggregate.encoding = "mixed";
      break;
    }
  }
  report.aggregate.service.refresh_percentiles();
  report.aggregate.batcher.refresh_percentiles();
  return report;
}

net::HeatReport ClusterClient::heat() {
  net::HeatReport fleet;
  const std::size_t n_shards = config_.map.num_shards();
  for (std::size_t b = 0; b < n_shards; ++b) {
    net::HeatReport shard_merge;
    bool answered = false;
    for (std::size_t r = 0; r < config_.map.shard(b).num_replicas(); ++r) {
      if (!replica_up(b, r)) continue;
      settle_owed(b, r, /*budget_ms=*/50);
      net::TcpStream* s = stream(b, r);
      if (s == nullptr) continue;
      try {
        net::write_frame(*s, net::MsgType::kHeat, net::WireWriter());
        net::MsgType type{};
        std::vector<std::uint8_t> payload;
        if (!net::read_frame(*s, &type, &payload) ||
            type != net::MsgType::kHeatReply) {
          // An old backend answers kError; either way an unexpected type
          // breaks the in-order reply alignment, so drop the connection
          // (same policy as stats) and move on without its data.
          drop(b, r);
          continue;
        }
        net::WireReader reader(payload);
        net::HeatReport one = net::decode_heat_report(&reader);
        reader.expect_done();
        // Replicas of one shard report the same LOCAL id space: merge
        // them first, lift once.
        if (!answered) {
          shard_merge = std::move(one);
          answered = true;
        } else {
          shard_merge.windowed.merge(one.windowed);
          shard_merge.sketch.merge(one.sketch);
          shard_merge.heat.merge(one.heat);
        }
      } catch (const std::exception&) {
        drop(b, r);
      }
    }
    if (!answered) continue;
    // Lift local keys/ranges into global id space. A uniform key shift
    // preserves the canonical (count desc, key asc) order, so no re-sort
    // is needed before the cross-shard merge re-sorts anyway.
    const std::uint64_t shift = config_.map.shard(b).row_begin;
    if (shift != 0) {
      shard_merge.heat.shift_rows(shift);
      for (obs::HeavyHitter& e : shard_merge.sketch.entries) e.key += shift;
    }
    fleet.windowed.merge(shard_merge.windowed);
    fleet.sketch.merge(shard_merge.sketch);
    fleet.heat.merge(shard_merge.heat);
  }
  return fleet;
}

void ClusterClient::shutdown_backends() {
  for (std::size_t b = 0; b < config_.map.num_shards(); ++b) {
    for (std::size_t r = 0; r < config_.map.shard(b).num_replicas(); ++r) {
      settle_owed(b, r, /*budget_ms=*/50);
      net::TcpStream* s = stream(b, r);
      if (s == nullptr) continue;
      try {
        net::write_frame(*s, net::MsgType::kShutdown, net::WireWriter());
        net::MsgType type{};
        std::vector<std::uint8_t> payload;
        net::read_frame(*s, &type, &payload);
      } catch (const std::exception&) {
      }
      drop(b, r);
    }
  }
}

bool ClusterClient::probe(const std::string& host, std::uint16_t port,
                          int timeout_ms) {
  try {
    net::TcpStream s = net::TcpStream::connect(host, port);
    s.set_io_timeout(timeout_ms);
    net::write_frame(s, net::MsgType::kPing, net::WireWriter());
    net::MsgType type{};
    std::vector<std::uint8_t> payload;
    return net::read_frame(s, &type, &payload) &&
           type == net::MsgType::kPong;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace anchor::cluster
