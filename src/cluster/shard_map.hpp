// Vocabulary partitioning for distributed serving — who owns which rows.
//
// A ShardMap describes how one logical embedding vocabulary is split
// across N `anchor_served` backends: shard i owns the contiguous global
// row range [row_begin_i, row_end_i) (ranges cover [0, total_rows) with
// no gaps), and out-of-vocabulary *word* traffic — strings that do not
// resolve to a global row — is assigned a deterministic home shard by
// FNV-1a hash, so OOV synthesis for a given word always happens on the
// same backend (stable vectors, warm subword caches).
//
// The map is a pure value: routing is a function of (map, key) only, so
// a router restart, a second router instance, or an offline audit script
// all route identically. It serializes to a one-line text form
//   v<version>,host:port:row_begin:row_end,...
// used for --backends flags, config files, and the SHARD_MAP RPC;
// `version` is a monotonically bumped id so rollout tooling can detect a
// topology change mid-flight.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace anchor::cluster {

/// One backend and the global row range it owns.
struct ShardSpec {
  std::string host;
  std::uint16_t port = 0;
  std::uint64_t row_begin = 0;
  std::uint64_t row_end = 0;  // exclusive

  std::uint64_t rows() const { return row_end - row_begin; }
  std::string address() const { return host + ":" + std::to_string(port); }
};

class ShardMap {
 public:
  ShardMap() = default;
  /// Validates: at least one shard, first range starts at 0, ranges are
  /// contiguous and non-empty, ports are non-zero. Throws CheckError.
  ShardMap(std::uint64_t version, std::vector<ShardSpec> shards);

  /// Parses the serialize() text form; throws std::runtime_error with a
  /// position-specific message on malformed input.
  static ShardMap parse(const std::string& text);
  std::string serialize() const;

  std::uint64_t version() const { return version_; }
  std::size_t num_shards() const { return shards_.size(); }
  std::uint64_t total_rows() const {
    return shards_.empty() ? 0 : shards_.back().row_end;
  }
  const ShardSpec& shard(std::size_t i) const { return shards_[i]; }
  const std::vector<ShardSpec>& shards() const { return shards_; }

  /// Shard owning global row `id`. Requires id < total_rows().
  std::size_t shard_of_id(std::uint64_t id) const;
  /// Global row → that shard's local row id (what goes on the wire).
  std::uint64_t local_id(std::uint64_t id) const;
  /// Home shard for a word that does not resolve to a global row:
  /// fnv1a(word) % num_shards — same FNV-1a 64 the canary router hashes
  /// words with, so any protocol implementation can restate it.
  std::size_t shard_of_word(const std::string& word) const;

  bool operator==(const ShardMap& other) const;

 private:
  std::uint64_t version_ = 0;
  std::vector<ShardSpec> shards_;
};

}  // namespace anchor::cluster
