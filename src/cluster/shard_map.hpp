// Vocabulary partitioning for distributed serving — who owns which rows.
//
// A ShardMap describes how one logical embedding vocabulary is split
// across N shard ranges: shard i owns the contiguous global row range
// [row_begin_i, row_end_i) (ranges cover [0, total_rows) with no gaps),
// and out-of-vocabulary *word* traffic — strings that do not resolve to a
// global row — is assigned a deterministic home shard by FNV-1a hash, so
// OOV synthesis for a given word always happens on the same shard
// (stable vectors, warm subword caches).
//
// Each shard range is served by a REPLICA SET of one or more
// `anchor_served` backends holding identical slices: replica(0) is the
// primary (rollout decisions run there first), the rest absorb reads,
// hedges, and failover. The map is a pure value: routing is a function
// of (map, key) only, so a router restart, a second router instance, or
// an offline audit script all route identically. It serializes to a
// one-line text form
//   v<version>,host:port[|host:port...]:row_begin:row_end,...
// used for --backends flags, config files, and the SHARD_MAP RPC. A
// single-replica shard serializes exactly as the pre-replica v1 entry
// (host:port:row_begin:row_end) and v1 text parses unchanged, so the
// SHARD_MAP RPC payload is backward compatible on the wire; `version` is
// a monotonically bumped id so rollout tooling can detect a topology
// change mid-flight.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace anchor::cluster {

/// One backend address within a shard's replica set.
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;

  std::string address() const { return host + ":" + std::to_string(port); }
  bool operator==(const Endpoint& o) const {
    return host == o.host && port == o.port;
  }
};

/// One shard: the global row range and the replica set serving it.
struct ShardSpec {
  ShardSpec() = default;
  /// Single-replica shard (the pre-replica shape most tests/demos build).
  ShardSpec(std::string host, std::uint16_t port, std::uint64_t begin,
            std::uint64_t end)
      : replicas{{std::move(host), port}}, row_begin(begin), row_end(end) {}
  ShardSpec(std::vector<Endpoint> reps, std::uint64_t begin, std::uint64_t end)
      : replicas(std::move(reps)), row_begin(begin), row_end(end) {}

  std::vector<Endpoint> replicas;  // ≥ 1 after ShardMap validation
  std::uint64_t row_begin = 0;
  std::uint64_t row_end = 0;  // exclusive

  std::uint64_t rows() const { return row_end - row_begin; }
  std::size_t num_replicas() const { return replicas.size(); }
  const Endpoint& replica(std::size_t r) const { return replicas[r]; }
  /// Primary replica's host:port — the label used in logs/audit rows.
  std::string address() const {
    return replicas.empty() ? std::string() : replicas[0].address();
  }
  std::string address(std::size_t r) const { return replicas[r].address(); }
};

class ShardMap {
 public:
  ShardMap() = default;
  /// Validates: at least one shard, first range starts at 0, ranges are
  /// contiguous and non-empty, every shard has ≥ 1 replica, ports are
  /// non-zero, no duplicate endpoint within a shard. Throws CheckError.
  ShardMap(std::uint64_t version, std::vector<ShardSpec> shards);

  /// Parses the serialize() text form; throws std::runtime_error with a
  /// position-specific message on malformed input. Accepts both the v1
  /// single-replica entries and '|'-separated replica sets.
  static ShardMap parse(const std::string& text);
  std::string serialize() const;

  std::uint64_t version() const { return version_; }
  std::size_t num_shards() const { return shards_.size(); }
  /// Backends across all replica sets (the probe loop's work list).
  std::size_t num_replicas_total() const;
  std::uint64_t total_rows() const {
    return shards_.empty() ? 0 : shards_.back().row_end;
  }
  const ShardSpec& shard(std::size_t i) const { return shards_[i]; }
  const std::vector<ShardSpec>& shards() const { return shards_; }

  /// Shard owning global row `id`. Requires id < total_rows().
  std::size_t shard_of_id(std::uint64_t id) const;
  /// Global row → that shard's local row id (what goes on the wire).
  std::uint64_t local_id(std::uint64_t id) const;
  /// Home shard for a word that does not resolve to a global row:
  /// fnv1a(word) % num_shards — same FNV-1a 64 the canary router hashes
  /// words with, so any protocol implementation can restate it.
  std::size_t shard_of_word(const std::string& word) const;

  bool operator==(const ShardMap& other) const;

 private:
  std::uint64_t version_ = 0;
  std::vector<ShardSpec> shards_;
};

}  // namespace anchor::cluster
