#include "cluster/client_pool.hpp"

#include "util/check.hpp"

namespace anchor::cluster {

ClusterClientPool::ClusterClientPool(std::size_t size,
                                     const ClusterConfig& config,
                                     std::shared_ptr<ClusterHealth> health,
                                     std::shared_ptr<HedgePolicy> hedge,
                                     std::shared_ptr<ClusterCounters> counters) {
  ANCHOR_CHECK_MSG(size > 0, "ClusterClientPool needs at least one client");
  slots_.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    auto slot = std::make_unique<Slot>();
    slot->client =
        std::make_unique<ClusterClient>(config, health, hedge, counters);
    slots_.push_back(std::move(slot));
  }
}

void ClusterClientPool::shutdown_backends() {
  Slot& slot = *slots_[0];
  std::lock_guard<std::mutex> lock(slot.mu);
  slot.client->shutdown_backends();
}

}  // namespace anchor::cluster
