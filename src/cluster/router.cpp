#include "cluster/router.hpp"

#include <chrono>
#include <sstream>
#include <utility>

#include "net/client.hpp"
#include "serve/deployment_gate.hpp"
#include "util/check.hpp"

namespace anchor::cluster {

namespace {

bool canary_terminal(serve::CanaryState s) {
  return s == serve::CanaryState::kPromoted ||
         s == serve::CanaryState::kRolledBack ||
         s == serve::CanaryState::kAborted ||
         s == serve::CanaryState::kOfflineRejected;
}

}  // namespace

Router::Router(RouterConfig config)
    : config_(std::move(config)),
      windowed_(config_.windowed),
      slo_(config_.slo),
      listener_(net::TcpListener::bind_loopback(config_.port)) {
  // Fail at construction, not at the first connection: an empty map
  // would otherwise throw from a handler thread (outside its try block)
  // and std::terminate the process.
  ANCHOR_CHECK_MSG(config_.map.num_shards() > 0,
                   "Router needs a non-empty ShardMap");
  health_ = std::make_shared<ClusterHealth>(config_.map);
  hedge_ = std::make_shared<HedgePolicy>(config_.map.num_shards(),
                                         config_.hedge_policy);
  counters_ = std::make_shared<ClusterCounters>();
  if (config_.hot_key_capacity != 0) {
    obs::SpaceSavingSketch::Config sketch;
    sketch.capacity = config_.hot_key_capacity;
    obs::RangeHeatMap::Config heat;
    heat.row_begin = 0;
    heat.row_end = config_.map.total_rows();
    heat.buckets = config_.heat_buckets != 0 ? config_.heat_buckets : 1;
    load_ = std::make_unique<obs::KeyLoadRecorder>(sketch, heat);
  }
  ClusterConfig cc_config;
  cc_config.map = config_.map;
  cc_config.io_timeout_ms = config_.backend_io_timeout_ms;
  cc_config.max_attempts = config_.max_attempts;
  cc_config.hedge = config_.hedge;
  // The pooled clients all record into the router's shared windowed ring
  // and global-id key-load recorders (both thread-safe).
  cc_config.windowed = &windowed_;
  cc_config.load = load_.get();
  // hedge_ is shared even when hedging is off (ClusterConfig::hedge
  // gates the behavior): the per-shard RTT histograms are still the
  // router's latency signal worth recording.
  pool_ = std::make_unique<ClusterClientPool>(
      std::max<std::size_t>(config_.pool_size, 1), cc_config, health_,
      hedge_, counters_);
  rollout_.shards.assign(config_.map.num_shards(), {});
  register_metrics();
}

void Router::register_metrics() {
  requests_total_ = &metrics_.counter(
      "anchor_router_requests_total",
      "Request frames dispatched by the router (all types)");
  lookups_total_ = &metrics_.counter(
      "anchor_router_lookups_total",
      "Scatter-gather lookups executed (ids + words)");
  degraded_total_ = &metrics_.counter(
      "anchor_router_degraded_lookups_total",
      "Lookups that returned at least one degraded (zeroed+flagged) row");
  lookup_latency_ = &metrics_.histogram(
      "anchor_router_lookup_latency_us",
      "End-to-end scatter-gather lookup latency as the router sees it "
      "(microseconds)");
  topk_total_ = &metrics_.counter(
      "anchor_router_topk_total",
      "Cluster TOPK searches scatter-gathered and merged by the router");
  topk_partial_ = &metrics_.counter(
      "anchor_router_topk_partial_total",
      "TOPK searches merged from fewer than all shards (partial flag set)");
  topk_latency_ = &metrics_.histogram(
      "anchor_router_topk_latency_us",
      "End-to-end scatter-gather TOPK latency as the router sees it "
      "(microseconds)");
  metrics_.on_collect([this](obs::MetricsRegistry& r) {
    r.gauge("anchor_router_shards_alive",
            "Shards with at least one live replica")
        .set(static_cast<double>(health_->alive()));
    r.gauge("anchor_router_shards_total", "Shards in the shard map")
        .set(static_cast<double>(config_.map.num_shards()));
    r.gauge("anchor_router_replicas_alive",
            "Backend replicas currently marked healthy")
        .set(static_cast<double>(health_->replicas_alive()));
    r.gauge("anchor_router_replicas_total",
            "Backend replicas across all shards")
        .set(static_cast<double>(health_->replicas_total()));
    // Availability counters the pooled clients bump on the data plane.
    r.counter("anchor_router_hedges_total",
              "Hedge sub-requests sent to a second replica")
        .set(counters_->hedges.load(std::memory_order_relaxed));
    r.counter("anchor_router_hedge_wins_total",
              "Hedged replica answered before the straggler")
        .set(counters_->hedge_wins.load(std::memory_order_relaxed));
    r.counter("anchor_router_retries_total",
              "Lookup sub-request re-attempts after a replica failure")
        .set(counters_->retries.load(std::memory_order_relaxed));
    r.counter("anchor_router_failovers_total",
              "Sub-requests moved to a different replica than first chosen")
        .set(counters_->failovers.load(std::memory_order_relaxed));
    // Per-replica health and per-shard hedge delay, labeled series.
    for (std::size_t b = 0; b < config_.map.num_shards(); ++b) {
      const ShardSpec& spec = config_.map.shard(b);
      for (std::size_t rep = 0; rep < spec.num_replicas(); ++rep) {
        r.gauge("anchor_router_replica_up{shard=\"" + std::to_string(b) +
                    "\",replica=\"" +
                    obs::escape_label_value(spec.address(rep)) + "\"}",
                "1 = replica marked healthy, 0 = down")
            .set(health_->healthy(b, rep) ? 1.0 : 0.0);
      }
      r.gauge("anchor_router_hedge_delay_us{shard=\"" + std::to_string(b) +
                  "\"}",
              "Current hedge delay: p99 of the shard's merged RTT "
              "histogram x multiplier, clamped (default until "
              "min_samples)")
          .set(hedge_->hedge_delay_us(b));
    }
    // RolloutState numeric: 0 idle, 1 running, 2 completed, 3 rolled
    // back, 4 aborted (net/wire.hpp enum order).
    r.gauge("anchor_router_rollout_state",
            "Coordinated rollout state (0=idle 1=running 2=completed "
            "3=rolled_back 4=aborted)")
        .set(static_cast<double>(
            static_cast<int>(rollout_status().state)));
    r.counter("anchor_trace_spans_total",
              "Trace spans recorded into this process's span ring")
        .set(obs::Tracer::instance().spans_recorded());
  });
  // The router's own windowed plane: rolling lookup rates, SLO burn, and
  // global-id heavy hitters (label-swap discipline as in net::Server).
  auto last_top = std::make_shared<std::vector<std::string>>();
  metrics_.on_collect([this, last_top](obs::MetricsRegistry& r) {
    const obs::WindowedSnapshot w = windowed_.snapshot();
    r.gauge("anchor_router_window_qps_10s",
            "Cluster lookups/s over the last 10 s")
        .set(w.qps(10'000'000ull));
    r.gauge("anchor_router_window_qps_1m",
            "Cluster lookups/s over the last 60 s")
        .set(w.qps(60'000'000ull));
    r.gauge("anchor_router_window_error_rate_1m",
            "Degraded-lookup fraction over the last 60 s")
        .set(w.error_rate(60'000'000ull));
    r.gauge("anchor_router_window_p99_us_1m",
            "Scatter-gather p99 latency (µs) over the last 60 s")
        .set(w.latency_in(60'000'000ull).quantile(0.99));
    const obs::SloState slo = slo_.evaluate(w);
    r.gauge("anchor_router_slo_burn_short",
            "SLO burn rate over the short window (1.0 = exactly on budget)")
        .set(slo.short_burn);
    r.gauge("anchor_router_slo_burn_long",
            "SLO burn rate over the long window")
        .set(slo.long_burn);
    r.gauge("anchor_router_slo_alert_state",
            "Multi-window burn-rate alert (0 ok, 1 warn, 2 page)")
        .set(static_cast<double>(slo.alert));
    if (load_ != nullptr) {
      const obs::SketchSnapshot sketch = load_->sketch.snapshot();
      r.counter("anchor_router_key_load_records_total",
                "Global key occurrences offered to the router's sketch")
          .set(sketch.total);
      constexpr std::size_t kExportRanks = 8;
      const std::vector<obs::HeavyHitter> top = sketch.top(kExportRanks);
      last_top->resize(kExportRanks);
      for (std::size_t rank = 0; rank < kExportRanks; ++rank) {
        std::string name;
        if (rank < top.size()) {
          name = "anchor_router_top_key_count{rank=\"" +
                 std::to_string(rank) + "\",id=\"" +
                 std::to_string(top[rank].key) + "\"}";
        }
        if ((*last_top)[rank] != name && !(*last_top)[rank].empty()) {
          r.gauge((*last_top)[rank],
                  "Sketch count of the rank-N hottest global key")
              .set(0.0);
        }
        (*last_top)[rank] = name;
        if (!name.empty()) {
          r.gauge(name, "Sketch count of the rank-N hottest global key")
              .set(static_cast<double>(top[rank].count));
        }
      }
      const obs::HeatMapSnapshot heat = load_->heat.snapshot();
      std::size_t populated = 0;
      for (const obs::HeatRange& range : heat.ranges) {
        for (std::size_t b = 0; b < range.buckets.size(); ++b) {
          if (range.buckets[b] == 0) continue;
          ++populated;
          r.counter("anchor_router_heat_bucket_total{bucket=\"" +
                        std::to_string(b) + "\"}",
                    "Lookups landing in this global id-range bucket")
              .set(range.buckets[b]);
        }
      }
      r.gauge("anchor_router_heat_buckets_populated",
              "Router heat-map buckets that have recorded any load")
          .set(static_cast<double>(populated));
    }
  });
}

Router::~Router() { stop(); }

void Router::run() { accept_loop(); }

void Router::start() {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Router::stop() {
  stop_.store(true, std::memory_order_release);
  rollout_abort_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  while (accept_running_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (probe_thread_.joinable()) probe_thread_.join();
  {
    // The rollout thread is replaced only under rollout_mu_ while not
    // running, so joining the current handle here races nothing.
    std::thread rollout;
    {
      std::lock_guard<std::mutex> lock(rollout_mu_);
      rollout.swap(rollout_thread_);
    }
    if (rollout.joinable()) rollout.join();
  }
  reap_connections(/*all=*/true);
  listener_.close();
}

void Router::reap_connections(bool all) {
  std::vector<std::unique_ptr<Connection>> to_join;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (all) {
      to_join.swap(connections_);
    } else {
      for (std::size_t i = 0; i < connections_.size();) {
        if (connections_[i]->done.load(std::memory_order_acquire)) {
          to_join.push_back(std::move(connections_[i]));
          connections_[i] = std::move(connections_.back());
          connections_.pop_back();
        } else {
          ++i;
        }
      }
    }
  }
  for (auto& conn : to_join) conn->thread.join();
}

void Router::accept_loop() {
  accept_running_.store(true, std::memory_order_release);
  if (config_.probe_interval_ms > 0 && !probe_thread_.joinable()) {
    probe_thread_ = std::thread([this] { probe_loop(); });
  }
  while (!stop_.load(std::memory_order_acquire)) {
    reap_connections(/*all=*/false);
    net::TcpStream conn = listener_.accept(config_.poll_interval_ms);
    if (!conn.valid()) continue;
    auto connection = std::make_unique<Connection>();
    Connection* raw = connection.get();
    raw->thread =
        std::thread([this, raw, stream = std::move(conn)]() mutable {
          handle_connection(std::move(stream));
          raw->done.store(true, std::memory_order_release);
        });
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.push_back(std::move(connection));
  }
  accept_running_.store(false, std::memory_order_release);
}

void Router::probe_loop() {
  // First sweep runs immediately so a router started against a dead
  // backend knows within one probe, not one interval. Probes are per
  // REPLICA: one dead member of a replica set must not take the shard's
  // live members out of rotation.
  while (!stop_.load(std::memory_order_acquire)) {
    for (std::size_t b = 0; b < config_.map.num_shards(); ++b) {
      const ShardSpec& spec = config_.map.shard(b);
      for (std::size_t rep = 0; rep < spec.num_replicas(); ++rep) {
        if (stop_.load(std::memory_order_acquire)) return;
        const Endpoint& ep = spec.replica(rep);
        health_->mark(b, rep,
                      ClusterClient::probe(ep.host, ep.port,
                                           config_.backend_io_timeout_ms));
      }
    }
    // Stop-responsive sleep between sweeps.
    for (int waited = 0;
         waited < config_.probe_interval_ms &&
         !stop_.load(std::memory_order_acquire);
         waited += 10) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

void Router::handle_connection(net::TcpStream stream) {
  stream.set_io_timeout(config_.io_timeout_ms);
  net::MsgType type{};
  std::vector<std::uint8_t> payload;
  obs::TraceContext trace;
  try {
    while (!stop_.load(std::memory_order_acquire)) {
      if (!stream.wait_readable(config_.poll_interval_ms)) continue;
      if (!net::read_frame(stream, &type, &payload, &trace)) break;
      // router_recv brackets the whole router-side handling: frame
      // parsed → reply written (scatter/merge spans nest inside it).
      const std::uint64_t recv_ns =
          trace.sampled() ? obs::Tracer::now_ns() : 0;
      const bool keep = dispatch(stream, type, payload, trace);
      if (trace.sampled()) {
        obs::Tracer::instance().record(trace, obs::TraceStage::kRouterRecv,
                                       recv_ns, obs::Tracer::now_ns());
      }
      if (!keep) break;
    }
  } catch (const net::WireError&) {
    // Malformed framing from the client: close without a reply, exactly
    // like the backend server does.
  } catch (const net::NetError&) {
  }
}

bool Router::dispatch(net::TcpStream& stream, net::MsgType type,
                      const std::vector<std::uint8_t>& payload,
                      const obs::TraceContext& trace) {
  net::WireReader reader(payload);
  net::WireWriter reply;
  requests_total_->inc();
  const auto send_error = [&](const std::string& message) {
    net::WireWriter err;
    err.str(message);
    net::write_frame(stream, net::MsgType::kError, err);
  };
  // Borrows a pooled client, runs one scatter-gather lookup on it (timed
  // into the router's latency histogram, lookup/degraded counters
  // maintained), releases the slot BEFORE the reply is written back —
  // a slow client draining its reply must not hold a pool slot.
  const auto timed_lookup = [&](const auto& body) {
    const auto start = std::chrono::steady_clock::now();
    pool_->with_client([&](ClusterClient& cc) {
      if (trace.sampled()) cc.set_trace(trace);
      body(cc);
      if (cc.last_degraded()) degraded_total_->inc();
    });
    lookups_total_->inc();
    lookup_latency_->record(std::chrono::duration<double, std::micro>(
                                std::chrono::steady_clock::now() - start)
                                .count());
  };
  switch (type) {
    case net::MsgType::kLookupIds: {
      const std::uint32_t n = reader.u32();
      if (n > reader.remaining() / sizeof(std::uint64_t)) {
        throw net::WireError("id count exceeds payload");
      }
      std::vector<std::size_t> ids(n);
      for (auto& id : ids) id = static_cast<std::size_t>(reader.u64());
      reader.expect_done();
      try {
        serve::LookupResult merged;
        timed_lookup(
            [&](ClusterClient& cc) { merged = cc.lookup_ids(ids); });
        net::encode_lookup_result(merged, &reply);
        net::write_frame(stream, net::MsgType::kLookupIdsReply, reply);
      } catch (const net::NetError&) {
        throw;  // client-side transport failure mid-reply: close
      } catch (const std::exception& e) {
        send_error(e.what());  // e.g. reply would exceed the frame cap
      }
      return true;
    }
    case net::MsgType::kLookupWords: {
      const std::uint32_t n = reader.u32();
      if (n > reader.remaining() / sizeof(std::uint32_t)) {
        throw net::WireError("word count exceeds payload");
      }
      std::vector<std::string> words(n);
      for (auto& word : words) word = reader.str();
      reader.expect_done();
      try {
        serve::LookupResult merged;
        timed_lookup(
            [&](ClusterClient& cc) { merged = cc.lookup_words(words); });
        net::encode_lookup_result(merged, &reply);
        net::write_frame(stream, net::MsgType::kLookupWordsReply, reply);
      } catch (const net::NetError&) {
        throw;
      } catch (const std::exception& e) {
        send_error(e.what());
      }
      return true;
    }
    case net::MsgType::kTopK: {
      // The router always answers FINAL mode: per-shard candidates are an
      // internal protocol between ClusterClient and the backends, and a
      // router-of-routers would need per-shard row offsets it doesn't
      // have. req.mode is therefore ignored here.
      net::TopKRequest req = net::decode_topk_request(&reader);
      reader.expect_done();
      try {
        ann::TopKResult merged;
        const auto start = std::chrono::steady_clock::now();
        pool_->with_client([&](ClusterClient& cc) {
          if (trace.sampled()) cc.set_trace(trace);
          switch (req.kind) {
            case net::kTopKKindId:
              merged = cc.topk_id(req.id, req.k, req.nprobe, req.rerank);
              break;
            case net::kTopKKindWord:
              merged = cc.topk_word(req.word, req.k, req.nprobe, req.rerank);
              break;
            default:
              merged =
                  cc.topk_vector(req.vector, req.k, req.nprobe, req.rerank);
              break;
          }
        });
        topk_total_->inc();
        if (merged.flags & ann::kTopKFlagPartial) topk_partial_->inc();
        topk_latency_->record(std::chrono::duration<double, std::micro>(
                                  std::chrono::steady_clock::now() - start)
                                  .count());
        net::encode_topk_result(merged, &reply);
        net::write_frame(stream, net::MsgType::kTopKReply, reply);
      } catch (const net::NetError&) {
        throw;
      } catch (const std::exception& e) {
        send_error(e.what());
      }
      return true;
    }
    case net::MsgType::kMetrics: {
      reader.expect_done();
      net::encode_metrics_report(metrics_.snapshot(), &reply);
      net::write_frame(stream, net::MsgType::kMetricsReply, reply);
      return true;
    }
    case net::MsgType::kStats: {
      reader.expect_done();
      const ClusterStatsReport agg =
          pool_->with_client([](ClusterClient& cc) { return cc.stats(); });
      net::encode_server_stats(agg.aggregate, &reply);
      net::write_frame(stream, net::MsgType::kStatsReply, reply);
      return true;
    }
    case net::MsgType::kHeat: {
      reader.expect_done();
      // Pure backend merge, lifted to global id space by the borrowed
      // client: the reply is bit-identical to a client merging the
      // backends' own HEAT replies itself (pinned by cluster_test). The
      // router's own windowed/key-load view is deliberately NOT mixed in
      // — it is exported via this process's Prometheus plane instead.
      const net::HeatReport fleet =
          pool_->with_client([](ClusterClient& cc) { return cc.heat(); });
      net::encode_heat_report(fleet, &reply);
      net::write_frame(stream, net::MsgType::kHeatReply, reply);
      return true;
    }
    case net::MsgType::kPing: {
      reader.expect_done();
      net::write_frame(stream, net::MsgType::kPong, reply);
      return true;
    }
    case net::MsgType::kShardMap: {
      reader.expect_done();
      reply.str(config_.map.serialize());
      net::write_frame(stream, net::MsgType::kShardMapReply, reply);
      return true;
    }
    case net::MsgType::kRolloutStart: {
      const std::string candidate = reader.str();
      const std::uint8_t mode = reader.u8();
      const double fraction = reader.f64();
      const double shadow_rate = reader.f64();
      reader.expect_done();
      const std::string error =
          start_rollout(candidate, mode, fraction, shadow_rate);
      if (!error.empty()) {
        send_error(error);
        return true;
      }
      net::encode_rollout_status(rollout_status(), &reply);
      net::write_frame(stream, net::MsgType::kRolloutStartReply, reply);
      return true;
    }
    case net::MsgType::kRolloutStatus: {
      reader.expect_done();
      net::encode_rollout_status(rollout_status(), &reply);
      net::write_frame(stream, net::MsgType::kRolloutStatusReply, reply);
      return true;
    }
    case net::MsgType::kRolloutAbort: {
      // Drain byte optional, mirroring kCanaryAbort. The abort itself is
      // observed by the rollout thread between shards / canary polls; the
      // reply reports the state at this instant (poll for terminal).
      const bool drain = reader.remaining() > 0 && reader.u8() != 0;
      reader.expect_done();
      (void)drain;  // the rollout thread always drains in-flight canaries
      rollout_abort_.store(true, std::memory_order_release);
      net::encode_rollout_status(rollout_status(), &reply);
      net::write_frame(stream, net::MsgType::kRolloutAbortReply, reply);
      return true;
    }
    case net::MsgType::kTryPromote: {
      reader.str();
      if (reader.remaining() > 0) reader.u8();  // optional force byte
      reader.expect_done();
      send_error(
          "anchor_router does not serve single-shard promotes; use "
          "ROLLOUT_START for a coordinated shard-by-shard rollout");
      return true;
    }
    case net::MsgType::kCanaryStart:
    case net::MsgType::kCanaryStatus:
    case net::MsgType::kCanaryAbort: {
      send_error(
          "canaries run per-shard behind the router; start one through "
          "ROLLOUT_START mode 1 (canary), or address a backend directly");
      return true;
    }
    case net::MsgType::kShutdown: {
      reader.expect_done();
      if (config_.forward_shutdown) pool_->shutdown_backends();
      shutdown_requested_.store(true, std::memory_order_release);
      stop_.store(true, std::memory_order_release);
      net::write_frame(stream, net::MsgType::kShutdownReply, reply);
      return false;
    }
    default: {
      send_error("unknown request type " +
                 std::to_string(static_cast<int>(type)));
      return true;
    }
  }
}

// ---- rollout -----------------------------------------------------------

net::RolloutStatusReport Router::rollout_status() const {
  std::lock_guard<std::mutex> lock(rollout_mu_);
  return rollout_;
}

void Router::set_shard_state(std::size_t shard, net::ShardRolloutState state,
                             const std::string& detail) {
  std::lock_guard<std::mutex> lock(rollout_mu_);
  rollout_.shards[shard].state = state;
  rollout_.shards[shard].detail = detail;
}

void Router::finish_rollout(net::RolloutState terminal,
                            const std::string& candidate,
                            const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(rollout_mu_);
    rollout_.state = terminal;
    rollout_.reason = reason;
  }
  if (!config_.audit_log.empty()) {
    serve::GateReport row;
    row.new_version = candidate;
    row.decision = terminal == net::RolloutState::kCompleted
                       ? serve::GateDecision::kAdmit
                       : serve::GateDecision::kReject;
    row.promoted = terminal == net::RolloutState::kCompleted;
    row.reason = "rollout " + net::rollout_state_name(terminal) + ": " + reason;
    serve::append_audit_csv(config_.audit_log, row);
  }
}

void Router::audit_shard(std::size_t shard, const std::string& candidate,
                         bool promoted, const std::string& detail) {
  if (config_.audit_log.empty()) return;
  serve::GateReport row;
  row.new_version = candidate;
  row.decision =
      promoted ? serve::GateDecision::kAdmit : serve::GateDecision::kReject;
  row.promoted = promoted;
  std::ostringstream os;
  os << "rollout shard " << (shard + 1) << "/" << config_.map.num_shards()
     << " (" << config_.map.shard(shard).address() << "): " << detail;
  row.reason = os.str();
  serve::append_audit_csv(config_.audit_log, row);
}

std::string Router::start_rollout(const std::string& candidate,
                                  std::uint8_t mode, double fraction,
                                  double shadow_rate) {
  if (candidate.empty()) return "empty candidate version";
  if (mode > 1) {
    return "unknown rollout mode " + std::to_string(mode) +
           " (0 = gated, 1 = canary)";
  }
  std::thread previous;
  {
    std::lock_guard<std::mutex> lock(rollout_mu_);
    if (rollout_.state == net::RolloutState::kRunning) {
      return "a rollout is already running (candidate '" +
             rollout_.candidate + "'); abort it first";
    }
    previous.swap(rollout_thread_);  // terminal predecessor, join below
    rollout_ = net::RolloutStatusReport{};
    rollout_.state = net::RolloutState::kRunning;
    rollout_.candidate = candidate;
    rollout_.mode = mode;
    rollout_.map_version = config_.map.version();
    rollout_.shards.assign(config_.map.num_shards(), {});
    rollout_abort_.store(false, std::memory_order_release);
    rollout_thread_ = std::thread([this, candidate, mode, fraction,
                                   shadow_rate] {
      rollout_body(candidate, mode, fraction, shadow_rate);
    });
  }
  if (previous.joinable()) previous.join();
  return "";
}

void Router::rollout_body(std::string candidate, std::uint8_t mode,
                          double fraction, double shadow_rate) {
  const std::size_t n = config_.map.num_shards();
  // Incumbent displaced per promoted shard — what a rollback restores.
  std::vector<std::string> old_versions(n);
  std::vector<std::uint8_t> promoted(n, 0);

  const auto rollback_all = [&] {
    // Reverse order: the most recently flipped shard reverts first, so a
    // concurrent observer sees the promoted prefix only ever shrink.
    // EVERY replica of a promoted shard flipped, so every replica rolls
    // back — a best-effort sweep that keeps going past one dead replica
    // (it rejoins on the incumbent it never left... or gets caught by
    // the version check the next rollout runs).
    for (std::size_t j = n; j-- > 0;) {
      if (!promoted[j]) continue;
      const ShardSpec& spec = config_.map.shard(j);
      std::size_t reverted = 0;
      std::string first_error;
      for (std::size_t rep = 0; rep < spec.num_replicas(); ++rep) {
        const Endpoint& ep = spec.replica(rep);
        try {
          // Forced: the incumbent being restored was serving traffic
          // moments ago, and a near-threshold gate re-run in the reverse
          // direction must not be able to refuse the restore and strand
          // this replica on the rolled-back candidate.
          net::Client client(ep.host, ep.port,
                             config_.backend_io_timeout_ms);
          const serve::GateReport rr =
              client.try_promote(old_versions[j], /*force=*/true);
          if (rr.promoted) {
            ++reverted;
          } else if (first_error.empty()) {
            first_error = ep.address() + " refused: " + rr.reason;
          }
        } catch (const std::exception& e) {
          if (first_error.empty()) {
            first_error = ep.address() + ": " + e.what();
          }
        }
      }
      const bool complete = reverted == spec.num_replicas();
      std::string detail =
          "rolled back " + std::to_string(reverted) + "/" +
          std::to_string(spec.num_replicas()) + " replicas to '" +
          old_versions[j] + "'";
      if (!complete) detail += " (" + first_error + ")";
      set_shard_state(j,
                      complete ? net::ShardRolloutState::kRolledBack
                               : net::ShardRolloutState::kFailed,
                      detail);
      audit_shard(j, candidate, /*promoted=*/false, detail);
    }
  };

  for (std::size_t i = 0; i < n; ++i) {
    if (stop_.load(std::memory_order_acquire) ||
        rollout_abort_.load(std::memory_order_acquire)) {
      rollback_all();
      finish_rollout(net::RolloutState::kAborted, candidate,
                     "rollout aborted by operator before shard " +
                         std::to_string(i + 1));
      return;
    }
    set_shard_state(i, net::ShardRolloutState::kInProgress,
                    mode == 0 ? "gated promote" : "canary");
    std::string detail;
    if (rollout_shard(i, candidate, mode, fraction, shadow_rate,
                      &old_versions[i], &detail)) {
      promoted[i] = 1;
      set_shard_state(i, net::ShardRolloutState::kPromoted, detail);
      audit_shard(i, candidate, /*promoted=*/true, detail);
      continue;
    }
    // Shard i said no (or died): stop here, restore the promoted prefix.
    set_shard_state(i, net::ShardRolloutState::kFailed, detail);
    audit_shard(i, candidate, /*promoted=*/false, detail);
    promoted[i] = 0;
    rollback_all();
    const bool aborted = rollout_abort_.load(std::memory_order_acquire);
    finish_rollout(aborted ? net::RolloutState::kAborted
                           : net::RolloutState::kRolledBack,
                   candidate,
                   "shard " + std::to_string(i + 1) + "/" +
                       std::to_string(n) + " (" +
                       config_.map.shard(i).address() + ") " +
                       (aborted ? "aborted" : "refused") + ": " + detail);
    return;
  }
  finish_rollout(net::RolloutState::kCompleted, candidate,
                 "candidate '" + candidate + "' live on all " +
                     std::to_string(n) + " shards");
}

bool Router::rollout_shard(std::size_t shard, const std::string& candidate,
                           std::uint8_t mode, double fraction,
                           double shadow_rate, std::string* old_version,
                           std::string* detail) {
  // A shard's replica set moves as ONE unit: the gate/canary decision
  // runs once, on the primary (replica 0) — its traffic sample and audit
  // trail speak for the identically-sliced followers — and only if it
  // admits does the candidate flip on every follower (forced: the
  // decision is already made; a follower re-running a near-threshold
  // gate must not be able to split the replica set across versions). A
  // follower that cannot flip fails the WHOLE shard, and the replicas
  // flipped so far revert, so a replica set is never left mixed.
  const ShardSpec& spec = config_.map.shard(shard);
  const Endpoint& primary = spec.replica(0);
  // Best-effort kill switch for the failure paths below: a canary left
  // RUNNING on a shard the rollout has given up on would keep measuring
  // and could later promote the candidate BY ITSELF — one shard quietly
  // converging on the version the rollout rolled back everywhere else.
  // A fresh connection (the original one may be the thing that broke).
  // Only fires for a canary THIS rollout started (never an operator's
  // pre-existing one, whose "already running" error lands in the catch
  // below with canary_started still false).
  bool canary_started = false;
  const auto abort_shard_canary = [&] {
    if (!canary_started) return;
    try {
      net::Client(primary.host, primary.port, config_.backend_io_timeout_ms)
          .canary_abort(/*drain=*/true);
    } catch (const std::exception&) {
      // Unreachable shard: nothing to abort from here; the canary dies
      // with the backend or decides on its own — surfaced via detail.
    }
  };
  // Phase 2 of the unit move: flip the followers, reverting this shard's
  // already-flipped replicas (primary included) if one refuses.
  const auto flip_followers = [&]() -> bool {
    for (std::size_t rep = 1; rep < spec.num_replicas(); ++rep) {
      const Endpoint& ep = spec.replica(rep);
      std::string error;
      try {
        net::Client follower(ep.host, ep.port,
                             config_.backend_io_timeout_ms);
        const serve::GateReport rr =
            follower.try_promote(candidate, /*force=*/true);
        if (rr.promoted) continue;
        error = "follower " + ep.address() + " refused: " + rr.reason;
      } catch (const std::exception& e) {
        error = "follower " + ep.address() + ": " + e.what();
        health_->mark(shard, rep, false);
      }
      // Revert primary + the followers flipped before this one.
      for (std::size_t back = 0; back < rep; ++back) {
        const Endpoint& bep = spec.replica(back);
        try {
          net::Client(bep.host, bep.port, config_.backend_io_timeout_ms)
              .try_promote(*old_version, /*force=*/true);
        } catch (const std::exception&) {
        }
      }
      *detail += "; " + error;
      return false;
    }
    if (spec.num_replicas() > 1) {
      *detail += " (+" + std::to_string(spec.num_replicas() - 1) +
                 " replicas)";
    }
    return true;
  };
  try {
    net::Client client(primary.host, primary.port,
                       config_.backend_io_timeout_ms);
    if (mode == 0) {
      const serve::GateReport rep = client.try_promote(candidate);
      *detail = rep.reason;
      if (!rep.promoted) return false;
      *old_version = rep.old_version;
      return flip_followers();
    }
    // Canary mode: start it, then poll this shard to its own terminal
    // decision — the per-shard Hoeffding machinery is exactly the single-
    // node canary, the router only sequences it.
    net::CanaryStatusReport st =
        client.canary_start(candidate, fraction, shadow_rate);
    canary_started = st.state == serve::CanaryState::kRunning;
    while (!canary_terminal(st.state) &&
           st.state != serve::CanaryState::kNone) {
      if (stop_.load(std::memory_order_acquire) ||
          rollout_abort_.load(std::memory_order_acquire)) {
        st = client.canary_abort(/*drain=*/true);
        *detail = "canary aborted by rollout abort; " + st.online.summary();
        return false;
      }
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config_.rollout_poll_ms));
      st = client.canary_status();
    }
    *detail =
        st.reason.empty() ? serve::canary_state_name(st.state) : st.reason;
    if (st.state == serve::CanaryState::kPromoted) {
      *old_version = st.incumbent;
      return flip_followers();
    }
    if (st.state == serve::CanaryState::kNone && st.offline.promoted) {
      // No incumbent on this shard: promoted outright without a canary.
      *old_version = st.offline.old_version;
      return flip_followers();
    }
    return false;
  } catch (const net::NetError& e) {
    *detail = e.what();
    // One fresh-connection abort attempt before declaring the shard
    // down: a single dropped reply must not orphan a running canary that
    // could later promote the rolled-back candidate on this shard alone.
    abort_shard_canary();
    health_->mark(shard, 0, false);  // unreachable primary control plane
    return false;
  } catch (const std::exception& e) {
    // RpcError / WireError: the shard answered (it is alive), it just
    // refused or mangled the control-plane exchange.
    *detail = e.what();
    abort_shard_canary();
    return false;
  }
}

}  // namespace anchor::cluster
