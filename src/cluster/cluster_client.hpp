// Scatter-gather lookup client over a ShardMap of anchor_served backends.
//
// A ClusterClient speaks the standard wire protocol (net/PROTOCOL.md) to
// every backend over one persistent connection each. A batched lookup is
// split by the map — global row ids to the shard owning their range
// (translated to that shard's local id space), word strings to the row
// they resolve to, or to their FNV home shard when they are OOV — then
// the per-backend sub-requests are PIPELINED: all frames go out before
// any reply is read, so the backends execute concurrently and the
// caller's latency is the slowest involved shard, not the sum. Replies
// scatter back into request order, producing a LookupResult bit-identical
// to a single-process store holding the concatenated rows (same id → same
// bytes; quantized deployments must share one clip threshold via
// SnapshotConfig::clip_override — see README "Distributed serving").
//
// Failure policy (the degraded-mode contract): a backend that refuses,
// stalls past the I/O timeout, or answers garbage gets ONE
// reconnect-and-resend retry; if that also fails, its rows come back
// zeroed and flagged kLookupFlagDegraded — a partial result, never an
// exception — and the shard is marked down in the shared ClusterHealth so
// subsequent lookups skip it until a health probe sees it answer again.
//
// Thread-compatibility: a ClusterClient is NOT thread-safe (it owns
// blocking per-backend streams); give each serving thread its own and
// share only the ClusterHealth.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/shard_map.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "obs/trace.hpp"
#include "serve/lookup_service.hpp"

namespace anchor::cluster {

struct ClusterConfig {
  ShardMap map;
  /// Per-recv/send stall bound on backend connections: a backend that
  /// accepts a frame and never answers surfaces as a degraded shard after
  /// this long instead of hanging the caller. 0 disables.
  int io_timeout_ms = 2000;
  /// One reconnect-and-resend attempt per backend per lookup before its
  /// rows degrade. Off = fail straight to the partial result (tests).
  bool retry = true;
};

/// Shared per-backend up/down state: handlers mark a shard down the moment
/// an exchange fails (so the next lookup degrades instantly instead of
/// re-paying the timeout) and the router's probe loop marks it up again
/// once it answers a ping. All methods are thread-safe.
class ClusterHealth {
 public:
  explicit ClusterHealth(std::size_t num_shards);
  bool healthy(std::size_t shard) const;
  void mark(std::size_t shard, bool up);
  std::size_t num_shards() const { return up_.size(); }
  std::size_t alive() const;

 private:
  // deque-of-atomics is not movable; a fixed vector of wrappers is enough
  // (the shard count never changes after construction).
  struct Flag {
    std::atomic<bool> up{true};
  };
  std::vector<Flag> up_;
};

/// Aggregated view of a control-plane fan-out (stats, ping).
struct ClusterStatsReport {
  net::ServerStatsReport aggregate;  // counters summed, histograms merged
  /// live_version per shard ("" when the shard did not answer).
  std::vector<std::string> shard_versions;
  std::size_t shards_answering = 0;
};

class ClusterClient {
 public:
  explicit ClusterClient(ClusterConfig config,
                         std::shared_ptr<ClusterHealth> health = nullptr);

  /// Batched lookup by GLOBAL row id. Ids ≥ map.total_rows() come back
  /// zeroed + kLookupFlagOov (the single-process contract); rows owned by
  /// an unreachable shard come back zeroed + kLookupFlagDegraded.
  serve::LookupResult lookup_ids(const std::vector<std::size_t>& ids);

  /// Batched lookup by word. Words resolving to a global row route like
  /// ids; anything else goes to its FNV home shard for OOV synthesis
  /// (deterministic per word, but synthesized from that shard's table —
  /// not comparable to a single-process OOV table).
  serve::LookupResult lookup_words(const std::vector<std::string>& words);

  /// True when the most recent lookup had at least one degraded row.
  bool last_degraded() const { return last_degraded_; }
  /// Per-shard success of the most recent lookup (1 = answered or not
  /// involved, 0 = failed). Sized num_shards().
  const std::vector<std::uint8_t>& last_shard_ok() const {
    return last_shard_ok_;
  }

  /// Trace context for the NEXT lookup only: the router stamps the
  /// request's context here before calling lookup_*, each backend frame
  /// carries a child of it, and the scatter/per-shard-RTT/merge spans are
  /// recorded against it. Consumed (reset) by the lookup, so untraced
  /// requests on the same connection never inherit a stale trace.
  void set_trace(const obs::TraceContext& ctx) { trace_ = ctx; }

  /// Control plane: kStats to every shard (skipping ones marked down),
  /// summing counters and MERGING the latency histograms — the
  /// aggregate's percentiles are recomputed from the merged buckets, not
  /// maxed across shards. aggregate.live_version is the shards'
  /// unanimous version, or "mixed" while they disagree.
  ClusterStatsReport stats();
  /// Best-effort kShutdown to every reachable backend.
  void shutdown_backends();

  const ShardMap& map() const { return config_.map; }
  const std::shared_ptr<ClusterHealth>& health() const { return health_; }

  /// One fresh-connection ping probe (the router's health loop): true iff
  /// host:port accepts, answers kPong within timeout_ms.
  static bool probe(const std::string& host, std::uint16_t port,
                    int timeout_ms);

 private:
  /// Per-backend slice of one scatter-gather lookup.
  struct Plan {
    std::vector<std::uint64_t> local_ids;   // kLookupIds sub-request
    std::vector<std::uint32_t> id_slots;    // → caller slots
    std::vector<std::string> words;         // kLookupWords sub-request
    std::vector<std::uint32_t> word_slots;  // → caller slots
    bool involved() const { return !local_ids.empty() || !words.empty(); }
  };

  net::TcpStream* stream(std::size_t shard);  // connect on demand
  void drop(std::size_t shard);
  bool send_plan(std::size_t shard, const Plan& plan);
  /// Reads one reply per sub-request in `plan`; false on any failure.
  bool read_plan(std::size_t shard, const Plan& plan,
                 serve::LookupResult* ids_reply,
                 serve::LookupResult* words_reply);
  serve::LookupResult execute(const std::vector<Plan>& plans,
                              std::size_t n_slots,
                              std::vector<std::uint8_t> flags);

  ClusterConfig config_;
  std::shared_ptr<ClusterHealth> health_;
  std::vector<std::optional<net::TcpStream>> streams_;
  obs::TraceContext trace_;  // pending trace for the next lookup
  bool last_degraded_ = false;
  std::vector<std::uint8_t> last_shard_ok_;
  /// Last observed embedding dim / majority version: the fallback shape
  /// for batches that reach no shard (all-OOV with the shard-0 probe
  /// failing, or every involved shard degraded), so replies keep the
  /// single-process "store dim + live version, rows zeroed and flagged"
  /// contract instead of collapsing to dim 0.
  std::size_t hint_dim_ = 0;
  std::string hint_version_;
};

}  // namespace anchor::cluster
