// Scatter-gather lookup client over a ShardMap of anchor_served backends,
// replica-aware: every shard range is served by a replica set, and the
// client's job is to make replica failure and replica tail latency
// invisible to the caller.
//
// A ClusterClient speaks the standard wire protocol (net/PROTOCOL.md) to
// the backends over persistent per-replica connections. A batched lookup
// is split by the map — global row ids to the shard owning their range
// (translated to that shard's local id space), word strings to the row
// they resolve to, or to their FNV home shard when they are OOV — then
// the per-shard sub-requests are PIPELINED: all frames go out before any
// reply is read, so the backends execute concurrently and the caller's
// latency is the slowest involved shard, not the sum. Replies scatter
// back into request order, producing a LookupResult bit-identical to a
// single-process store holding the concatenated rows (same id → same
// bytes; quantized deployments must share one clip threshold via
// SnapshotConfig::clip_override — see README "Distributed serving").
//
// Replica policy (per shard, per lookup):
//   • SELECTION — the sub-request goes to the least-loaded LIVE replica
//     per the shared ClusterHealth (in-flight counters, round-robin tie
//     break), so pooled clients spread reads across the set.
//   • HEDGING — if the chosen replica has not started answering within
//     the shard's hedge delay (derived from the p99 of the shard's merged
//     RTT histogram via HedgePolicy), the same sub-request is sent to a
//     second live replica; the first complete reply wins and the loser's
//     eventual reply is drained and discarded (replies stay in-order per
//     connection, so the loser's frames are counted and consumed later,
//     never misattributed).
//   • FAILOVER — a replica that refuses, stalls past the I/O timeout, or
//     answers garbage is marked down in ClusterHealth and the sub-request
//     retries on the next live replica, with exponential backoff + jitter
//     between attempts (bounded by max_attempts). Rows come back zeroed
//     and flagged kLookupFlagDegraded — a partial result, never an
//     exception — only when EVERY replica of the shard is down or
//     exhausted.
//
// Thread-compatibility: a ClusterClient is NOT thread-safe (it owns
// blocking per-replica streams); give each serving thread its own — or
// use ClusterClientPool — and share the ClusterHealth, HedgePolicy, and
// ClusterCounters across all of them (that sharing is what makes the
// hedge delay "merged": every client records RTTs into the same per-shard
// histogram).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ann/ivf_pq.hpp"
#include "cluster/shard_map.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "obs/heavy_hitters.hpp"
#include "obs/log_histogram.hpp"
#include "obs/trace.hpp"
#include "obs/windowed.hpp"
#include "serve/lookup_service.hpp"

namespace anchor::cluster {

struct ClusterConfig {
  ShardMap map;
  /// Per-recv/send stall bound on backend connections: a backend that
  /// accepts a frame and never answers surfaces as a failed attempt after
  /// this long instead of hanging the caller. 0 disables.
  int io_timeout_ms = 2000;
  /// Master retry switch (tests fail straight to the partial result with
  /// it off — equivalent to max_attempts = 1).
  bool retry = true;
  /// Attempt budget per shard per lookup across its replicas; the degraded
  /// flag fires only when the budget or the live replica set is exhausted.
  int max_attempts = 3;
  /// Exponential backoff between failover attempts: attempt k sleeps
  /// min(base << (k-1), max) ms, scaled by a uniform [0.5, 1.0) jitter so
  /// pooled clients retrying the same dead replica do not stampede in
  /// phase. The FIRST failover is immediate (the replacement replica is
  /// presumed healthy); backoff paces the attempts after it.
  int backoff_base_ms = 2;
  int backoff_max_ms = 50;
  /// Hedge the straggler replica (needs a HedgePolicy and ≥ 2 replicas on
  /// the shard to take effect).
  bool hedge = true;
  /// When set, every cluster lookup is recorded as one windowed request
  /// (latency = full scatter-gather, error = degraded result) — the
  /// router's own rolling-rate view, independent of the backends'.
  /// Thread-safe; shared across a pool's clients. Not owned.
  obs::WindowedStats* windowed = nullptr;
  /// When set, resolved GLOBAL rows are attributed per lookup — the
  /// router-side key-load view in global id space (the backends' own
  /// sketches are local-space and reachable via heat()). Not owned.
  obs::KeyLoadRecorder* load = nullptr;
};

/// Shared per-replica up/down + in-flight load state: handlers mark a
/// replica down the moment an exchange fails (so the next lookup fails
/// over instantly instead of re-paying the timeout) and the router's
/// probe loop marks it up again once it answers a ping. Load counters
/// track in-flight sub-requests per replica — the "least-loaded" in
/// replica selection. All methods are thread-safe.
class ClusterHealth {
 public:
  explicit ClusterHealth(const ShardMap& map);
  /// Legacy shape: `num_shards` single-replica shards.
  explicit ClusterHealth(std::size_t num_shards);

  bool healthy(std::size_t shard, std::size_t replica = 0) const;
  void mark(std::size_t shard, std::size_t replica, bool up);
  /// Marks every replica of the shard (the pre-replica call shape).
  void mark(std::size_t shard, bool up);

  std::size_t num_shards() const { return offsets_.size() - 1; }
  std::size_t replicas(std::size_t shard) const {
    return offsets_[shard + 1] - offsets_[shard];
  }
  /// Shards with at least one live replica (the availability gauge).
  std::size_t alive() const;
  bool shard_alive(std::size_t shard) const;
  std::size_t alive_replicas(std::size_t shard) const;
  std::size_t replicas_total() const { return flags_.size(); }
  std::size_t replicas_alive() const;

  /// In-flight sub-request accounting for least-loaded selection.
  void add_load(std::size_t shard, std::size_t replica, std::int64_t delta);
  std::uint64_t load(std::size_t shard, std::size_t replica) const;

 private:
  // deque-of-atomics is not movable; a fixed vector of wrappers is enough
  // (the topology never changes after construction).
  struct Rep {
    std::atomic<bool> up{true};
    std::atomic<std::int64_t> load{0};
  };
  std::size_t index(std::size_t shard, std::size_t replica) const {
    return offsets_[shard] + replica;
  }
  std::vector<Rep> flags_;
  std::vector<std::size_t> offsets_;  // shard → first replica index
};

/// Shared hedge-delay policy: one RTT histogram per shard, recorded by
/// every client sharing the policy (the pool), so the delay derives from
/// the MERGED per-shard latency distribution — delay = clamp(p-quantile ×
/// multiplier). Until a shard has min_samples the default delay applies.
/// record() is lock-free; the quantile is recomputed lazily every
/// refresh_every records instead of per call.
class HedgePolicy {
 public:
  struct Config {
    double quantile = 0.99;
    double multiplier = 1.0;
    /// Samples required before the histogram replaces the default.
    std::uint64_t min_samples = 64;
    std::uint64_t refresh_every = 64;
    double default_delay_us = 20000.0;
    double min_delay_us = 1000.0;
    double max_delay_us = 200000.0;
  };

  // Two overloads (not one defaulted argument): GCC cannot evaluate a
  // nested-struct NSDMI default argument inside the enclosing class.
  explicit HedgePolicy(std::size_t num_shards);
  HedgePolicy(std::size_t num_shards, Config config);

  void record(std::size_t shard, double rtt_us);
  /// Microseconds to wait on the first replica before hedging.
  double hedge_delay_us(std::size_t shard) const;
  /// The merged per-shard RTT distribution the delay derives from.
  obs::HistogramSnapshot shard_snapshot(std::size_t shard) const;
  std::uint64_t samples(std::size_t shard) const;
  const Config& config() const { return config_; }

 private:
  struct PerShard {
    obs::LogHistogram rtt;
    std::atomic<std::uint64_t> next_refresh{0};
    std::atomic<double> cached_delay_us{0.0};
  };
  Config config_;
  std::vector<std::unique_ptr<PerShard>> shards_;
};

/// Shared availability counters the pool's clients bump and the router
/// bridges into its MetricsRegistry. Thread-safe.
struct ClusterCounters {
  std::atomic<std::uint64_t> hedges{0};     // hedge sub-requests sent
  std::atomic<std::uint64_t> hedge_wins{0}; // hedged replica answered first
  std::atomic<std::uint64_t> retries{0};    // re-attempts after a failure
  std::atomic<std::uint64_t> failovers{0};  // attempts moved to a different
                                            // replica than first selected
};

/// Aggregated view of a control-plane fan-out (stats, ping).
struct ClusterStatsReport {
  net::ServerStatsReport aggregate;  // counters summed, histograms merged
  /// live_version per shard ("" when no replica of the shard answered).
  std::vector<std::string> shard_versions;
  /// Row encoding per shard (same answering-replica convention); the
  /// aggregate reports the unanimous value or "mixed".
  std::vector<std::string> shard_encodings;
  std::size_t shards_answering = 0;
};

class ClusterClient {
 public:
  explicit ClusterClient(ClusterConfig config,
                         std::shared_ptr<ClusterHealth> health = nullptr,
                         std::shared_ptr<HedgePolicy> hedge = nullptr,
                         std::shared_ptr<ClusterCounters> counters = nullptr);

  /// Batched lookup by GLOBAL row id. Ids ≥ map.total_rows() come back
  /// zeroed + kLookupFlagOov (the single-process contract); rows owned by
  /// a shard whose EVERY replica is unreachable come back zeroed +
  /// kLookupFlagDegraded.
  serve::LookupResult lookup_ids(const std::vector<std::size_t>& ids);

  /// Batched lookup by word. Words resolving to a global row route like
  /// ids; anything else goes to its FNV home shard for OOV synthesis
  /// (deterministic per word, but synthesized from that shard's table —
  /// not comparable to a single-process OOV table).
  serve::LookupResult lookup_words(const std::vector<std::string>& words);

  /// Cluster-wide approximate top-k (the TOPK RPC, fanned out): every
  /// shard answers a candidates-mode search over its row slice, and the
  /// router-side merge — global top-`rerank` by (ADC distance, global id)
  /// via heap selection, then top-`k` by (exact distance, global id) — is
  /// bit-identical to a single-process index over the concatenated rows,
  /// PROVIDED the shards share IVF-PQ training artifacts (see
  /// src/ann/ivf_pq.hpp; analogous to the shared clip threshold for
  /// lookups). nprobe/rerank 0 use the deployment defaults, sent
  /// explicitly so backends and merge agree on the truncation depth.
  /// Hits from shards whose every replica is down are missing and the
  /// result carries ann::kTopKFlagPartial (the degraded-lookup contract).
  ann::TopKResult topk_vector(const std::vector<float>& query, std::size_t k,
                              std::size_t nprobe = 0, std::size_t rerank = 0);
  /// Resolve a GLOBAL row id / word to its vector first (one cluster
  /// lookup), then search. Throws when the query row itself cannot be
  /// served (owning shard down, id out of range).
  ann::TopKResult topk_id(std::uint64_t id, std::size_t k,
                          std::size_t nprobe = 0, std::size_t rerank = 0);
  ann::TopKResult topk_word(const std::string& word, std::size_t k,
                            std::size_t nprobe = 0, std::size_t rerank = 0);

  /// True when the most recent lookup had at least one degraded row.
  bool last_degraded() const { return last_degraded_; }
  /// Per-shard success of the most recent lookup (1 = answered or not
  /// involved, 0 = failed). Sized num_shards().
  const std::vector<std::uint8_t>& last_shard_ok() const {
    return last_shard_ok_;
  }

  /// Trace context for the NEXT lookup only: the router stamps the
  /// request's context here before calling lookup_*, each backend frame
  /// carries a child of it, and the scatter/per-shard-RTT/merge spans are
  /// recorded against it. Consumed (reset) by the lookup, so untraced
  /// requests on the same connection never inherit a stale trace.
  void set_trace(const obs::TraceContext& ctx) { trace_ = ctx; }

  /// Control plane: kStats to every live replica of every shard, summing
  /// counters and MERGING the latency histograms — the aggregate's
  /// percentiles are recomputed from the merged buckets, not maxed.
  /// aggregate.live_version is the replicas' unanimous version, or
  /// "mixed" while they disagree; shard_versions[i] is shard i's first
  /// answering replica's version.
  ClusterStatsReport stats();
  /// Control plane: kHeat to every live replica of every shard. Replicas
  /// of one shard report the same LOCAL id space and merge first; each
  /// shard's merged sketch keys and heat ranges are then lifted by the
  /// shard's global row_begin and merged across shards — the fleet's
  /// load/heat view in GLOBAL id space, bit-identical in any merge order
  /// (the contract the router's HEAT reply is tested against). Backends
  /// whose every replica is down contribute nothing (degraded, like
  /// stats). Old backends answering kError are skipped the same way.
  net::HeatReport heat();
  /// Best-effort kShutdown to every reachable replica of every shard.
  void shutdown_backends();

  const ShardMap& map() const { return config_.map; }
  const std::shared_ptr<ClusterHealth>& health() const { return health_; }
  const std::shared_ptr<HedgePolicy>& hedge_policy() const { return hedge_; }
  const std::shared_ptr<ClusterCounters>& counters() const {
    return counters_;
  }

  /// One fresh-connection ping probe (the router's health loop): true iff
  /// host:port accepts, answers kPong within timeout_ms.
  static bool probe(const std::string& host, std::uint16_t port,
                    int timeout_ms);

 private:
  /// Per-shard slice of one scatter-gather lookup.
  struct Plan {
    std::vector<std::uint64_t> local_ids;   // kLookupIds sub-request
    std::vector<std::uint32_t> id_slots;    // → caller slots
    std::vector<std::string> words;         // kLookupWords sub-request
    std::vector<std::uint32_t> word_slots;  // → caller slots
    /// Candidates-mode TOPK broadcast sub-request (one per shard on a
    /// cluster search); rides the same scatter/hedge/failover machinery.
    std::optional<net::TopKRequest> topk;
    bool involved() const {
      return !local_ids.empty() || !words.empty() || topk.has_value();
    }
    std::size_t frames() const {
      return (local_ids.empty() ? 0 : 1) + (words.empty() ? 0 : 1) +
             (topk ? 1 : 0);
    }
  };

  /// One persistent replica connection plus the frames an abandoned hedge
  /// still owes on it (per-connection replies are in-order, so owed
  /// replies MUST be consumed — or the stream dropped — before the next
  /// sub-request, or replies would misalign).
  struct ReplicaConn {
    std::optional<net::TcpStream> stream;
    std::size_t owed_frames = 0;
  };

  /// Per-shard scatter bookkeeping for one lookup.
  struct ShardState {
    bool sent = false;
    std::size_t primary = kNone;  // replica the plan went to
    std::size_t hedged = kNone;   // second replica, kNone = no hedge
    std::uint64_t send_ns = 0;
    int attempts = 0;
  };
  static constexpr std::size_t kNone = ~std::size_t{0};

  net::TcpStream* stream(std::size_t shard, std::size_t replica);
  void drop(std::size_t shard, std::size_t replica);
  bool replica_up(std::size_t shard, std::size_t replica) const;
  void mark_replica(std::size_t shard, std::size_t replica, bool up);
  /// Least-loaded live replica (round-robin tie break), excluding
  /// `exclude`; prefers replicas with no owed frames. kNone if none live.
  std::size_t choose_replica(std::size_t shard, std::size_t exclude);
  /// Consumes frames an abandoned hedge owes on this connection; drops
  /// the stream when they cannot be drained within `budget_ms`.
  bool settle_owed(std::size_t shard, std::size_t replica, int budget_ms);
  /// Opportunistic zero-wait drain across all connections (end of lookup).
  void drain_owed_nonblocking();

  bool send_plan(std::size_t shard, std::size_t replica, const Plan& plan);
  /// Reads one reply per sub-request in `plan`; false on any failure.
  bool read_plan(std::size_t shard, std::size_t replica, const Plan& plan,
                 serve::LookupResult* ids_reply,
                 serve::LookupResult* words_reply,
                 ann::TopKResult* topk_reply = nullptr);
  /// Scatter phase: pick a replica and send, failing over on send errors.
  void scatter_shard(std::size_t shard, const Plan& plan, ShardState* st);
  /// Gather phase: hedge/read/fail over until a full reply or exhaustion.
  bool gather_shard(std::size_t shard, const Plan& plan, ShardState* st,
                    serve::LookupResult* ids_reply,
                    serve::LookupResult* words_reply,
                    ann::TopKResult* topk_reply = nullptr);
  void backoff_sleep(int attempt);

  serve::LookupResult execute(const std::vector<Plan>& plans,
                              std::size_t n_slots,
                              std::vector<std::uint8_t> flags);

  ClusterConfig config_;
  std::shared_ptr<ClusterHealth> health_;
  std::shared_ptr<HedgePolicy> hedge_;
  std::shared_ptr<ClusterCounters> counters_;
  std::vector<std::vector<ReplicaConn>> conns_;  // [shard][replica]
  std::size_t rr_ = 0;          // selection tie-break rotation
  std::uint64_t jitter_state_;  // backoff jitter PRNG (splitmix64)
  obs::TraceContext trace_;     // pending trace for the next lookup
  bool last_degraded_ = false;
  std::vector<std::uint8_t> last_shard_ok_;
  /// Last observed embedding dim / majority version: the fallback shape
  /// for batches that reach no shard (all-OOV with the shard-0 probe
  /// failing, or every involved shard degraded), so replies keep the
  /// single-process "store dim + live version, rows zeroed and flagged"
  /// contract instead of collapsing to dim 0.
  std::size_t hint_dim_ = 0;
  std::string hint_version_;
};

}  // namespace anchor::cluster
