#include "core/measures.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "la/kernels.hpp"
#include "la/procrustes.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace anchor::core {

namespace {

/// Indices of the k most cosine-similar rows to `query` (self excluded).
/// `sims` is caller-provided scratch of size n (reused across queries).
std::vector<std::size_t> top_k_neighbors(const la::Matrix& normalized,
                                         std::size_t query, std::size_t k,
                                         std::vector<double>& sims) {
  const std::size_t n = normalized.rows();
  la::kernels::matvec_rowmajor(normalized.data(), n, normalized.cols(),
                               normalized.row(query), sims.data());
  sims[query] = -2.0;  // exclude self

  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0u);
  const std::size_t kk = std::min(k, n - 1);
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(kk),
                    idx.end(), [&](std::size_t a, std::size_t b) {
                      // Deterministic tie-break on index keeps the measure
                      // reproducible across platforms.
                      return sims[a] != sims[b] ? sims[a] > sims[b] : a < b;
                    });
  idx.resize(kk);
  return idx;
}

}  // namespace

la::Matrix normalize_rows_l2(const la::Matrix& m) {
  la::Matrix out = m;
  const std::size_t cols = out.cols();
  util::global_pool().parallel_for(0, out.rows(), [&](std::size_t i) {
    la::kernels::l2_normalize(out.row(i), cols);
  });
  return out;
}

double knn_measure_normalized(const la::Matrix& nx, const la::Matrix& nxt,
                              std::size_t k, std::size_t num_queries,
                              std::uint64_t seed) {
  ANCHOR_CHECK_EQ(nx.rows(), nxt.rows());
  ANCHOR_CHECK_GT(k, 0u);
  const std::size_t n = nx.rows();
  ANCHOR_CHECK_GE(n, 2u);

  // Sample query words without replacement.
  std::vector<std::size_t> queries(n);
  std::iota(queries.begin(), queries.end(), 0u);
  Rng rng(seed);
  rng.shuffle(queries);
  queries.resize(std::min(num_queries, n));

  // Queries are scored in parallel; each writes only its own overlap slot
  // and the reduction below runs in fixed query order, so the value is
  // independent of the pool size.
  std::vector<double> overlaps(queries.size(), 0.0);
  util::global_pool().parallel_for(0, queries.size(), [&](std::size_t qi) {
    thread_local std::vector<double> sims;
    if (sims.size() < n) sims.resize(n);
    const std::size_t q = queries[qi];
    const auto a = top_k_neighbors(nx, q, k, sims);
    const auto b = top_k_neighbors(nxt, q, k, sims);
    const std::unordered_set<std::size_t> sa(a.begin(), a.end());
    std::size_t hits = 0;
    for (const std::size_t w : b) hits += sa.count(w);
    overlaps[qi] = static_cast<double>(hits) / static_cast<double>(a.size());
  });
  double overlap_sum = 0.0;
  for (const double o : overlaps) overlap_sum += o;
  return overlap_sum / static_cast<double>(queries.size());
}

double knn_measure(const la::Matrix& x, const la::Matrix& x_tilde,
                   std::size_t k, std::size_t num_queries,
                   std::uint64_t seed) {
  return knn_measure_normalized(normalize_rows_l2(x), normalize_rows_l2(x_tilde),
                                k, num_queries, seed);
}

double semantic_displacement(const la::Matrix& x, const la::Matrix& x_tilde) {
  ANCHOR_CHECK_EQ(x.rows(), x_tilde.rows());
  ANCHOR_CHECK_EQ(x.cols(), x_tilde.cols());
  const la::Matrix aligned = la::procrustes_align(x, x_tilde);
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  // Per-row cosine distances land in their own slots; the sum below runs in
  // row order, so the measure is thread-count-independent.
  std::vector<double> dists(n, 0.0);
  util::global_pool().parallel_for(0, n, [&](std::size_t i) {
    const double* a = x.row(i);
    const double* b = aligned.row(i);
    const double dot = la::kernels::dot(a, b, d);
    const double na = la::kernels::dot(a, a, d);
    const double nb = la::kernels::dot(b, b, d);
    const double denom = std::sqrt(na * nb);
    dists[i] = (denom > 0.0) ? 1.0 - dot / denom : 0.0;
  });
  double acc = 0.0;
  for (const double v : dists) acc += v;
  return acc / static_cast<double>(n);
}

double pip_loss(const la::Matrix& x, const la::Matrix& x_tilde) {
  ANCHOR_CHECK_EQ(x.rows(), x_tilde.rows());
  const double a = la::frobenius_norm_sq(la::gram(x));
  const double b = la::frobenius_norm_sq(la::gram(x_tilde));
  const double c = la::frobenius_norm_sq(la::matmul_at_b(x_tilde, x));
  return std::sqrt(std::max(0.0, a + b - 2.0 * c));
}

double eigenspace_overlap(const la::Matrix& x, const la::Matrix& x_tilde) {
  ANCHOR_CHECK_EQ(x.rows(), x_tilde.rows());
  const la::Matrix u = la::left_singular_vectors(x);
  const la::Matrix ut = la::left_singular_vectors(x_tilde);
  const double overlap = la::frobenius_norm_sq(la::matmul_at_b(u, ut));
  return overlap / static_cast<double>(std::max(u.cols(), ut.cols()));
}

EisContext EisContext::build(const la::Matrix& e, const la::Matrix& e_tilde,
                             double alpha) {
  ANCHOR_CHECK_EQ(e.rows(), e_tilde.rows());
  EisContext ctx;
  la::SvdResult se = la::svd(e);
  la::SvdResult st = la::svd(e_tilde);
  // EEᵀ = U·S²·Uᵀ: the factors Σ needs are E's *left* singular vectors and
  // singular values (named V, R in the paper's Appendix B.1 because it
  // writes E = VRWᵀ).
  ctx.v = std::move(se.u);
  ctx.r = std::move(se.singular_values);
  ctx.v_tilde = std::move(st.u);
  ctx.r_tilde = std::move(st.singular_values);
  ctx.alpha = alpha;
  return ctx;
}

namespace {

/// Scales column j of m by s[j]^alpha, in place.
void scale_columns_pow(la::Matrix& m, const std::vector<double>& s,
                       double alpha) {
  ANCHOR_CHECK_EQ(m.cols(), s.size());
  for (std::size_t j = 0; j < m.cols(); ++j) {
    const double f = std::pow(std::max(s[j], 0.0), alpha);
    for (std::size_t i = 0; i < m.rows(); ++i) m(i, j) *= f;
  }
}

/// One Σ-component's three trace terms (Appendix B.1, Eq. 3):
/// ‖UᵀVR^α‖F² + ‖ŨᵀVR^α‖F² − 2·tr(R^α(VᵀŨ)(ŨᵀU)(UᵀV)R^α).
double sigma_component(const la::Matrix& u, const la::Matrix& u_tilde,
                       const la::Matrix& v, const std::vector<double>& r,
                       double alpha) {
  la::Matrix utv = la::matmul_at_b(u, v);          // d × d_e
  la::Matrix uttv = la::matmul_at_b(u_tilde, v);   // k × d_e
  scale_columns_pow(utv, r, alpha);                // UᵀV R^α
  scale_columns_pow(uttv, r, alpha);               // ŨᵀV R^α
  const double term1 = la::frobenius_norm_sq(utv);
  const double term2 = la::frobenius_norm_sq(uttv);
  // tr(R^α VᵀŨ · ŨᵀU · UᵀV R^α) = ⟨ŨᵀV R^α, (ŨᵀU)(UᵀV R^α)⟩.
  const la::Matrix utu = la::matmul_at_b(u_tilde, u);  // k × d
  const la::Matrix prod = la::matmul(utu, utv);        // k × d_e
  double cross = 0.0;
  for (std::size_t i = 0; i < prod.size(); ++i) {
    cross += prod.storage()[i] * uttv.storage()[i];
  }
  return term1 + term2 - 2.0 * cross;
}

}  // namespace

double eigenspace_instability(const la::Matrix& u, const la::Matrix& u_tilde,
                              const EisContext& ctx) {
  ANCHOR_CHECK_EQ(u.rows(), u_tilde.rows());
  ANCHOR_CHECK_EQ(u.rows(), ctx.v.rows());
  ANCHOR_CHECK_EQ(u.rows(), ctx.v_tilde.rows());

  const double numerator =
      sigma_component(u, u_tilde, ctx.v, ctx.r, ctx.alpha) +
      sigma_component(u, u_tilde, ctx.v_tilde, ctx.r_tilde, ctx.alpha);

  double denominator = 0.0;
  for (const double s : ctx.r) denominator += std::pow(s, 2.0 * ctx.alpha);
  for (const double s : ctx.r_tilde) {
    denominator += std::pow(s, 2.0 * ctx.alpha);
  }
  ANCHOR_CHECK_GT(denominator, 0.0);
  return numerator / denominator;
}

double eigenspace_instability_of(const la::Matrix& x,
                                 const la::Matrix& x_tilde,
                                 const EisContext& ctx) {
  return eigenspace_instability(la::left_singular_vectors(x),
                                la::left_singular_vectors(x_tilde), ctx);
}

double eigenspace_instability_naive(const la::Matrix& x,
                                    const la::Matrix& x_tilde,
                                    const la::Matrix& sigma) {
  ANCHOR_CHECK_EQ(sigma.rows(), sigma.cols());
  ANCHOR_CHECK_EQ(sigma.rows(), x.rows());
  const la::Matrix u = la::left_singular_vectors(x);
  const la::Matrix ut = la::left_singular_vectors(x_tilde);
  const la::Matrix uuT = la::matmul_a_bt(u, u);
  const la::Matrix utuT = la::matmul_a_bt(ut, ut);
  // M = UUᵀ + ŨŨᵀ − 2·ŨŨᵀ·UUᵀ.
  la::Matrix m = la::add(uuT, utuT);
  m = la::subtract(m, la::scale(la::matmul(utuT, uuT), 2.0));
  return la::trace(la::matmul(m, sigma)) / la::trace(sigma);
}

la::Matrix build_sigma_naive(const la::Matrix& e, const la::Matrix& e_tilde,
                             double alpha) {
  auto component = [&](const la::Matrix& mat) {
    la::SvdResult s = la::svd(mat);
    la::Matrix u = s.u;
    scale_columns_pow(u, s.singular_values, alpha);  // U·R^α
    return la::matmul_a_bt(u, u);                    // U·R^{2α}·Uᵀ
  };
  return la::add(component(e), component(e_tilde));
}

std::string measure_name(Measure m) {
  switch (m) {
    case Measure::kEigenspaceInstability: return "Eigenspace Instability";
    case Measure::kOneMinusKnn: return "1 - k-NN";
    case Measure::kSemanticDisplacement: return "Semantic Displacement";
    case Measure::kPipLoss: return "PIP Loss";
    case Measure::kOneMinusEigenspaceOverlap: return "1 - Eigenspace Overlap";
  }
  ANCHOR_CHECK_MSG(false, "unknown measure");
  return {};
}

}  // namespace anchor::core
