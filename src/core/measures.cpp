#include "core/measures.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "la/procrustes.hpp"
#include "util/rng.hpp"

namespace anchor::core {

namespace {

/// Row-normalizes a copy of m (zero rows stay zero).
la::Matrix normalize_rows(const la::Matrix& m) {
  la::Matrix out = m;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    double* row = out.row(i);
    double norm = 0.0;
    for (std::size_t j = 0; j < out.cols(); ++j) norm += row[j] * row[j];
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (std::size_t j = 0; j < out.cols(); ++j) row[j] /= norm;
    }
  }
  return out;
}

/// Indices of the k most cosine-similar rows to `query` (self excluded).
std::vector<std::size_t> top_k_neighbors(const la::Matrix& normalized,
                                         std::size_t query, std::size_t k) {
  const std::size_t n = normalized.rows();
  std::vector<double> sims(n, 0.0);
  const double* q = normalized.row(query);
  for (std::size_t i = 0; i < n; ++i) {
    const double* r = normalized.row(i);
    double acc = 0.0;
    for (std::size_t j = 0; j < normalized.cols(); ++j) acc += q[j] * r[j];
    sims[i] = acc;
  }
  sims[query] = -2.0;  // exclude self

  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0u);
  const std::size_t kk = std::min(k, n - 1);
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(kk),
                    idx.end(), [&](std::size_t a, std::size_t b) {
                      // Deterministic tie-break on index keeps the measure
                      // reproducible across platforms.
                      return sims[a] != sims[b] ? sims[a] > sims[b] : a < b;
                    });
  idx.resize(kk);
  return idx;
}

}  // namespace

double knn_measure(const la::Matrix& x, const la::Matrix& x_tilde,
                   std::size_t k, std::size_t num_queries,
                   std::uint64_t seed) {
  ANCHOR_CHECK_EQ(x.rows(), x_tilde.rows());
  ANCHOR_CHECK_GT(k, 0u);
  const std::size_t n = x.rows();
  ANCHOR_CHECK_GE(n, 2u);

  const la::Matrix nx = normalize_rows(x);
  const la::Matrix nxt = normalize_rows(x_tilde);

  // Sample query words without replacement.
  std::vector<std::size_t> queries(n);
  std::iota(queries.begin(), queries.end(), 0u);
  Rng rng(seed);
  rng.shuffle(queries);
  queries.resize(std::min(num_queries, n));

  double overlap_sum = 0.0;
  for (const std::size_t q : queries) {
    const auto a = top_k_neighbors(nx, q, k);
    const auto b = top_k_neighbors(nxt, q, k);
    const std::unordered_set<std::size_t> sa(a.begin(), a.end());
    std::size_t hits = 0;
    for (const std::size_t w : b) hits += sa.count(w);
    overlap_sum += static_cast<double>(hits) / static_cast<double>(a.size());
  }
  return overlap_sum / static_cast<double>(queries.size());
}

double semantic_displacement(const la::Matrix& x, const la::Matrix& x_tilde) {
  ANCHOR_CHECK_EQ(x.rows(), x_tilde.rows());
  ANCHOR_CHECK_EQ(x.cols(), x_tilde.cols());
  const la::Matrix aligned = la::procrustes_align(x, x_tilde);
  const std::size_t n = x.rows();
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double* a = x.row(i);
    const double* b = aligned.row(i);
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (std::size_t j = 0; j < x.cols(); ++j) {
      dot += a[j] * b[j];
      na += a[j] * a[j];
      nb += b[j] * b[j];
    }
    const double denom = std::sqrt(na * nb);
    acc += (denom > 0.0) ? 1.0 - dot / denom : 0.0;
  }
  return acc / static_cast<double>(n);
}

double pip_loss(const la::Matrix& x, const la::Matrix& x_tilde) {
  ANCHOR_CHECK_EQ(x.rows(), x_tilde.rows());
  const double a = la::frobenius_norm_sq(la::gram(x));
  const double b = la::frobenius_norm_sq(la::gram(x_tilde));
  const double c = la::frobenius_norm_sq(la::matmul_at_b(x_tilde, x));
  return std::sqrt(std::max(0.0, a + b - 2.0 * c));
}

double eigenspace_overlap(const la::Matrix& x, const la::Matrix& x_tilde) {
  ANCHOR_CHECK_EQ(x.rows(), x_tilde.rows());
  const la::Matrix u = la::left_singular_vectors(x);
  const la::Matrix ut = la::left_singular_vectors(x_tilde);
  const double overlap = la::frobenius_norm_sq(la::matmul_at_b(u, ut));
  return overlap / static_cast<double>(std::max(u.cols(), ut.cols()));
}

EisContext EisContext::build(const la::Matrix& e, const la::Matrix& e_tilde,
                             double alpha) {
  ANCHOR_CHECK_EQ(e.rows(), e_tilde.rows());
  EisContext ctx;
  la::SvdResult se = la::svd(e);
  la::SvdResult st = la::svd(e_tilde);
  // EEᵀ = U·S²·Uᵀ: the factors Σ needs are E's *left* singular vectors and
  // singular values (named V, R in the paper's Appendix B.1 because it
  // writes E = VRWᵀ).
  ctx.v = std::move(se.u);
  ctx.r = std::move(se.singular_values);
  ctx.v_tilde = std::move(st.u);
  ctx.r_tilde = std::move(st.singular_values);
  ctx.alpha = alpha;
  return ctx;
}

namespace {

/// Scales column j of m by s[j]^alpha, in place.
void scale_columns_pow(la::Matrix& m, const std::vector<double>& s,
                       double alpha) {
  ANCHOR_CHECK_EQ(m.cols(), s.size());
  for (std::size_t j = 0; j < m.cols(); ++j) {
    const double f = std::pow(std::max(s[j], 0.0), alpha);
    for (std::size_t i = 0; i < m.rows(); ++i) m(i, j) *= f;
  }
}

/// One Σ-component's three trace terms (Appendix B.1, Eq. 3):
/// ‖UᵀVR^α‖F² + ‖ŨᵀVR^α‖F² − 2·tr(R^α(VᵀŨ)(ŨᵀU)(UᵀV)R^α).
double sigma_component(const la::Matrix& u, const la::Matrix& u_tilde,
                       const la::Matrix& v, const std::vector<double>& r,
                       double alpha) {
  la::Matrix utv = la::matmul_at_b(u, v);          // d × d_e
  la::Matrix uttv = la::matmul_at_b(u_tilde, v);   // k × d_e
  scale_columns_pow(utv, r, alpha);                // UᵀV R^α
  scale_columns_pow(uttv, r, alpha);               // ŨᵀV R^α
  const double term1 = la::frobenius_norm_sq(utv);
  const double term2 = la::frobenius_norm_sq(uttv);
  // tr(R^α VᵀŨ · ŨᵀU · UᵀV R^α) = ⟨ŨᵀV R^α, (ŨᵀU)(UᵀV R^α)⟩.
  const la::Matrix utu = la::matmul_at_b(u_tilde, u);  // k × d
  const la::Matrix prod = la::matmul(utu, utv);        // k × d_e
  double cross = 0.0;
  for (std::size_t i = 0; i < prod.size(); ++i) {
    cross += prod.storage()[i] * uttv.storage()[i];
  }
  return term1 + term2 - 2.0 * cross;
}

}  // namespace

double eigenspace_instability(const la::Matrix& u, const la::Matrix& u_tilde,
                              const EisContext& ctx) {
  ANCHOR_CHECK_EQ(u.rows(), u_tilde.rows());
  ANCHOR_CHECK_EQ(u.rows(), ctx.v.rows());
  ANCHOR_CHECK_EQ(u.rows(), ctx.v_tilde.rows());

  const double numerator =
      sigma_component(u, u_tilde, ctx.v, ctx.r, ctx.alpha) +
      sigma_component(u, u_tilde, ctx.v_tilde, ctx.r_tilde, ctx.alpha);

  double denominator = 0.0;
  for (const double s : ctx.r) denominator += std::pow(s, 2.0 * ctx.alpha);
  for (const double s : ctx.r_tilde) {
    denominator += std::pow(s, 2.0 * ctx.alpha);
  }
  ANCHOR_CHECK_GT(denominator, 0.0);
  return numerator / denominator;
}

double eigenspace_instability_of(const la::Matrix& x,
                                 const la::Matrix& x_tilde,
                                 const EisContext& ctx) {
  return eigenspace_instability(la::left_singular_vectors(x),
                                la::left_singular_vectors(x_tilde), ctx);
}

double eigenspace_instability_naive(const la::Matrix& x,
                                    const la::Matrix& x_tilde,
                                    const la::Matrix& sigma) {
  ANCHOR_CHECK_EQ(sigma.rows(), sigma.cols());
  ANCHOR_CHECK_EQ(sigma.rows(), x.rows());
  const la::Matrix u = la::left_singular_vectors(x);
  const la::Matrix ut = la::left_singular_vectors(x_tilde);
  const la::Matrix uuT = la::matmul_a_bt(u, u);
  const la::Matrix utuT = la::matmul_a_bt(ut, ut);
  // M = UUᵀ + ŨŨᵀ − 2·ŨŨᵀ·UUᵀ.
  la::Matrix m = la::add(uuT, utuT);
  m = la::subtract(m, la::scale(la::matmul(utuT, uuT), 2.0));
  return la::trace(la::matmul(m, sigma)) / la::trace(sigma);
}

la::Matrix build_sigma_naive(const la::Matrix& e, const la::Matrix& e_tilde,
                             double alpha) {
  auto component = [&](const la::Matrix& mat) {
    la::SvdResult s = la::svd(mat);
    la::Matrix u = s.u;
    scale_columns_pow(u, s.singular_values, alpha);  // U·R^α
    return la::matmul_a_bt(u, u);                    // U·R^{2α}·Uᵀ
  };
  return la::add(component(e), component(e_tilde));
}

std::string measure_name(Measure m) {
  switch (m) {
    case Measure::kEigenspaceInstability: return "Eigenspace Instability";
    case Measure::kOneMinusKnn: return "1 - k-NN";
    case Measure::kSemanticDisplacement: return "Semantic Displacement";
    case Measure::kPipLoss: return "PIP Loss";
    case Measure::kOneMinusEigenspaceOverlap: return "1 - Eigenspace Overlap";
  }
  ANCHOR_CHECK_MSG(false, "unknown measure");
  return {};
}

}  // namespace anchor::core
