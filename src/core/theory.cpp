#include "core/theory.hpp"

#include <cmath>

#include "la/svd.hpp"
#include "util/rng.hpp"

namespace anchor::core {

std::vector<double> linear_model_predictions(const la::Matrix& u,
                                             const std::vector<double>& y) {
  ANCHOR_CHECK_EQ(u.rows(), y.size());
  // z = Uᵀy (d), then ŷ = U·z (n).
  std::vector<double> z(u.cols(), 0.0);
  for (std::size_t i = 0; i < u.rows(); ++i) {
    const double* row = u.row(i);
    for (std::size_t j = 0; j < u.cols(); ++j) z[j] += row[j] * y[i];
  }
  std::vector<double> pred(u.rows(), 0.0);
  for (std::size_t i = 0; i < u.rows(); ++i) {
    const double* row = u.row(i);
    double acc = 0.0;
    for (std::size_t j = 0; j < u.cols(); ++j) acc += row[j] * z[j];
    pred[i] = acc;
  }
  return pred;
}

double disagreement_sample(const la::Matrix& u, const la::Matrix& u_tilde,
                           const std::vector<double>& y) {
  const std::vector<double> pa = linear_model_predictions(u, y);
  const std::vector<double> pb = linear_model_predictions(u_tilde, y);
  double num = 0.0, denom = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    num += (pa[i] - pb[i]) * (pa[i] - pb[i]);
    denom += y[i] * y[i];
  }
  ANCHOR_CHECK_GT(denom, 0.0);
  return num / denom;
}

double expected_disagreement_mc(const la::Matrix& u, const la::Matrix& u_tilde,
                                const la::Matrix& sigma_factor,
                                std::size_t num_samples, std::uint64_t seed) {
  ANCHOR_CHECK_EQ(u.rows(), sigma_factor.rows());
  ANCHOR_CHECK_GT(num_samples, 0u);
  Rng rng(seed);
  std::vector<double> z(sigma_factor.cols());
  double num = 0.0, denom = 0.0;
  for (std::size_t s = 0; s < num_samples; ++s) {
    for (auto& x : z) x = rng.normal();
    const std::vector<double> y = la::matvec(sigma_factor, z);
    const std::vector<double> pa = linear_model_predictions(u, y);
    const std::vector<double> pb = linear_model_predictions(u_tilde, y);
    for (std::size_t i = 0; i < y.size(); ++i) {
      num += (pa[i] - pb[i]) * (pa[i] - pb[i]);
      denom += y[i] * y[i];
    }
  }
  ANCHOR_CHECK_GT(denom, 0.0);
  return num / denom;
}

la::Matrix sigma_factor(const la::Matrix& e, const la::Matrix& e_tilde,
                        double alpha) {
  ANCHOR_CHECK_EQ(e.rows(), e_tilde.rows());
  const la::SvdResult se = la::svd(e);
  const la::SvdResult st = la::svd(e_tilde);
  const std::size_t n = e.rows();
  la::Matrix f(n, se.u.cols() + st.u.cols());
  for (std::size_t j = 0; j < se.u.cols(); ++j) {
    const double scale = std::pow(std::max(se.singular_values[j], 0.0), alpha);
    for (std::size_t i = 0; i < n; ++i) f(i, j) = se.u(i, j) * scale;
  }
  for (std::size_t j = 0; j < st.u.cols(); ++j) {
    const double scale = std::pow(std::max(st.singular_values[j], 0.0), alpha);
    for (std::size_t i = 0; i < n; ++i) {
      f(i, se.u.cols() + j) = st.u(i, j) * scale;
    }
  }
  return f;
}

}  // namespace anchor::core
