// Downstream instability (Definition 1): the fraction of heldout predictions
// on which two models — trained on the same task but different embeddings —
// disagree.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace anchor::core {

/// Zero-one-loss downstream instability between two prediction vectors, in
/// percent (the unit the paper plots).
double prediction_disagreement_pct(const std::vector<std::int32_t>& a,
                                   const std::vector<std::int32_t>& b);

/// Disagreement restricted to positions where `mask` is true — used by the
/// NER tasks, which measure instability only over gold-entity tokens (§3).
double masked_disagreement_pct(const std::vector<std::int32_t>& a,
                               const std::vector<std::int32_t>& b,
                               const std::vector<std::uint8_t>& mask);

/// Accuracy in percent against gold labels (for the quality tradeoff plots,
/// Appendix D.2).
double accuracy_pct(const std::vector<std::int32_t>& predictions,
                    const std::vector<std::int32_t>& gold);

/// Micro-averaged F1 in percent over all classes except `ignore_class`
/// (the NER quality metric of Appendix D.2, with O ignored).
double micro_f1_pct(const std::vector<std::int32_t>& predictions,
                    const std::vector<std::int32_t>& gold,
                    std::int32_t ignore_class);

}  // namespace anchor::core
