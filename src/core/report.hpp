// CSV interchange for experiment results — the paper artifact's
// "lightweight option" (Appendix A.1/A.7): the authors ship CSVs of
// pre-computed embedding distance measures and downstream instabilities so
// the analysis stage (Tables 1–3) can be reproduced without any training.
// This module writes and reads that format so our pipeline results can
// round-trip through files and the `anchor-cli analyze` subcommand can run
// the analysis on a bare CSV.
//
// Format: a header row, then one row per (dimension, precision) cell:
//   dim,bits,di_pct,eis,one_minus_knn,semantic_displacement,pip_loss,
//   one_minus_eigenspace_overlap
#pragma once

#include <filesystem>
#include <vector>

#include "core/selection.hpp"

namespace anchor::core {

/// Writes config points (with all five measures populated) to CSV.
/// Throws when a point is missing a measure or on IO failure.
void write_config_points_csv(const std::vector<ConfigPoint>& points,
                             const std::filesystem::path& path);

/// Reads a CSV written by write_config_points_csv (or hand-authored in the
/// same layout). Throws on missing file, malformed header, short rows, or
/// unparseable numbers.
std::vector<ConfigPoint> read_config_points_csv(
    const std::filesystem::path& path);

/// The analysis stage of the artifact (Appendix A.5 step 3) over one grid:
/// Spearman per measure, pairwise selection error per measure, and the
/// memory-budget selection gap per criterion.
struct GridAnalysis {
  struct MeasureRow {
    Measure measure;
    double spearman = 0.0;
    double pairwise_error = 0.0;
    double budget_gap_pct = 0.0;
  };
  std::vector<MeasureRow> measures;           // kAllMeasures order
  double high_precision_gap_pct = 0.0;        // naive baselines (Table 3)
  double low_precision_gap_pct = 0.0;
  /// False when no memory budget has two candidate configs — the budget
  /// columns are then meaningless (left at 0) and should be shown as n/a.
  bool has_contested_budget = true;
};

GridAnalysis analyze_grid(const std::vector<ConfigPoint>& points);

}  // namespace anchor::core
