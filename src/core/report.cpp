#include "core/report.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <string>

namespace anchor::core {

namespace {

constexpr const char* kHeader =
    "dim,bits,di_pct,eis,one_minus_knn,semantic_displacement,pip_loss,"
    "one_minus_eigenspace_overlap";

double parse_double(const std::string& cell) {
  std::size_t consumed = 0;
  double out = 0.0;
  try {
    out = std::stod(cell, &consumed);
  } catch (const std::exception&) {
    ANCHOR_CHECK_MSG(false, "unparseable numeric cell in results CSV");
  }
  ANCHOR_CHECK_MSG(consumed == cell.size(),
                   "trailing garbage in numeric cell of results CSV");
  return out;
}

std::vector<std::string> split_commas(const std::string& line) {
  std::vector<std::string> cells;
  std::stringstream ss(line);
  std::string cell;
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  return cells;
}

}  // namespace

void write_config_points_csv(const std::vector<ConfigPoint>& points,
                             const std::filesystem::path& path) {
  std::ofstream out(path);
  ANCHOR_CHECK_MSG(out.good(), "cannot open results CSV for writing");
  out << kHeader << '\n';
  // max_digits10: doubles round-trip exactly through the text form.
  out.precision(17);
  for (const auto& p : points) {
    out << p.dim << ',' << p.bits << ',' << p.downstream_instability_pct;
    for (const Measure m : kAllMeasures) {
      const auto it = p.measures.find(m);
      ANCHOR_CHECK_MSG(it != p.measures.end(),
                       "config point is missing a measure value");
      out << ',' << it->second;
    }
    out << '\n';
  }
  ANCHOR_CHECK_MSG(out.good(), "write failure while saving results CSV");
}

std::vector<ConfigPoint> read_config_points_csv(
    const std::filesystem::path& path) {
  std::ifstream in(path);
  ANCHOR_CHECK_MSG(in.good(), "cannot open results CSV for reading");
  std::string line;
  ANCHOR_CHECK_MSG(static_cast<bool>(std::getline(in, line)),
                   "empty results CSV");
  ANCHOR_CHECK_MSG(line == kHeader, "unexpected results CSV header");

  std::vector<ConfigPoint> points;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> cells = split_commas(line);
    ANCHOR_CHECK_MSG(cells.size() == 3 + std::size(kAllMeasures),
                     "short or long row in results CSV");
    ConfigPoint p;
    p.dim = static_cast<std::size_t>(parse_double(cells[0]));
    p.bits = static_cast<int>(parse_double(cells[1]));
    p.downstream_instability_pct = parse_double(cells[2]);
    for (std::size_t i = 0; i < std::size(kAllMeasures); ++i) {
      p.measures[kAllMeasures[i]] = parse_double(cells[3 + i]);
    }
    points.push_back(std::move(p));
  }
  ANCHOR_CHECK_MSG(!points.empty(), "results CSV has no data rows");
  return points;
}

GridAnalysis analyze_grid(const std::vector<ConfigPoint>& points) {
  GridAnalysis out;
  // The budget setting needs at least one memory value shared by two
  // configurations; arbitrary CSVs (e.g. a sparse grid) may not have one.
  std::map<std::size_t, std::size_t> budget_counts;
  for (const auto& p : points) ++budget_counts[p.memory_bits()];
  out.has_contested_budget = false;
  for (const auto& [memory, count] : budget_counts) {
    if (count >= 2) {
      out.has_contested_budget = true;
      break;
    }
  }

  for (const Measure m : kAllMeasures) {
    GridAnalysis::MeasureRow row;
    row.measure = m;
    row.spearman = measure_spearman(points, m);
    row.pairwise_error = pairwise_selection_error(points, m);
    if (out.has_contested_budget) {
      row.budget_gap_pct =
          budget_selection(points, Criterion::of(m)).mean_abs_gap_pct;
    }
    out.measures.push_back(row);
  }
  if (out.has_contested_budget) {
    out.high_precision_gap_pct =
        budget_selection(points, Criterion::high_precision()).mean_abs_gap_pct;
    out.low_precision_gap_pct =
        budget_selection(points, Criterion::low_precision()).mean_abs_gap_pct;
  }
  return out;
}

}  // namespace anchor::core
