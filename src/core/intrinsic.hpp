// Intrinsic embedding evaluation against the synthetic ground truth.
//
// The paper measures *downstream* quality (Appendix D.2); real embedding
// pipelines also track intrinsic quality. Because our corpora come from an
// explicit latent space, we can build exact analogs of the standard
// intrinsic benchmarks: a WordSim-style similarity task whose gold scores
// are latent-vector cosines, and a 3CosAdd analogy task whose gold answers
// are nearest latent neighbors of g_b − g_a + g_c. Both are deterministic
// given the seed and need no external data.
#pragma once

#include <cstdint>

#include "embed/embedding.hpp"
#include "text/latent_space.hpp"

namespace anchor::core {

struct IntrinsicConfig {
  std::size_t num_pairs = 500;      // similarity word pairs
  std::size_t num_analogies = 200;  // analogy quadruples
  std::size_t analogy_top_k = 1;    // answer must rank in the top k
  /// Restrict sampling (and analogy candidates) to word ids below this
  /// value — ids are frequency-ordered, so this is the paper's
  /// "top 10k most frequent words" restriction (§2.4). 0 = whole vocabulary.
  std::size_t max_word_id = 0;
  std::uint64_t seed = 31;
};

/// Spearman correlation between embedding cosine similarity and latent
/// ground-truth cosine over sampled word pairs — the WordSim-353 analog.
/// 1.0 = embedding perfectly recovers the latent geometry.
double word_similarity_score(const embed::Embedding& e,
                             const text::LatentSpace& space,
                             const IntrinsicConfig& config = {});

struct AnalogyResult {
  double accuracy = 0.0;        // fraction of quadruples solved
  std::size_t num_evaluated = 0;
};

/// 3CosAdd analogy accuracy: for sampled (a, b, c), the gold answer d* is
/// the latent-nearest word to g_b − g_a + g_c (excluding a, b, c); the
/// embedding solves the quadruple when d* ranks in its top-k by
/// cos(x_b − x_a + x_c, ·). Degenerate quadruples (zero vectors) skipped.
AnalogyResult analogy_accuracy(const embed::Embedding& e,
                               const text::LatentSpace& space,
                               const IntrinsicConfig& config = {});

}  // namespace anchor::core
