#include "core/selection.hpp"

#include <algorithm>

#include "la/stats.hpp"

namespace anchor::core {

namespace {

double measure_of(const ConfigPoint& p, Measure m) {
  const auto it = p.measures.find(m);
  ANCHOR_CHECK_MSG(it != p.measures.end(),
                   "ConfigPoint missing measure " << measure_name(m));
  return it->second;
}

}  // namespace

double pairwise_selection_error(const std::vector<ConfigPoint>& points,
                                Measure measure) {
  ANCHOR_CHECK_GE(points.size(), 2u);
  double errors = 0.0;
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      ++pairs;
      const double di_i = points[i].downstream_instability_pct;
      const double di_j = points[j].downstream_instability_pct;
      if (di_i == di_j) continue;  // either choice is correct
      const double m_i = measure_of(points[i], measure);
      const double m_j = measure_of(points[j], measure);
      if (m_i == m_j) {
        errors += 0.5;  // measure cannot distinguish; half credit
        continue;
      }
      const bool picked_i = m_i < m_j;
      const bool i_is_better = di_i < di_j;
      if (picked_i != i_is_better) errors += 1.0;
    }
  }
  return errors / static_cast<double>(pairs);
}

double pairwise_worst_case_error(const std::vector<ConfigPoint>& points,
                                 Measure measure) {
  ANCHOR_CHECK_GE(points.size(), 2u);
  double worst = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      const double di_i = points[i].downstream_instability_pct;
      const double di_j = points[j].downstream_instability_pct;
      if (di_i == di_j) continue;
      const double m_i = measure_of(points[i], measure);
      const double m_j = measure_of(points[j], measure);
      if (m_i == m_j) continue;
      const bool picked_i = m_i < m_j;
      const double gap = picked_i ? di_i - di_j : di_j - di_i;
      worst = std::max(worst, gap);  // positive only when selection is wrong
    }
  }
  return worst;
}

std::string Criterion::name() const {
  switch (kind) {
    case Kind::kMeasure: return measure_name(measure);
    case Kind::kHighPrecision: return "High Precision";
    case Kind::kLowPrecision: return "Low Precision";
  }
  ANCHOR_CHECK_MSG(false, "unknown criterion");
  return {};
}

BudgetSelectionResult budget_selection(const std::vector<ConfigPoint>& points,
                                       const Criterion& criterion) {
  // Group configuration indices by memory budget.
  std::map<std::size_t, std::vector<std::size_t>> budgets;
  for (std::size_t i = 0; i < points.size(); ++i) {
    budgets[points[i].memory_bits()].push_back(i);
  }

  BudgetSelectionResult result;
  double gap_sum = 0.0;
  for (const auto& [memory, idx] : budgets) {
    if (idx.size() < 2) continue;  // nothing to select among
    ++result.num_budgets;

    const auto pick = [&]() -> std::size_t {
      switch (criterion.kind) {
        case Criterion::Kind::kMeasure:
          return *std::min_element(idx.begin(), idx.end(),
                                   [&](std::size_t a, std::size_t b) {
                                     return measure_of(points[a],
                                                       criterion.measure) <
                                            measure_of(points[b],
                                                       criterion.measure);
                                   });
        case Criterion::Kind::kHighPrecision:
          return *std::max_element(idx.begin(), idx.end(),
                                   [&](std::size_t a, std::size_t b) {
                                     return points[a].bits < points[b].bits;
                                   });
        case Criterion::Kind::kLowPrecision:
          return *std::min_element(idx.begin(), idx.end(),
                                   [&](std::size_t a, std::size_t b) {
                                     return points[a].bits < points[b].bits;
                                   });
      }
      ANCHOR_CHECK_MSG(false, "unknown criterion");
      return 0;
    }();

    const std::size_t oracle = *std::min_element(
        idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
          return points[a].downstream_instability_pct <
                 points[b].downstream_instability_pct;
        });
    const double gap = points[pick].downstream_instability_pct -
                       points[oracle].downstream_instability_pct;
    gap_sum += gap;
    result.worst_abs_gap_pct = std::max(result.worst_abs_gap_pct, gap);
  }
  ANCHOR_CHECK_MSG(result.num_budgets > 0,
                   "budget_selection: no budget has two candidate configs");
  result.mean_abs_gap_pct = gap_sum / static_cast<double>(result.num_budgets);
  return result;
}

double measure_spearman(const std::vector<ConfigPoint>& points,
                        Measure measure) {
  ANCHOR_CHECK_GE(points.size(), 2u);
  std::vector<double> m, di;
  m.reserve(points.size());
  di.reserve(points.size());
  for (const auto& p : points) {
    m.push_back(measure_of(p, measure));
    di.push_back(p.downstream_instability_pct);
  }
  return la::spearman(m, di);
}

}  // namespace anchor::core
