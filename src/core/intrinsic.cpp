#include "core/intrinsic.hpp"

#include <algorithm>
#include <cmath>

#include "la/stats.hpp"
#include "util/rng.hpp"

namespace anchor::core {

namespace {

double cosine(const double* a, const double* b, std::size_t d) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    dot += a[j] * b[j];
    na += a[j] * a[j];
    nb += b[j] * b[j];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

double cosine_f(const float* a, const float* b, std::size_t d) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    dot += static_cast<double>(a[j]) * b[j];
    na += static_cast<double>(a[j]) * a[j];
    nb += static_cast<double>(b[j]) * b[j];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

}  // namespace

namespace {

/// Effective sampling vocabulary: the frequency-ordered prefix (§2.4's
/// top-10k restriction), or everything when max_word_id is 0.
std::size_t effective_vocab(std::size_t vocab, std::size_t max_word_id) {
  return max_word_id == 0 ? vocab : std::min(vocab, max_word_id);
}

}  // namespace

double word_similarity_score(const embed::Embedding& e,
                             const text::LatentSpace& space,
                             const IntrinsicConfig& config) {
  ANCHOR_CHECK_EQ(e.vocab_size, space.vocab_size());
  ANCHOR_CHECK_GT(config.num_pairs, 1u);
  const std::size_t vocab = effective_vocab(e.vocab_size, config.max_word_id);
  ANCHOR_CHECK_GT(vocab, 1u);
  const la::Matrix& g = space.word_vectors();
  Rng rng(config.seed);

  std::vector<double> gold, predicted;
  gold.reserve(config.num_pairs);
  predicted.reserve(config.num_pairs);
  for (std::size_t i = 0; i < config.num_pairs; ++i) {
    const std::size_t a = rng.index(vocab);
    std::size_t b = rng.index(vocab);
    while (b == a) b = rng.index(vocab);
    gold.push_back(cosine(g.row(a), g.row(b), g.cols()));
    predicted.push_back(cosine_f(e.row(a), e.row(b), e.dim));
  }
  return la::spearman(gold, predicted);
}

AnalogyResult analogy_accuracy(const embed::Embedding& e,
                               const text::LatentSpace& space,
                               const IntrinsicConfig& config) {
  ANCHOR_CHECK_EQ(e.vocab_size, space.vocab_size());
  ANCHOR_CHECK_GT(config.analogy_top_k, 0u);
  const std::size_t vocab = effective_vocab(e.vocab_size, config.max_word_id);
  ANCHOR_CHECK_GT(vocab, 3u);
  const la::Matrix& g = space.word_vectors();
  const std::size_t latent_d = g.cols();
  Rng rng(config.seed);

  AnalogyResult result;
  std::size_t solved = 0;
  std::vector<double> target_latent(latent_d);
  std::vector<double> target_emb(e.dim);

  for (std::size_t q = 0; q < config.num_analogies; ++q) {
    const std::size_t a = rng.index(vocab);
    const std::size_t b = rng.index(vocab);
    const std::size_t c = rng.index(vocab);
    if (a == b || a == c || b == c) continue;

    // Gold answer: latent-nearest word to g_b − g_a + g_c (cosine).
    for (std::size_t j = 0; j < latent_d; ++j) {
      target_latent[j] = g(b, j) - g(a, j) + g(c, j);
    }
    std::size_t gold = vocab;
    double best = -2.0;
    for (std::size_t w = 0; w < vocab; ++w) {
      if (w == a || w == b || w == c) continue;
      const double s = cosine(target_latent.data(), g.row(w), latent_d);
      if (s > best) {
        best = s;
        gold = w;
      }
    }
    if (gold == vocab) continue;

    // Embedding answer ranking by 3CosAdd.
    for (std::size_t j = 0; j < e.dim; ++j) {
      target_emb[j] = static_cast<double>(e.row(b)[j]) - e.row(a)[j] +
                      e.row(c)[j];
    }
    double gold_score = -2.0;
    std::size_t strictly_above = 0;
    {
      std::vector<float> tf(target_emb.begin(), target_emb.end());
      gold_score = cosine_f(tf.data(), e.row(gold), e.dim);
      for (std::size_t w = 0; w < vocab; ++w) {
        if (w == a || w == b || w == c || w == gold) continue;
        if (cosine_f(tf.data(), e.row(w), e.dim) > gold_score) {
          ++strictly_above;
          if (strictly_above >= config.analogy_top_k) break;
        }
      }
    }
    ++result.num_evaluated;
    if (strictly_above < config.analogy_top_k) ++solved;
  }
  result.accuracy =
      result.num_evaluated == 0
          ? 0.0
          : static_cast<double>(solved) /
                static_cast<double>(result.num_evaluated);
  return result;
}

}  // namespace anchor::core
