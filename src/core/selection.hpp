// Dimension–precision selection (paper §4.2, §5.2).
//
// Given a set of (dimension, precision) configurations — each with its
// measured downstream instability and its embedding-distance-measure values —
// these routines evaluate how well a measure *selects* stable configurations
// without training downstream models:
//   • pairwise setting: among two configurations, pick the more stable one;
//   • memory-budget setting: among all configurations of equal bits/word,
//     pick the most stable one, and report the absolute gap to the oracle.
#pragma once

#include <map>
#include <vector>

#include "core/measures.hpp"

namespace anchor::core {

/// One (dimension, precision) configuration of an embedding pair, with its
/// observed downstream instability and its measure values (all oriented so
/// larger = predicted-more-unstable).
struct ConfigPoint {
  std::size_t dim = 0;
  int bits = 32;
  double downstream_instability_pct = 0.0;
  std::map<Measure, double> measures;

  std::size_t memory_bits() const {
    return dim * static_cast<std::size_t>(bits);
  }
};

/// Fraction of unordered config pairs where `measure` selects the config with
/// strictly higher downstream instability (Table 2's error rate). Equal-DI
/// pairs can never be wrong; an exact measure tie on unequal DIs scores 0.5.
double pairwise_selection_error(const std::vector<ConfigPoint>& points,
                                Measure measure);

/// Worst-case version (Table 10): the largest instability increase (absolute
/// percentage points) a wrong pairwise selection by `measure` can cause.
double pairwise_worst_case_error(const std::vector<ConfigPoint>& points,
                                 Measure measure);

/// Selection criterion for the memory-budget setting: one of the embedding
/// distance measures, or the paper's two naive baselines.
struct Criterion {
  enum class Kind { kMeasure, kHighPrecision, kLowPrecision };
  Kind kind = Kind::kMeasure;
  Measure measure = Measure::kEigenspaceInstability;

  static Criterion of(Measure m) { return {Kind::kMeasure, m}; }
  static Criterion high_precision() {
    return {Kind::kHighPrecision, Measure::kEigenspaceInstability};
  }
  static Criterion low_precision() {
    return {Kind::kLowPrecision, Measure::kEigenspaceInstability};
  }

  std::string name() const;
};

struct BudgetSelectionResult {
  double mean_abs_gap_pct = 0.0;   // Table 3: avg |DI(selected) − DI(oracle)|
  double worst_abs_gap_pct = 0.0;  // Table 11: max over budgets
  std::size_t num_budgets = 0;     // budgets with ≥ 2 candidate configs
};

/// Memory-budget selection (Table 3 / Table 11): for every bits/word value
/// shared by at least two configurations, the criterion picks one config and
/// is charged the absolute instability gap to the oracle (most stable) pick.
BudgetSelectionResult budget_selection(const std::vector<ConfigPoint>& points,
                                       const Criterion& criterion);

/// Spearman correlation between a measure and downstream instability over
/// the configuration grid (Table 1).
double measure_spearman(const std::vector<ConfigPoint>& points,
                        Measure measure);

}  // namespace anchor::core
