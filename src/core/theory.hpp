// Proposition 1 machinery: the closed-form link between the eigenspace
// instability measure and the expected prediction disagreement of linear
// regression models.
//
// For full-rank X, the OLS model's training-set predictions are the
// projection U·Uᵀ·y onto X's left singular space (footnote 7). The expected
// squared disagreement between the X- and X̃-models over a random label
// vector y with covariance Σ, normalized by E‖y‖², equals EI_Σ(X, X̃).
// These helpers compute both sides so tests and benches can verify the
// identity directly.
#pragma once

#include <cstdint>

#include "la/matrix.hpp"

namespace anchor::core {

/// Training-set predictions of the OLS model: U·Uᵀ·y, computed as
/// U·(Uᵀ·y) in O(n·d).
std::vector<double> linear_model_predictions(const la::Matrix& u,
                                             const std::vector<double>& y);

/// One Monte-Carlo sample of the normalized squared disagreement
/// ‖UUᵀy − ŨŨᵀy‖² / ‖y‖² for a given label vector.
double disagreement_sample(const la::Matrix& u, const la::Matrix& u_tilde,
                           const std::vector<double>& y);

/// Monte-Carlo estimate of E[‖UUᵀy − ŨŨᵀy‖²] / E[‖y‖²] with y ~ N(0, Σ),
/// Σ given via its factor F (Σ = F·Fᵀ): y = F·z, z ~ N(0, I). Used by tests
/// to validate Proposition 1 against eigenspace_instability.
double expected_disagreement_mc(const la::Matrix& u, const la::Matrix& u_tilde,
                                const la::Matrix& sigma_factor,
                                std::size_t num_samples, std::uint64_t seed);

/// Σ-factor F with Σ = F·Fᵀ = (EEᵀ)^α + (ẼẼᵀ)^α... built as the horizontal
/// concatenation [U_E·R^α | U_Ẽ·R̃^α] (n × (d_E + d_Ẽ)) so sampling y = F·z
/// never materializes the n×n Σ.
la::Matrix sigma_factor(const la::Matrix& e, const la::Matrix& e_tilde,
                        double alpha);

}  // namespace anchor::core
