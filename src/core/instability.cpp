#include "core/instability.hpp"

namespace anchor::core {

double prediction_disagreement_pct(const std::vector<std::int32_t>& a,
                                   const std::vector<std::int32_t>& b) {
  ANCHOR_CHECK_EQ(a.size(), b.size());
  ANCHOR_CHECK(!a.empty());
  std::size_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff += (a[i] != b[i]) ? 1 : 0;
  return 100.0 * static_cast<double>(diff) / static_cast<double>(a.size());
}

double masked_disagreement_pct(const std::vector<std::int32_t>& a,
                               const std::vector<std::int32_t>& b,
                               const std::vector<std::uint8_t>& mask) {
  ANCHOR_CHECK_EQ(a.size(), b.size());
  ANCHOR_CHECK_EQ(a.size(), mask.size());
  std::size_t diff = 0, total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!mask[i]) continue;
    ++total;
    diff += (a[i] != b[i]) ? 1 : 0;
  }
  ANCHOR_CHECK_MSG(total > 0, "masked_disagreement_pct: empty mask");
  return 100.0 * static_cast<double>(diff) / static_cast<double>(total);
}

double accuracy_pct(const std::vector<std::int32_t>& predictions,
                    const std::vector<std::int32_t>& gold) {
  ANCHOR_CHECK_EQ(predictions.size(), gold.size());
  ANCHOR_CHECK(!predictions.empty());
  std::size_t hit = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    hit += (predictions[i] == gold[i]) ? 1 : 0;
  }
  return 100.0 * static_cast<double>(hit) /
         static_cast<double>(predictions.size());
}

double micro_f1_pct(const std::vector<std::int32_t>& predictions,
                    const std::vector<std::int32_t>& gold,
                    std::int32_t ignore_class) {
  ANCHOR_CHECK_EQ(predictions.size(), gold.size());
  std::size_t tp = 0, fp = 0, fn = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const bool pred_entity = predictions[i] != ignore_class;
    const bool gold_entity = gold[i] != ignore_class;
    if (pred_entity && gold_entity && predictions[i] == gold[i]) {
      ++tp;
    } else {
      if (pred_entity) ++fp;
      if (gold_entity) ++fn;
    }
  }
  const double denom = 2.0 * static_cast<double>(tp) +
                       static_cast<double>(fp) + static_cast<double>(fn);
  if (denom == 0.0) return 0.0;
  return 100.0 * 2.0 * static_cast<double>(tp) / denom;
}

}  // namespace anchor::core
