// Embedding distance measures (paper §2.4 and §4.1).
//
// Five measures quantify how different two embeddings X ∈ R^{n×d} and
// X̃ ∈ R^{n×k} of the same vocabulary are:
//   • k-NN measure              (Hellrich & Hahn 2016 and others)
//   • semantic displacement     (Hamilton et al., 2016)
//   • PIP loss                  (Yin & Shen, 2018)
//   • eigenspace overlap score  (May et al., 2019)
//   • eigenspace instability    (THIS paper's contribution, Definition 2)
//
// Every implementation avoids n×n intermediates: PIP loss uses the Gram
// trick and the eigenspace instability measure uses the O(n·d²) expansion of
// Appendix B.1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "la/matrix.hpp"
#include "la/svd.hpp"

namespace anchor::core {

/// k-NN measure: average overlap between the k nearest neighbors (cosine) of
/// Q sampled query words in X vs X̃. Returns a similarity in [0, 1]; the
/// paper uses 1 − kNN as the distance. Queries are sampled without
/// replacement with `seed`; the query word itself is excluded from its own
/// neighbor list.
double knn_measure(const la::Matrix& x, const la::Matrix& x_tilde,
                   std::size_t k = 5, std::size_t num_queries = 1000,
                   std::uint64_t seed = 42);

/// Row-L2-normalized copy of m (zero rows stay zero) — the cosine-scoring
/// form knn_measure consumes. Exposed so callers evaluating several
/// candidates against one incumbent (e.g. the DeploymentGate) can normalize
/// once and reuse the copy.
la::Matrix normalize_rows_l2(const la::Matrix& m);

/// knn_measure on matrices already row-normalized via normalize_rows_l2.
/// Queries are scored in parallel over the shared util::global_pool();
/// each query's overlap is computed independently and reduced in query
/// order, so the result is bit-for-bit identical at any thread count.
double knn_measure_normalized(const la::Matrix& nx, const la::Matrix& nxt,
                              std::size_t k = 5,
                              std::size_t num_queries = 1000,
                              std::uint64_t seed = 42);

/// Semantic displacement: mean cosine distance between rows of X and the
/// Procrustes-rotated rows of X̃ (requires equal dimensions).
double semantic_displacement(const la::Matrix& x, const la::Matrix& x_tilde);

/// PIP loss ‖XXᵀ − X̃X̃ᵀ‖F, computed as
/// √(‖XᵀX‖F² + ‖X̃ᵀX̃‖F² − 2‖X̃ᵀX‖F²) — O(n·d²) instead of O(n²·d).
double pip_loss(const la::Matrix& x, const la::Matrix& x_tilde);

/// Eigenspace overlap score ‖UᵀŨ‖F² / max(d, k) ∈ [0, 1]; the paper uses
/// 1 − overlap as the distance.
double eigenspace_overlap(const la::Matrix& x, const la::Matrix& x_tilde);

/// Precomputed SVD context for the eigenspace instability measure: the
/// reference embeddings E, Ẽ defining Σ = (EEᵀ)^α + (ẼẼᵀ)^α. In the paper
/// these are the highest-dimensional full-precision Wiki'17/Wiki'18
/// embeddings. Reusable across many (X, X̃) evaluations.
struct EisContext {
  la::Matrix v;                    // right singular vectors of E
  std::vector<double> r;           // singular values of E
  la::Matrix v_tilde;              // right singular vectors of Ẽ... stored as
                                   // *left*-side factors V, Ṽ of EEᵀ = VR²Vᵀ
  std::vector<double> r_tilde;
  double alpha = 3.0;              // eigenvalue-importance exponent (Tab. 8)

  /// Builds the context from the reference embedding matrices.
  static EisContext build(const la::Matrix& e, const la::Matrix& e_tilde,
                          double alpha = 3.0);
};

/// Eigenspace instability measure EI_Σ(X, X̃) (Definition 2), evaluated with
/// the efficient expansion of Appendix B.1. `u` and `u_tilde` are the left
/// singular vectors of X and X̃ (see la::left_singular_vectors).
double eigenspace_instability(const la::Matrix& u, const la::Matrix& u_tilde,
                              const EisContext& ctx);

/// Convenience overload computing the SVDs of X and X̃ internally.
double eigenspace_instability_of(const la::Matrix& x,
                                 const la::Matrix& x_tilde,
                                 const EisContext& ctx);

/// Reference implementation via the explicit n×n Σ (Definition 2 verbatim).
/// O(n²·d) time, O(n²) memory — used by tests to validate the fast path.
double eigenspace_instability_naive(const la::Matrix& x,
                                    const la::Matrix& x_tilde,
                                    const la::Matrix& sigma);

/// Explicit Σ = (EEᵀ)^α + (ẼẼᵀ)^α for tests (n×n — small inputs only).
la::Matrix build_sigma_naive(const la::Matrix& e, const la::Matrix& e_tilde,
                             double alpha);

/// The measures as selection criteria, oriented so that *larger = more
/// unstable* (i.e. k-NN and eigenspace overlap enter as 1 − similarity).
enum class Measure {
  kEigenspaceInstability,
  kOneMinusKnn,
  kSemanticDisplacement,
  kPipLoss,
  kOneMinusEigenspaceOverlap,
};

inline constexpr Measure kAllMeasures[] = {
    Measure::kEigenspaceInstability,   Measure::kOneMinusKnn,
    Measure::kSemanticDisplacement,    Measure::kPipLoss,
    Measure::kOneMinusEigenspaceOverlap,
};

std::string measure_name(Measure m);

}  // namespace anchor::core
