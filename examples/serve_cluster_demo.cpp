// Distributed serving across THREE processes: two anchor backends each
// owning half the vocabulary, fronted by a cluster::Router that
// unmodified net::Client code talks to as if it were one store.
//
// The demo proves the three cluster guarantees end to end:
//   1. TRANSPARENCY — scatter-gathered id and word lookups through the
//      router are bit-identical (vectors, flags, version) to a single-
//      process store holding the concatenated rows.
//   2. COORDINATED ROLLOUT — ROLLOUT_START walks the shards in order,
//      promoting the v2 refresh on shard 2 only after shard 1's gate
//      said yes; every step lands in the audit CSV.
//   3. DEGRADED MODE — SIGKILLing one backend turns its rows into
//      flagged partial results (kLookupFlagDegraded), never an error.
//   4. MERGED TOPK — ANN searches scatter-gather per-shard candidate
//      lists; because every backend trains the same IVF-PQ artifacts on
//      the full (pre-slice) v1 matrix, the router's merged top-k is
//      bit-identical to a single-process index, and a dead shard yields
//      a kTopKFlagPartial result instead of an error.
//
// Against an already-running router (e.g. started by CI or by hand):
//   serve_cluster_demo --connect 127.0.0.1:7500 [--rollout v2-good]
//       [--shutdown]
// (connect mode checks shapes and the rollout state machine, not
// bit-identity — it cannot know how the remote backends were loaded).
//
// Build & run:  ./build/examples/serve_cluster_demo
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "ann/ivf_pq.hpp"
#include "cluster/router.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "obs/metrics.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"

namespace {

using namespace anchor;

constexpr std::size_t kVocab = 1200;
constexpr std::size_t kDim = 32;
constexpr std::size_t kSplit = 600;  // shard 1: [0, 600), shard 2: [600, 1200)

embed::Embedding base_embedding(std::uint64_t seed) {
  embed::Embedding e(kVocab, kDim);
  Rng rng(seed);
  for (auto& x : e.data) x = static_cast<float>(rng.normal(0.0, 1.0));
  return e;
}

/// v2 = v1 + 1% jitter: the routine refresh the default gate admits.
embed::Embedding refreshed(const embed::Embedding& v1) {
  embed::Embedding e = v1;
  Rng rng(99);
  for (auto& x : e.data) x += static_cast<float>(rng.normal(0.0, 0.01));
  return e;
}

embed::Embedding slice(const embed::Embedding& full, std::size_t begin,
                       std::size_t end) {
  embed::Embedding e(end - begin, full.dim);
  std::memcpy(e.data.data(), full.data.data() + begin * full.dim,
              (end - begin) * full.dim * sizeof(float));
  return e;
}

serve::SnapshotConfig demo_snapshot_config() {
  serve::SnapshotConfig snap;
  // No OOV tables: synthesis draws on whichever rows a process holds, so
  // it is the one lookup output that legitimately differs between one
  // process and a sliced cluster. Dropping it makes EVERY byte
  // comparable (OOV slots are zero + flagged on both sides).
  snap.build_oov_table = false;
  return snap;
}

/// Backend child: serve rows [begin, end) of v1 (live) and v2 (candidate)
/// until a client kShutdown; report the ephemeral port through `port_fd`.
int run_backend_child(int port_fd, std::size_t begin, std::size_t end) {
  const embed::Embedding v1 = base_embedding(7);
  const embed::Embedding v2 = refreshed(v1);
  serve::EmbeddingStore store;
  const serve::SnapshotConfig snap = demo_snapshot_config();
  store.add_version("v1", slice(v1, begin, end), snap);
  store.add_version("v2", slice(v2, begin, end), snap);

  // Every shard trains TOPK artifacts on the full pre-slice v1 matrix it
  // already regenerates: train_ivfpq is deterministic given (rows,
  // config), so all shards — and the parent's reference index — end up
  // with identical codebooks without any artifact shipping.
  net::ServerConfig config;
  config.ann.artifacts = ann::train_ivfpq(v1, config.ann);
  net::Server server(store, config);
  server.start();
  const std::uint16_t port = server.port();
  if (::write(port_fd, &port, sizeof(port)) != sizeof(port)) return 1;
  ::close(port_fd);
  while (!server.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  server.stop();
  return 0;
}

bool results_identical(const serve::LookupResult& a,
                       const serve::LookupResult& b) {
  return a.version == b.version && a.dim == b.dim && a.oov == b.oov &&
         a.vectors.size() == b.vectors.size() &&
         (a.vectors.empty() ||
          std::memcmp(a.vectors.data(), b.vectors.data(),
                      a.vectors.size() * sizeof(float)) == 0);
}

bool topk_identical(const ann::TopKResult& a, const ann::TopKResult& b) {
  if (a.hits.size() != b.hits.size()) return false;
  for (std::size_t i = 0; i < a.hits.size(); ++i) {
    if (a.hits[i].id != b.hits[i].id || a.hits[i].exact != b.hits[i].exact ||
        a.hits[i].adc != b.hits[i].adc) {
      return false;
    }
  }
  return true;
}

std::uint64_t counter_value(const obs::MetricsReport& report,
                            const std::string& name) {
  for (const auto& m : report.metrics) {
    if (m.name == name) return m.counter;
  }
  return 0;
}

net::RolloutStatusReport poll_rollout(net::Client& client) {
  net::RolloutStatusReport st = client.rollout_status();
  for (int i = 0; i < 600 && !st.terminal(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    st = client.rollout_status();
  }
  return st;
}

void print_rollout(const net::RolloutStatusReport& st) {
  std::cout << "rollout '" << st.candidate
            << "': " << net::rollout_state_name(st.state) << "\n";
  for (std::size_t i = 0; i < st.shards.size(); ++i) {
    std::cout << "  shard " << (i + 1) << ": "
              << net::shard_rollout_state_name(st.shards[i].state) << " — "
              << st.shards[i].detail << "\n";
  }
}

/// Connect mode (CI): shape checks + rollout against a live router.
/// `pump` > 0 issues that many extra scatter-gather lookups and fails on
/// ANY degraded row — the failover smoke: with replicated shards, killing
/// one backend mid-pump must stay invisible to clients.
bool run_connect(const std::string& host, std::uint16_t port,
                 const std::string& rollout_candidate, bool send_shutdown,
                 std::size_t pump) {
  net::Client client(host, port);
  client.ping();
  const std::string map_text = client.shard_map();
  const cluster::ShardMap map = cluster::ShardMap::parse(map_text);
  std::cout << "connected to router at " << host << ":" << port
            << "\nshard map: " << map_text << "\n";

  // Ids spanning every shard plus one past the end of the vocabulary.
  std::vector<std::size_t> ids;
  for (std::size_t s = 0; s < map.num_shards(); ++s) {
    ids.push_back(map.shard(s).row_begin);
    ids.push_back(map.shard(s).row_end - 1);
  }
  ids.push_back(map.total_rows());
  const auto result = client.lookup_ids(ids);
  bool ok = result.size() == ids.size() && result.dim > 0;
  for (std::size_t i = 0; i + 1 < ids.size(); ++i) ok = ok && !result.oov[i];
  ok = ok && result.oov.back() == serve::kLookupFlagOov;
  std::cout << "lookup spanning " << map.num_shards() << " shards: dim="
            << result.dim << " version='" << result.version << "'\n";

  if (pump > 0) {
    // Rotate through id windows spanning every shard so each pump
    // iteration scatter-gathers the whole cluster.
    std::size_t degraded_rows = 0, pumped = 0;
    for (std::size_t i = 0; i < pump; ++i) {
      std::vector<std::size_t> window;
      for (std::size_t s = 0; s < map.num_shards(); ++s) {
        const auto& spec = map.shard(s);
        const std::size_t rows = spec.row_end - spec.row_begin;
        window.push_back(spec.row_begin + (i * 7) % rows);
      }
      const auto r = client.lookup_ids(window);
      ++pumped;
      for (std::size_t k = 0; k < r.size(); ++k) {
        if (r.oov[k] & serve::kLookupFlagDegraded) ++degraded_rows;
      }
    }
    std::cout << "pumped " << pumped << " scatter-gather lookups: "
              << degraded_rows << " degraded rows\n";
    ok = ok && degraded_rows == 0;
  }

  if (!rollout_candidate.empty()) {
    client.rollout_start(rollout_candidate, /*mode=*/0);
    const auto st = poll_rollout(client);
    print_rollout(st);
    ok = ok && st.state == net::RolloutState::kCompleted;
    const auto after = client.lookup_ids({0});
    ok = ok && after.version == rollout_candidate;
    std::cout << "now serving from '" << after.version << "'\n";
  }
  const auto stats = client.stats();
  std::cout << "aggregated stats: live=" << stats.live_version
            << " service lookups=" << stats.service.lookups << "\n";
  if (send_shutdown) {
    client.shutdown_server();
    std::cout << "sent shutdown; router acknowledged\n";
  }
  std::cout << "\n[shape] " << (ok ? "PASS" : "FAIL")
            << "  scatter-gather shapes + coordinated rollout over the "
               "live cluster\n";
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect, rollout_candidate;
  bool send_shutdown = false;
  std::size_t pump = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      connect = argv[++i];
    } else if (arg == "--rollout" && i + 1 < argc) {
      rollout_candidate = argv[++i];
    } else if (arg == "--pump" && i + 1 < argc) {
      try {
        pump = static_cast<std::size_t>(std::stoul(argv[++i]));
      } catch (const std::exception&) {
        std::cerr << "--pump expects a lookup count\n";
        return 2;
      }
    } else if (arg == "--shutdown") {
      send_shutdown = true;
    } else {
      std::cerr << "usage: serve_cluster_demo [--connect host:port] "
                   "[--pump N] [--rollout candidate] [--shutdown]\n";
      return 2;
    }
  }

  if (!connect.empty()) {
    const std::size_t colon = connect.rfind(':');
    int port = -1;
    if (colon != std::string::npos) {
      try {
        port = std::stoi(connect.substr(colon + 1));
      } catch (const std::exception&) {
        port = -1;
      }
    }
    if (colon == std::string::npos || port < 1 || port > 65535) {
      std::cerr << "--connect expects host:port (port in [1, 65535])\n";
      return 2;
    }
    try {
      return run_connect(connect.substr(0, colon),
                         static_cast<std::uint16_t>(port), rollout_candidate,
                         send_shutdown, pump)
                 ? 0
                 : 1;
    } catch (const std::exception& e) {
      std::cerr << "client error: " << e.what() << "\n";
      return 1;
    }
  }

  // Self-contained mode: two forked backend processes + the router in
  // this one (three processes total).
  int pipes[2][2];
  pid_t children[2] = {0, 0};
  const std::size_t ranges[2][2] = {{0, kSplit}, {kSplit, kVocab}};
  for (int c = 0; c < 2; ++c) {
    if (::pipe(pipes[c]) != 0) {
      std::cerr << "pipe failed: " << std::strerror(errno) << "\n";
      return 1;
    }
    children[c] = ::fork();
    if (children[c] < 0) {
      std::cerr << "fork failed: " << std::strerror(errno) << "\n";
      return 1;
    }
    if (children[c] == 0) {
      ::close(pipes[c][0]);
      ::_exit(run_backend_child(pipes[c][1], ranges[c][0], ranges[c][1]));
    }
    ::close(pipes[c][1]);
  }
  std::uint16_t backend_ports[2] = {0, 0};
  for (int c = 0; c < 2; ++c) {
    const ssize_t got =
        ::read(pipes[c][0], &backend_ports[c], sizeof(backend_ports[c]));
    ::close(pipes[c][0]);
    if (got != sizeof(backend_ports[c])) {
      std::cerr << "backend child " << c << " died before reporting a port\n";
      for (const pid_t child : children) {
        if (child > 0) ::kill(child, SIGKILL);
      }
      return 1;
    }
  }
  std::cout << "backends: pid " << children[0] << " on 127.0.0.1:"
            << backend_ports[0] << " rows [0," << kSplit << "), pid "
            << children[1] << " on 127.0.0.1:" << backend_ports[1]
            << " rows [" << kSplit << "," << kVocab << ")\n";

  bool ok = false;
  int failures = 0;
  const auto check = [&](bool cond, const std::string& what) {
    std::cout << "  [" << (cond ? "ok" : "FAIL") << "] " << what << "\n";
    if (!cond) ++failures;
  };
  try {
    cluster::RouterConfig rc;
    rc.map = cluster::ShardMap(
        1, {{"127.0.0.1", backend_ports[0], 0, kSplit},
            {"127.0.0.1", backend_ports[1], kSplit, kVocab}});
    rc.probe_interval_ms = 100;
    rc.backend_io_timeout_ms = 1000;
    rc.audit_log = "/tmp/serve_cluster_demo_audit.csv";
    std::filesystem::remove(rc.audit_log);
    cluster::Router router(rc);
    router.start();
    std::cout << "router on 127.0.0.1:" << router.port() << " — map "
              << rc.map.serialize() << "\n\n";

    // The single-process reference: the SAME rows in one store.
    const embed::Embedding v1 = base_embedding(7);
    const embed::Embedding v2 = refreshed(v1);
    serve::EmbeddingStore reference;
    const serve::SnapshotConfig snap = demo_snapshot_config();
    const auto ref_snap_v1 = reference.add_version("v1", v1, snap);
    reference.add_version("v2", v2, snap);
    serve::LookupService ref_service(reference);

    net::Client client("127.0.0.1", router.port());
    client.ping();
    check(cluster::ShardMap::parse(client.shard_map()) == rc.map,
          "SHARD_MAP round-trips the router's topology");

    // 1. Bit-identical scatter-gather: ids crossing both shards, the
    //    shard boundary, and one past the vocabulary end.
    std::vector<std::size_t> ids = {0,          17,        kSplit - 1,
                                    kSplit,     kSplit + 5, kVocab - 1,
                                    kVocab + 3, 42,        kSplit + 300};
    check(results_identical(client.lookup_ids(ids), ref_service.lookup_ids(ids)),
          "id lookup through the router is bit-identical to one process");
    const std::vector<std::string> words = {"w0", "w599", "w600", "w1199",
                                            "quux-unseen", "w87"};
    check(results_identical(client.lookup_words(words),
                            ref_service.lookup_words(words)),
          "word lookup (incl. the OOV flag path) is bit-identical");

    // 1b. Merged TOPK: both backends encoded their slices with artifacts
    //     trained on the full v1 matrix, so the router's merge of their
    //     candidate lists must reconstruct the single-process result bit
    //     for bit (ids, exact AND ADC distances).
    ann::AnnConfig ann_cfg;
    ann_cfg.artifacts = ann::train_ivfpq(v1, ann_cfg);
    const ann::IvfPqIndex ref_index(ref_snap_v1, ann_cfg);
    Rng qrng(31);
    std::vector<float> query(kDim);
    bool topk_ok = true;
    for (int q = 0; q < 5 && topk_ok; ++q) {
      for (auto& x : query) x = static_cast<float>(qrng.normal(0.0, 1.0));
      const ann::TopKResult got = client.topk_vector(query, 10);
      topk_ok = got.version == "v1" && got.flags == 0 &&
                topk_identical(got, ref_index.search(query.data(), 10));
    }
    check(topk_ok,
          "TOPK through the router is bit-identical to one process "
          "(shared artifacts, deterministic merge)");

    // 2. Coordinated rollout: v2 goes live shard-by-shard, gated.
    client.rollout_start("v2", /*mode=*/0);
    const auto st = poll_rollout(client);
    print_rollout(st);
    check(st.state == net::RolloutState::kCompleted,
          "rolling promote completed");
    bool shards_promoted = !st.shards.empty();
    for (const auto& shard : st.shards) {
      shards_promoted =
          shards_promoted && shard.state == net::ShardRolloutState::kPromoted;
    }
    check(shards_promoted, "every shard reports promoted");
    reference.set_live("v2");
    check(results_identical(client.lookup_ids(ids), ref_service.lookup_ids(ids)),
          "post-rollout lookups serve v2, still bit-identical");
    const auto audit = serve::read_audit_csv(rc.audit_log);
    check(audit.size() >= 3, "audit CSV has per-shard + summary rows (" +
                                 std::to_string(audit.size()) + ")");

    // 3. Degraded mode: kill shard 2 mid-stream, lookups keep answering.
    ::kill(children[1], SIGKILL);
    int status = 0;
    ::waitpid(children[1], &status, 0);
    children[1] = 0;
    const auto degraded = client.lookup_ids(ids);
    bool flags_ok = degraded.size() == ids.size();
    for (std::size_t i = 0; i < ids.size() && flags_ok; ++i) {
      if (ids[i] >= kVocab) {
        flags_ok = degraded.oov[i] == serve::kLookupFlagOov;
      } else if (ids[i] >= kSplit) {
        flags_ok = degraded.oov[i] == serve::kLookupFlagDegraded;
      } else {
        flags_ok = !degraded.oov[i] &&
                   std::memcmp(degraded.row(i), ref_service.lookup_ids(
                       {ids[i]}).row(0), kDim * sizeof(float)) == 0;
      }
    }
    check(flags_ok,
          "after SIGKILLing shard 2: partial result, dead rows flagged "
          "degraded, live rows still exact");

    // TOPK over the half-cluster: flagged partial, every hit from the
    // surviving shard's rows. (Retry a few times — the dead backend may
    // still look connectable until the router's first failed write.)
    ann::TopKResult part;
    for (int attempt = 0; attempt < 10; ++attempt) {
      part = client.topk_vector(query, 10);
      if (part.flags & ann::kTopKFlagPartial) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    bool part_ok =
        (part.flags & ann::kTopKFlagPartial) != 0 && !part.hits.empty();
    for (const ann::TopKHit& h : part.hits) part_ok = part_ok && h.id < kSplit;
    check(part_ok,
          "TOPK after shard loss: flagged partial, only live-shard ids");

    // Observability: the router and the surviving backend both counted
    // the TOPK traffic.
    net::Client backend1("127.0.0.1", backend_ports[0]);
    const std::uint64_t router_topk =
        counter_value(client.metrics(), "anchor_router_topk_total");
    const std::uint64_t backend_topk =
        counter_value(backend1.metrics(), "anchor_topk_requests_total");
    check(router_topk >= 6 && backend_topk >= 6,
          "TOPK metrics: anchor_router_topk_total=" +
              std::to_string(router_topk) +
              ", backend anchor_topk_requests_total=" +
              std::to_string(backend_topk));

    // Teardown: backend 1 by direct RPC, the router by its own RPC.
    backend1.shutdown_server();
    client.shutdown_server();
    ok = failures == 0;
  } catch (const std::exception& e) {
    std::cerr << "demo error: " << e.what() << "\n";
  }

  for (const pid_t child : children) {
    if (child > 0) {
      int status = 0;
      ::waitpid(child, &status, 0);
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        std::cerr << "backend child exited abnormally\n";
        ok = false;
      }
    }
  }
  std::cout << "\n[shape] " << (ok ? "PASS" : "FAIL")
            << "  bit-identical scatter-gather + merged TOPK, "
               "shard-by-shard rollout, flagged partial results on "
               "backend loss\n";
  return ok ? 0 : 1;
}
