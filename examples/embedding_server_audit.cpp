// Embedding-server audit — the workload the paper's introduction motivates:
// an embedding is reused by several downstream consumers, and an engineer
// must decide whether this month's retrained embedding can be rolled out
// without churning predictions across the fleet.
//
// This example trains one embedding pair (old corpus vs new corpus), then
// audits it against THREE downstream consumers (two sentiment products and
// an NER service), comparing the cheap embedding-level signals (EIS, k-NN)
// with the true per-consumer prediction churn.
//
// Build & run:  ./build/examples/embedding_server_audit
#include <iostream>

#include "core/measures.hpp"
#include "pipeline/pipeline.hpp"
#include "util/table.hpp"

int main() {
  using namespace anchor;
  using pipeline::Pipeline;

  pipeline::PipelineConfig config;  // bench-scale defaults
  config.seeds = {1};
  Pipeline pipe(config, "anchor-cache");

  const embed::Algo algo = embed::Algo::kCbow;
  const std::size_t dim = 32;

  std::cout << "Auditing a retrained " << embed::algo_name(algo) << " d="
            << dim << " embedding before rollout...\n\n";

  // Embedding-level signals: computable in seconds, no model retraining.
  TextTable signal_table({"precision", "EIS", "1 - kNN overlap"});
  for (const int bits : {32, 4, 1}) {
    const auto m = pipe.measures(algo, dim, bits, 1);
    signal_table.add_row({std::to_string(bits), format_double(m[0], 4),
                          format_double(m[1], 3)});
  }
  std::cout << "Embedding-level signals (no downstream training needed):\n";
  signal_table.print(std::cout);

  // Ground truth: per-consumer churn if we retrain every downstream model.
  std::cout << "\nPer-consumer prediction churn (what the fleet would "
               "actually see):\n";
  TextTable churn_table(
      {"consumer", "churn @32-bit", "churn @4-bit", "churn @1-bit"});
  for (const std::string& task :
       {std::string("sst2"), std::string("mpqa"), std::string("conll2003")}) {
    std::vector<std::string> row = {task};
    for (const int bits : {32, 4, 1}) {
      row.push_back(format_double(
                        pipe.downstream_instability(task, algo, dim, bits, 1),
                        2) +
                    "%");
    }
    churn_table.add_row(std::move(row));
  }
  churn_table.print(std::cout);

  std::cout << "\nDecision guidance: if the EIS of the new pair is well "
               "above the last accepted rollout's value, expect "
               "proportionally more churn across every consumer (Table 1's "
               "correlation), and consider a higher-memory configuration "
               "(Figure 2's tradeoff) before shipping.\n";
  return 0;
}
