// Online canarying across TWO processes: shadow-traffic agreement decides
// what the offline gate alone cannot.
//
// By default this example forks: the child serves the synthetic demo
// store (v1 live, v2-good a routine refresh, v3-bad a botched one) with a
// deliberately PERMISSIVE offline gate — the point of this demo is the
// online phase — and an audit log in the temp directory. The parent
// connects over loopback RPC and runs two canaried promotions:
//
//   1. canary_start("v2-good"): phase 1 admits, the canary routes half
//      of the lookup keys to the candidate and mirrors half of those to
//      the incumbent; online top-k agreement is high, so the server
//      auto-PROMOTES once the lower confidence bound clears the promote
//      threshold. Lookups follow the swap.
//   2. canary_start("v3-bad"): the permissive offline gate admits the
//      scrambled candidate too (a real fleet's gate can be fooled — or
//      misconfigured — which is exactly why online canarying exists);
//      online agreement is chance-level, so the server auto-ROLLS-BACK
//      and v2-good keeps serving.
//
// Both decisions land in the audit CSV, which the parent prints at the
// end: the rollout history shows measured online agreement, not just
// offline prediction.
//
// Against an already-running daemon (e.g. the CI smoke):
//   anchor_served --demo --port 7411 --eis-warn 10 --eis-reject 10
//       --knn-warn 10 --knn-reject 10 --canary-fraction 0.5
//       --shadow-rate 0.5 --canary-min-shadows 48
//       --audit-log /tmp/canary_audit.csv &    (one line)
//   serve_canary_demo --connect 127.0.0.1:7411 --shutdown
//
// Build & run:  ./build/examples/serve_canary_demo
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/demo_store.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace anchor;

constexpr std::size_t kVocab = 1500;

net::ServerConfig demo_server_config(const std::filesystem::path& audit) {
  net::ServerConfig config;
  // Permissive offline gate: phase 1 admits even the scrambled candidate,
  // so the ONLINE phase is what stands between it and production.
  config.gate.eis_warn = config.gate.eis_reject = 10.0;
  config.gate.knn_warn = config.gate.knn_reject = 10.0;
  config.gate.max_rows = 512;   // keep phase 1 snappy for a demo
  config.gate.knn_queries = 64;
  config.gate.audit_log = audit;
  // Aggressive canary so decisions arrive within a few hundred lookups.
  config.canary.fraction = 0.5;
  config.canary.shadow_rate = 0.5;
  config.canary.min_shadows = 48;
  config.canary.probe_rows = 128;
  return config;
}

/// Child: serve the demo store until the parent sends kShutdown.
int run_server_child(int port_fd, const std::filesystem::path& audit) {
  serve::EmbeddingStore store;
  serve::DemoStoreConfig demo;
  demo.vocab = kVocab;
  serve::add_demo_versions(store, demo);

  net::Server server(store, demo_server_config(audit));
  server.start();
  const std::uint16_t port = server.port();
  if (::write(port_fd, &port, sizeof(port)) != sizeof(port)) return 1;
  ::close(port_fd);

  while (!server.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  server.stop();
  return 0;
}

/// Drives random id lookups until the canary reaches a terminal state
/// (every lookup batch feeds the shadow scorer server-side).
net::CanaryStatusReport pump_until_decided(net::Client& client, Rng& rng) {
  net::CanaryStatusReport status = client.canary_status();
  for (int iter = 0; iter < 600 && status.state == serve::CanaryState::kRunning;
       ++iter) {
    std::vector<std::size_t> ids(16);
    for (auto& id : ids) id = rng.index(kVocab);
    client.lookup_ids(ids);
    if (iter % 4 == 3) status = client.canary_status();
  }
  return client.canary_status();
}

bool run_client(const std::string& host, std::uint16_t port,
                bool send_shutdown) {
  net::Client client(host, port);
  client.ping();
  std::cout << "connected to " << host << ":" << port << " (ping ok)\n"
            << "live version: " << client.stats().live_version << "\n\n";
  Rng rng(11);

  TextTable table({"candidate", "offline", "state", "agreement [lo, hi]",
                   "displacement", "shadows"});
  const auto add_row = [&table](const net::CanaryStatusReport& s) {
    table.add_row({s.candidate, serve::decision_name(s.offline.decision),
                   serve::canary_state_name(s.state),
                   format_double(s.online.mean_agreement, 3) + " [" +
                       format_double(s.online.agreement_lower, 3) + ", " +
                       format_double(s.online.agreement_upper, 3) + "]",
                   format_double(s.online.mean_displacement, 4),
                   std::to_string(s.online.shadows)});
  };

  // Cycle 1: the routine refresh. Phase 1 admits; online agreement
  // promotes it without any human in the loop.
  std::cout << "starting canary for v2-good (fraction=0.5, shadow=0.5)...\n";
  net::CanaryStatusReport good = client.canary_start("v2-good");
  if (good.state != serve::CanaryState::kRunning) {
    std::cerr << "canary did not start: " << good.reason << "\n";
    return false;
  }
  good = pump_until_decided(client, rng);
  add_row(good);
  const std::string live_after_good = client.stats().live_version;
  std::cout << "  → " << serve::canary_state_name(good.state) << "; live='"
            << live_after_good << "'\n  reason: " << good.reason << "\n\n";

  // Cycle 2: the botched refresh sails through the (permissive) offline
  // gate — and the online agreement measured on real shadow traffic
  // catches it.
  std::cout << "starting canary for v3-bad (same knobs)...\n";
  net::CanaryStatusReport bad = client.canary_start("v3-bad");
  const bool bad_started = bad.state == serve::CanaryState::kRunning;
  if (bad_started) bad = pump_until_decided(client, rng);
  add_row(bad);
  const std::string live_after_bad = client.stats().live_version;
  std::cout << "  → " << serve::canary_state_name(bad.state) << "; live='"
            << live_after_bad << "'\n  reason: " << bad.reason << "\n\n";
  table.print(std::cout);

  if (send_shutdown) {
    client.shutdown_server();
    std::cout << "\nsent shutdown; daemon acknowledged\n";
  }

  const bool ok =
      good.state == serve::CanaryState::kPromoted &&
      live_after_good == "v2-good" && bad_started &&
      bad.state == serve::CanaryState::kRolledBack &&
      live_after_bad == "v2-good" && good.online.shadows >= 48 &&
      bad.online.shadows >= 48 &&
      good.online.agreement_lower > bad.online.agreement_upper;
  std::cout << "\n[shape] " << (ok ? "PASS" : "FAIL")
            << "  online agreement promotes the routine refresh and rolls "
               "back the botched one, both hands-free\n";
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect;
  bool send_shutdown = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      connect = argv[++i];
    } else if (arg == "--shutdown") {
      send_shutdown = true;
    } else {
      std::cerr
          << "usage: serve_canary_demo [--connect host:port] [--shutdown]\n";
      return 2;
    }
  }

  if (!connect.empty()) {
    const std::size_t colon = connect.rfind(':');
    int port = -1;
    if (colon != std::string::npos) {
      try {
        port = std::stoi(connect.substr(colon + 1));
      } catch (const std::exception&) {
        port = -1;
      }
    }
    if (colon == std::string::npos || port < 1 || port > 65535) {
      std::cerr << "--connect expects host:port (port in [1, 65535])\n";
      return 2;
    }
    try {
      return run_client(connect.substr(0, colon),
                        static_cast<std::uint16_t>(port), send_shutdown)
                 ? 0
                 : 1;
    } catch (const std::exception& e) {
      std::cerr << "client error: " << e.what() << "\n";
      return 1;
    }
  }

  // Self-contained mode: fork a daemon so the canary really runs across a
  // process boundary, with an audit log the parent inspects afterwards.
  const std::filesystem::path audit =
      std::filesystem::temp_directory_path() /
      ("serve_canary_demo_audit_" + std::to_string(::getpid()) + ".csv");
  std::error_code ec;
  std::filesystem::remove(audit, ec);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    std::cerr << "pipe failed: " << std::strerror(errno) << "\n";
    return 1;
  }
  const pid_t child = ::fork();
  if (child < 0) {
    std::cerr << "fork failed: " << std::strerror(errno) << "\n";
    return 1;
  }
  if (child == 0) {
    ::close(pipe_fds[0]);
    ::_exit(run_server_child(pipe_fds[1], audit));
  }
  ::close(pipe_fds[1]);

  std::uint16_t port = 0;
  const ssize_t got = ::read(pipe_fds[0], &port, sizeof(port));
  ::close(pipe_fds[0]);
  if (got != sizeof(port)) {
    std::cerr << "server child died before reporting its port\n";
    ::waitpid(child, nullptr, 0);
    return 1;
  }
  std::cout << "server child pid " << child << " listening on 127.0.0.1:"
            << port << "\n";

  bool ok = false;
  try {
    ok = run_client("127.0.0.1", port, /*send_shutdown=*/true);
  } catch (const std::exception& e) {
    std::cerr << "client error: " << e.what() << "\n";
    ::kill(child, SIGTERM);
  }

  int status = 0;
  ::waitpid(child, &status, 0);
  const bool child_ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  if (!child_ok) std::cerr << "server child exited abnormally\n";

  // Both online decisions must be in the rollout history.
  bool audit_ok = false;
  try {
    const auto rows = serve::read_audit_csv(audit);
    bool saw_promote = false, saw_rollback = false;
    std::cout << "\naudit log (" << audit.string() << "):\n";
    for (const auto& r : rows) {
      std::cout << "  " << r.old_version << " → " << r.new_version << "  ["
                << serve::decision_name(r.decision)
                << (r.promoted ? ", promoted" : "") << "]  " << r.reason
                << "\n";
      if (r.promoted && r.reason.find("canary promote") != std::string::npos) {
        saw_promote = true;
      }
      if (!r.promoted &&
          r.reason.find("canary rollback") != std::string::npos) {
        saw_rollback = true;
      }
    }
    audit_ok = saw_promote && saw_rollback;
    if (!audit_ok) {
      std::cerr << "audit log is missing a canary promote/rollback row\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "audit log check failed: " << e.what() << "\n";
  }
  std::filesystem::remove(audit, ec);
  return ok && child_ok && audit_ok ? 0 : 1;
}
