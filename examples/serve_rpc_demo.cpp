// Instability-gated serving across TWO processes — the paper's embedding-
// server scenario, over the wire.
//
// By default this example forks: the child process builds the synthetic
// three-version demo store (v1 live, v2-good a routine refresh, v3-bad a
// botched one) and serves it with net::Server on an ephemeral loopback
// port; the parent connects with net::Client and walks the whole serving
// surface — ping, batched id/word lookups (OOV synthesis included), a
// rejected and an admitted gated promotion, stats, and a remote shutdown.
// Every lookup the parent makes is coalesced inside the server's async
// batcher before touching the store.
//
// Against an already-running daemon (e.g. started by CI or by hand):
//   anchor_served --demo --port 7411 &
//   serve_rpc_demo --connect 127.0.0.1:7411 --shutdown
//
// Build & run:  ./build/examples/serve_rpc_demo
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/server.hpp"
#include "serve/demo_store.hpp"
#include "util/table.hpp"

namespace {

using namespace anchor;

/// Child: serve the demo store until the parent sends kShutdown; report
/// the ephemeral port through `port_fd`.
int run_server_child(int port_fd) {
  serve::EmbeddingStore store;
  serve::add_demo_versions(store);

  net::ServerConfig config;  // ephemeral port, default gate thresholds
  net::Server server(store, config);
  server.start();

  const std::uint16_t port = server.port();
  if (::write(port_fd, &port, sizeof(port)) != sizeof(port)) return 1;
  ::close(port_fd);

  while (!server.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  server.stop();
  return 0;
}

/// Parent / --connect mode: the actual demo, against whatever daemon is
/// at host:port. Returns true when every shape check passed.
bool run_client(const std::string& host, std::uint16_t port,
                bool send_shutdown) {
  net::Client client(host, port);
  client.ping();
  std::cout << "connected to " << host << ":" << port << " (ping ok)\n\n";

  const auto before = client.lookup_ids({0, 1, 2});
  std::cout << "lookup_ids({0,1,2}) served by version '" << before.version
            << "', dim=" << before.dim << "\n";

  const std::vector<std::string> words = {"w3", "w7", "quux-unseen"};
  const auto word_result = client.lookup_words(words);
  bool oov_ok = !word_result.oov[0] && !word_result.oov[1];
  std::cout << "lookup_words: ";
  for (std::size_t i = 0; i < words.size(); ++i) {
    std::cout << words[i] << (word_result.oov[i] ? " (oov-synthesized) " : " (in-vocab) ");
  }
  oov_ok = oov_ok && word_result.oov[2];
  std::cout << "\n\n";

  // The gate, over RPC: the botched refresh must bounce, the routine one
  // must go live — same decisions the in-process example makes, now made
  // by the daemon for an out-of-process consumer.
  TextTable table({"candidate", "eis", "1-knn", "decision", "promoted"});
  const auto bad = client.try_promote("v3-bad");
  table.add_row({"v3-bad", format_double(bad.eis, 4),
                 format_double(bad.one_minus_knn, 4),
                 serve::decision_name(bad.decision), bad.promoted ? "yes" : "no"});
  const auto good = client.try_promote("v2-good");
  table.add_row({"v2-good", format_double(good.eis, 4),
                 format_double(good.one_minus_knn, 4),
                 serve::decision_name(good.decision),
                 good.promoted ? "yes" : "no"});
  table.print(std::cout);

  bool unknown_rejected = false;
  try {
    client.try_promote("no-such-version");
  } catch (const net::RpcError& e) {
    unknown_rejected = true;
    std::cout << "\ntry_promote(no-such-version) → RpcError: " << e.what()
              << "\n";
  }

  const auto after = client.lookup_ids({0, 1, 2});
  const auto stats = client.stats();
  std::cout << "\nnow serving from '" << after.version << "'\n"
            << "server stats: live=" << stats.live_version
            << " encoding=" << stats.encoding
            << "\n  service: " << stats.service.summary()
            << "\n  batcher: " << stats.batcher.summary() << "\n";

  if (send_shutdown) {
    client.shutdown_server();
    std::cout << "sent shutdown; daemon acknowledged\n";
  }

  const bool ok = !bad.promoted && bad.decision == serve::GateDecision::kReject &&
                  good.promoted && after.version == "v2-good" &&
                  before.version == "v1" && oov_ok && unknown_rejected &&
                  stats.batcher.lookups > 0;
  std::cout << "\n[shape] " << (ok ? "PASS" : "FAIL")
            << "  RPC gate rejects the botched refresh, promotes the "
               "routine one, and lookups follow the hot swap\n";
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect;
  bool send_shutdown = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      connect = argv[++i];
    } else if (arg == "--shutdown") {
      send_shutdown = true;
    } else {
      std::cerr << "usage: serve_rpc_demo [--connect host:port] [--shutdown]\n";
      return 2;
    }
  }

  if (!connect.empty()) {
    const std::size_t colon = connect.rfind(':');
    int port = -1;
    if (colon != std::string::npos) {
      try {
        port = std::stoi(connect.substr(colon + 1));
      } catch (const std::exception&) {
        port = -1;
      }
    }
    if (colon == std::string::npos || port < 1 || port > 65535) {
      std::cerr << "--connect expects host:port (port in [1, 65535])\n";
      return 2;
    }
    const std::string host = connect.substr(0, colon);
    return run_client(host, static_cast<std::uint16_t>(port), send_shutdown)
               ? 0
               : 1;
  }

  // Self-contained mode: serve from a forked child so the lookups really
  // cross a process boundary.
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    std::cerr << "pipe failed: " << std::strerror(errno) << "\n";
    return 1;
  }
  const pid_t child = ::fork();
  if (child < 0) {
    std::cerr << "fork failed: " << std::strerror(errno) << "\n";
    return 1;
  }
  if (child == 0) {
    ::close(pipe_fds[0]);
    ::_exit(run_server_child(pipe_fds[1]));
  }
  ::close(pipe_fds[1]);

  std::uint16_t port = 0;
  const ssize_t got = ::read(pipe_fds[0], &port, sizeof(port));
  ::close(pipe_fds[0]);
  if (got != sizeof(port)) {
    std::cerr << "server child died before reporting its port\n";
    ::waitpid(child, nullptr, 0);
    return 1;
  }
  std::cout << "server child pid " << child << " listening on 127.0.0.1:"
            << port << "\n";

  bool ok = false;
  try {
    ok = run_client("127.0.0.1", port, /*send_shutdown=*/true);
  } catch (const std::exception& e) {
    std::cerr << "client error: " << e.what() << "\n";
    // The shutdown RPC never went out; the child would serve forever and
    // waitpid below would hang. Kill it so the demo fails fast instead.
    ::kill(child, SIGTERM);
  }

  int status = 0;
  ::waitpid(child, &status, 0);
  const bool child_ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  if (!child_ok) std::cerr << "server child exited abnormally\n";
  return ok && child_ok ? 0 : 1;
}
