// Instability-gated hot swap — the paper's serving scenario end to end.
//
// An embedding server holds a live snapshot trained on "this year's" corpus.
// Two refreshes arrive: a routine one trained on next year's corpus (the
// Wiki'17 → Wiki'18 stimulus), and a botched one whose training data came
// from the wrong pipeline. The DeploymentGate measures eigenspace
// instability and 1 − k-NN overlap (core/measures) between the incumbent
// and each candidate, with thresholds calibrated from the measured
// seed-to-seed variability of the incumbent's own training run — the churn
// level the fleet already tolerates — and admits the routine refresh while
// rejecting the botched one. No downstream model had to be retrained to
// make the call, which is the point of the paper's cheap predictive
// measures.
//
// The gate's audit trail goes to a CSV whose location is configurable:
// pass a path as argv[1], or set ANCHOR_AUDIT_LOG; the default is
// anchor_serve_audit.csv under the system temp directory (never the
// current working directory — a demo must not litter a repo checkout).
//
// Build & run:  ./build/examples/serve_hot_swap [audit.csv]
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "embed/trainer.hpp"
#include "serve/serve.hpp"
#include "text/corpus.hpp"
#include "text/latent_space.hpp"
#include "util/table.hpp"

namespace {

std::filesystem::path audit_log_path(int argc, char** argv) {
  if (argc > 1) return argv[1];
  if (const char* env = std::getenv("ANCHOR_AUDIT_LOG")) return env;
  return std::filesystem::temp_directory_path() / "anchor_serve_audit.csv";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace anchor;

  // Bench-scale corpora: one base year, a drifted next year, and a
  // "botched" refresh drawn from an unrelated latent space (wrong data).
  text::LatentSpaceConfig space_config;
  space_config.vocab_size = 600;
  const text::LatentSpace year2017(space_config);
  const text::LatentSpace year2018 = year2017.drifted(0.02, 99);
  text::LatentSpaceConfig wrong_config = space_config;
  wrong_config.seed = 4242;  // unrelated semantics: a broken data pipeline
  const text::LatentSpace wrong_space(wrong_config);

  text::CorpusConfig corpus_config;
  corpus_config.num_documents = 800;
  embed::TrainOptions train;
  train.dim = 32;

  std::cout << "Training incumbent + candidates (CBOW d=" << train.dim
            << ", vocab=" << space_config.vocab_size << ")...\n";
  const auto train_on = [&](const text::LatentSpace& space,
                            std::uint64_t seed) {
    embed::TrainOptions opts = train;
    opts.seed = seed;
    return embed::train_embedding(text::generate_corpus(space, corpus_config),
                                  embed::Algo::kCbow, opts);
  };
  const auto v2017 = train_on(year2017, 1);
  const auto v2017_reseed = train_on(year2017, 2);  // calibration twin
  const auto v2018 = train_on(year2018, 1);
  const auto v2018_bad = train_on(wrong_space, 1);

  serve::EmbeddingStore store;
  store.add_version("v2017", v2017);           // becomes live
  store.add_version("v2018", v2018);
  store.add_version("v2018-bad", v2018_bad);

  // Calibrate thresholds from core/measures values: the seed-to-seed
  // variability of the incumbent's own training run is churn the fleet
  // already absorbs, so warn at 2× and reject at 4× that level.
  serve::EmbeddingStore calib;
  calib.add_version("v2017", v2017);
  calib.add_version("v2017-reseed", v2017_reseed);
  serve::GateConfig probe_config;
  probe_config.knn_queries = 128;
  const auto baseline = serve::DeploymentGate(probe_config)
                            .evaluate(*calib.snapshot("v2017"),
                                      *calib.snapshot("v2017-reseed"));
  serve::GateConfig gate_config = probe_config;
  gate_config.eis_warn = 2.0 * baseline.eis;
  gate_config.eis_reject = 4.0 * baseline.eis;
  gate_config.knn_warn = 2.0 * baseline.one_minus_knn;
  gate_config.knn_reject = 4.0 * baseline.one_minus_knn;
  gate_config.audit_log = audit_log_path(argc, argv);
  const serve::DeploymentGate gate(gate_config);

  std::cout << "\nBaseline (seed-to-seed) measures: eis="
            << format_double(baseline.eis, 4)
            << " 1-knn=" << format_double(baseline.one_minus_knn, 4)
            << "\nGate thresholds: eis warn/reject = "
            << format_double(gate_config.eis_warn, 4) << "/"
            << format_double(gate_config.eis_reject, 4)
            << ", 1-knn warn/reject = "
            << format_double(gate_config.knn_warn, 4) << "/"
            << format_double(gate_config.knn_reject, 4) << "\n\n";

  serve::LookupService service(store);
  const auto before = service.lookup_ids({0, 1, 2});
  std::cout << "Serving from: " << before.version << "\n\n";

  TextTable table({"candidate", "eis", "1-knn", "decision", "live after"});
  for (const std::string candidate : {"v2018-bad", "v2018"}) {
    const auto report = gate.try_promote(store, candidate);
    table.add_row({candidate, format_double(report.eis, 4),
                   format_double(report.one_minus_knn, 4),
                   serve::decision_name(report.decision),
                   store.live_version()});
  }
  table.print(std::cout);

  const auto after = service.lookup_ids({0, 1, 2});
  std::cout << "\nServing from: " << after.version
            << " (hot-swapped without interrupting lookups)\n"
            << "Audit log appended to " << gate_config.audit_log.string()
            << "\nStats: " << service.stats().snapshot().summary() << "\n";

  const bool ok = store.live_version() == "v2018";
  std::cout << "\n[shape] " << (ok ? "PASS" : "FAIL")
            << "  gate admits the routine refresh and rejects the botched "
               "one\n";
  return ok ? 0 : 1;
}
