// Knowledge graph embedding stability (§6.1): train TransE on a full
// synthetic knowledge graph and on a 95% subsample of its training triplets
// (the FB15K vs FB15K-95 stimulus), then measure how link-prediction ranks
// and triplet-classification predictions move — at full precision and
// 2-bit quantized.
//
// Build & run:  ./build/examples/kge_stability
#include <iostream>

#include "core/instability.hpp"
#include "kge/kge_eval.hpp"
#include "util/table.hpp"

int main() {
  using namespace anchor;
  using namespace anchor::kge;

  KgConfig kg_config;
  kg_config.num_entities = 200;
  kg_config.num_relations = 8;
  kg_config.train_triplets = 4000;
  kg_config.valid_triplets = 200;
  kg_config.test_triplets = 400;
  kg_config.tail_temperature = 0.4;
  const KgDataset fb15k = generate_kg(kg_config);
  const KgDataset fb15k_95 = subsample_train(fb15k, 0.05, /*seed=*/95);
  std::cout << "graph: " << fb15k.train.size() << " train triplets; subsample "
            << fb15k_95.train.size() << "\n";

  TransEConfig transe_config;
  transe_config.dim = 32;
  transe_config.max_epochs = 60;
  const TransEModel model95 = train_transe(fb15k_95, transe_config);
  const TransEModel model100 = train_transe(fb15k, transe_config);

  const LabeledTriplets valid =
      make_classification_set(fb15k.valid, fb15k.num_entities, 7);
  const LabeledTriplets test =
      make_classification_set(fb15k.test, fb15k.num_entities, 8);

  TextTable table({"precision", "mean rank (95%)", "unstable-rank@10 %",
                   "triplet-cls disagreement %"});
  for (const int bits : {32, 2}) {
    const TransEModel q95 = quantize_model(model95, bits);
    const TransEModel q100 = quantize_model(model100, bits, &model95);

    const LinkPredictionResult lp95 = link_prediction(q95, fb15k.test);
    const LinkPredictionResult lp100 = link_prediction(q100, fb15k.test);

    const auto thresholds = tune_thresholds(q95, valid, fb15k.num_relations);
    const auto p95 = classify_triplets(q95, test.triplets, thresholds);
    const auto p100 = classify_triplets(q100, test.triplets, thresholds);

    table.add_row({std::to_string(bits), format_double(lp95.mean_rank, 1),
                   format_double(unstable_rank_at_k(lp95, lp100, 10), 1),
                   format_double(
                       core::prediction_disagreement_pct(p95, p100), 1)});
  }
  table.print(std::cout);
  std::cout << "\nDropping 5% of training triplets moves a large share of "
               "ranks; compression amplifies it — the §6.1 stability-memory "
               "tradeoff.\n";
  return 0;
}
