// Quickstart: the core loop of the paper in ~80 lines.
//
// 1. Generate two corpora that differ the way Wiki'17 and Wiki'18 differ.
// 2. Train a CBOW embedding on each.
// 3. Align, compress to a chosen precision, and train downstream sentiment
//    models on both embeddings.
// 4. Report the downstream instability (Definition 1) and the eigenspace
//    instability measure (Definition 2) that predicts it.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "compress/quantize.hpp"
#include "core/instability.hpp"
#include "core/measures.hpp"
#include "embed/trainer.hpp"
#include "la/procrustes.hpp"
#include "model/linear_bow.hpp"
#include "tasks/sentiment.hpp"
#include "text/corpus.hpp"

int main() {
  using namespace anchor;

  // --- 1. Two corpora a "year" apart -------------------------------------
  text::LatentSpaceConfig space_config;
  space_config.vocab_size = 500;
  const text::LatentSpace wiki17(space_config);
  const text::LatentSpace wiki18 = wiki17.drifted(/*drift=*/0.08,
                                                  /*drift_seed=*/18,
                                                  /*doc_fraction_delta=*/0.01);
  text::CorpusConfig corpus_config;
  corpus_config.num_documents = 600;
  const text::Corpus corpus17 = text::generate_corpus(wiki17, corpus_config);
  const text::Corpus corpus18 = text::generate_corpus(wiki18, corpus_config);
  std::cout << "corpora: " << corpus17.total_tokens() << " and "
            << corpus18.total_tokens() << " tokens\n";

  // --- 2. Train embeddings ------------------------------------------------
  embed::TrainOptions train_options;
  train_options.dim = 32;
  const embed::Embedding x17 =
      embed::train_embedding(corpus17, embed::Algo::kCbow, train_options);
  const embed::Embedding x18_raw =
      embed::train_embedding(corpus18, embed::Algo::kCbow, train_options);

  // --- 3. Align, compress, train downstream models -----------------------
  const embed::Embedding x18 = embed::Embedding::from_matrix(
      la::procrustes_align(x17.to_matrix(), x18_raw.to_matrix()));

  compress::QuantizeConfig quant;
  quant.bits = 4;
  const compress::QuantizeResult q17 = compress::uniform_quantize(x17, quant);
  quant.clip_override = q17.clip;  // Wiki'18 reuses Wiki'17's threshold
  const compress::QuantizeResult q18 = compress::uniform_quantize(x18, quant);

  const tasks::TextClassificationDataset sst2 =
      tasks::make_sentiment_task(wiki17, tasks::sentiment_profile("sst2"));
  model::LinearBowConfig model_config;
  const model::LinearBowClassifier model17(q17.embedding, sst2.train_sentences,
                                           sst2.train_labels, model_config);
  const model::LinearBowClassifier model18(q18.embedding, sst2.train_sentences,
                                           sst2.train_labels, model_config);

  // --- 4. Instability + the measure that predicts it ---------------------
  const double di = core::prediction_disagreement_pct(
      model17.predict_all(sst2.test_sentences),
      model18.predict_all(sst2.test_sentences));
  const double acc = core::accuracy_pct(
      model17.predict_all(sst2.test_sentences), sst2.test_labels);

  // Σ built from the two full-precision embeddings (here they double as the
  // high-dimensional reference E, Ẽ of the paper's §5 setup).
  const core::EisContext ctx =
      core::EisContext::build(x17.to_matrix(), x18.to_matrix(), /*alpha=*/3.0);
  const double eis = core::eigenspace_instability_of(
      q17.embedding.to_matrix(), q18.embedding.to_matrix(), ctx);

  std::cout << "test accuracy (Wiki'17 model):  " << acc << "%\n"
            << "downstream instability (4-bit): " << di << "%\n"
            << "eigenspace instability measure: " << eis << "\n"
            << "→ models trained on the two embeddings disagree on " << di
            << "% of test sentences; EIS predicts this without training "
               "them.\n";
  return 0;
}
