// Plugging a *custom* embedding algorithm into the stability toolkit.
//
// The library's measures and selection machinery only need embedding
// matrices — they are agnostic to how those were trained. This example
// implements a deliberately simple algorithm inline (random projection of
// the PPMI matrix, a one-pass sketch of the spectral methods) and runs it
// through the full stability workflow: pair training, alignment,
// quantization sweep, Definition-1 instability, and all five measures.
//
// Use this as the template for evaluating your own embedding method's
// stability–memory behaviour.
//
// Build & run:  ./build/examples/custom_algorithm
#include <iostream>

#include "compress/quantize.hpp"
#include "core/instability.hpp"
#include "core/measures.hpp"
#include "la/procrustes.hpp"
#include "la/sparse.hpp"
#include "model/linear_bow.hpp"
#include "tasks/sentiment.hpp"
#include "text/cooc.hpp"
#include "text/corpus.hpp"
#include "text/latent_space.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using anchor::embed::Embedding;

/// The custom algorithm: X = PPMI · G with a fixed Gaussian G ∈ R^{n×d}
/// (Johnson–Lindenstrauss sketch of the PPMI rows). One data pass, no SGD.
Embedding train_random_projection(const anchor::text::Corpus& corpus,
                                  std::size_t dim, std::uint64_t seed) {
  const anchor::text::CoocMatrix ppmi =
      anchor::text::ppmi(anchor::text::count_cooccurrences(corpus, {}));
  std::vector<anchor::la::SparseEntry> triplets;
  triplets.reserve(ppmi.entries.size());
  for (const auto& e : ppmi.entries) triplets.push_back({e.row, e.col, e.value});
  const anchor::la::SparseMatrix a = anchor::la::SparseMatrix::from_triplets(
      ppmi.vocab_size, std::move(triplets));

  anchor::Rng rng(seed);
  anchor::la::Matrix g(ppmi.vocab_size, dim);
  for (double& v : g.storage()) {
    v = rng.normal(0.0, 1.0 / std::sqrt(static_cast<double>(dim)));
  }
  return Embedding::from_matrix(a.multiply(g));
}

}  // namespace

int main() {
  using namespace anchor;

  // Wiki'17/Wiki'18-analog corpora.
  text::LatentSpaceConfig lsc;
  lsc.vocab_size = 400;
  const text::LatentSpace space17(lsc);
  const text::LatentSpace space18 = space17.drifted(0.08, 99);
  text::CorpusConfig cc;
  cc.num_documents = 600;
  const text::Corpus c17 = text::generate_corpus(space17, cc);
  const text::Corpus c18 = text::generate_corpus(space18, cc);

  const std::size_t dim = 24;
  // Same projection seed on both years: the instability we measure is the
  // data's, not the sketch's.
  const Embedding x17 = train_random_projection(c17, dim, 7);
  Embedding x18 = train_random_projection(c18, dim, 7);

  // Appendix C.2 protocol: align before compressing.
  const la::Matrix m17 = x17.to_matrix();
  x18 = Embedding::from_matrix(la::procrustes_align(m17, x18.to_matrix()));

  // Downstream consumer.
  tasks::SentimentTaskConfig sc;
  sc.train_size = 1200;
  sc.test_size = 600;
  const tasks::TextClassificationDataset ds =
      tasks::make_sentiment_task(space17, sc);
  const core::EisContext ctx =
      core::EisContext::build(m17, x18.to_matrix());

  std::cout << "Custom algorithm (random projection of PPMI) through the "
            << "stability workflow:\n\n";
  TextTable table({"bits", "bits/word", "instability %", "EIS", "1-kNN"});
  for (const int bits : {1, 2, 4, 8, 32}) {
    compress::QuantizeConfig qc;
    qc.bits = bits;
    const auto q17 = compress::uniform_quantize(x17, qc);
    qc.clip_override = q17.clip;
    const auto q18 = compress::uniform_quantize(x18, qc);

    model::LinearBowConfig mc;
    const model::LinearBowClassifier f17(q17.embedding, ds.train_sentences,
                                         ds.train_labels, mc);
    const model::LinearBowClassifier f18(q18.embedding, ds.train_sentences,
                                         ds.train_labels, mc);
    const double di = core::prediction_disagreement_pct(
        f17.predict_all(ds.test_sentences),
        f18.predict_all(ds.test_sentences));

    const la::Matrix a = q17.embedding.to_matrix();
    const la::Matrix b = q18.embedding.to_matrix();
    table.add_row({std::to_string(bits),
                   std::to_string(compress::bits_per_word(dim, bits)),
                   format_double(di, 1),
                   format_double(core::eigenspace_instability_of(a, b, ctx), 4),
                   format_double(1.0 - core::knn_measure(a, b, 5, 100), 3)});
  }
  table.print(std::cout);
  std::cout << "\nAny algorithm that produces an (n x d) matrix gets the "
            << "whole toolkit:\nmeasures, selection, and the "
            << "stability-memory analysis.\n";
  return 0;
}
