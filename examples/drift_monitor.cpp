// Drift monitor — the "frequent retraining" pain point of the paper's
// introduction, as an operational loop.
//
// A production embedding is retrained every month on an accumulated corpus
// that keeps drifting. Retraining downstream consumers to measure churn is
// expensive, so the monitor gates each candidate embedding on the
// *eigenspace instability measure* instead:
//
//   1. Calibrate once: on the first retrain, train the downstream model,
//      measure true prediction churn, and record the EIS reading.
//   2. Every later month, compute only EIS against the serving embedding
//      and extrapolate the churn from the calibrated ratio; flag the
//      candidate when the predicted churn crosses the SLA.
//   3. (For this demo we also train the downstream model each month to show
//      the prediction against the truth.)
//
// Build & run:  ./build/examples/drift_monitor
#include <iostream>

#include "core/instability.hpp"
#include "core/measures.hpp"
#include "embed/trainer.hpp"
#include "la/procrustes.hpp"
#include "model/linear_bow.hpp"
#include "tasks/sentiment.hpp"
#include "text/corpus.hpp"
#include "text/latent_space.hpp"
#include "util/table.hpp"

namespace {

constexpr double kChurnSlaPct = 12.0;  // max tolerated prediction churn

anchor::embed::Embedding train_on(const anchor::text::LatentSpace& space,
                                  std::size_t docs) {
  anchor::text::CorpusConfig cc;
  cc.num_documents = docs;
  cc.seed = 1;
  const anchor::text::Corpus corpus = anchor::text::generate_corpus(space, cc);
  anchor::embed::TrainOptions options;
  options.dim = 24;
  options.seed = 1;
  return anchor::embed::train_embedding(corpus, anchor::embed::Algo::kMc,
                                        options);
}

}  // namespace

int main() {
  using namespace anchor;

  // Serving embedding: trained at month 0.
  text::LatentSpaceConfig lsc;
  lsc.vocab_size = 400;
  text::LatentSpace space(lsc);
  const std::size_t base_docs = 600;
  const embed::Embedding serving = train_on(space, base_docs);
  const la::Matrix serving_m = serving.to_matrix();

  // The downstream consumer (a sentiment product).
  tasks::SentimentTaskConfig sc;
  sc.name = "product-sentiment";
  sc.train_size = 1200;
  sc.test_size = 600;
  const tasks::TextClassificationDataset ds =
      tasks::make_sentiment_task(space, sc);
  model::LinearBowConfig mc;
  const model::LinearBowClassifier serving_model(
      serving, ds.train_sentences, ds.train_labels, mc);
  const auto serving_preds = serving_model.predict_all(ds.test_sentences);

  const core::EisContext ctx = core::EisContext::build(serving_m, serving_m);

  std::cout << "Drift monitor: gating monthly retrains on EIS "
            << "(churn SLA = " << kChurnSlaPct << "%)\n\n";
  TextTable table({"month", "cum.drift", "EIS", "predicted churn%",
                   "true churn%", "gate"});

  double calibration_ratio = 0.0;  // true churn / EIS, learned at month 1
  for (int month = 1; month <= 6; ++month) {
    // Accumulated drift + accumulated data, as in real corpus growth.
    space = space.drifted(0.05, 100 + static_cast<std::uint64_t>(month),
                          0.02);
    const std::size_t docs =
        base_docs + static_cast<std::size_t>(month) * 12;
    embed::Embedding candidate = train_on(space, docs);

    // Align the candidate to the serving embedding before comparing
    // (Appendix C.2 protocol).
    candidate = embed::Embedding::from_matrix(
        la::procrustes_align(serving_m, candidate.to_matrix()));

    const double eis = core::eigenspace_instability_of(
        serving_m, candidate.to_matrix(), ctx);

    const model::LinearBowClassifier candidate_model(
        candidate, ds.train_sentences, ds.train_labels, mc);
    const double true_churn = core::prediction_disagreement_pct(
        serving_preds, candidate_model.predict_all(ds.test_sentences));

    if (month == 1) calibration_ratio = true_churn / std::max(eis, 1e-12);
    const double predicted = eis * calibration_ratio;
    const bool blocked = predicted > kChurnSlaPct;

    table.add_row({std::to_string(month),
                   format_double(0.05 * month, 2),
                   format_double(eis, 4),
                   month == 1 ? "(calibrating)" : format_double(predicted, 1),
                   format_double(true_churn, 1),
                   blocked ? "BLOCK" : "ship"});
  }
  table.print(std::cout);
  std::cout << "\nThe monitor trains ZERO downstream models after month 1 in "
            << "production;\nthe true-churn column above exists only to show "
            << "the gate tracks reality.\n";
  return 0;
}
