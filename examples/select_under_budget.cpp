// Selecting dimension–precision parameters under a memory budget (§4.2) —
// the paper's practical payoff. Given a bits/word budget, we enumerate the
// (dimension, precision) combinations that fit, score each candidate pair
// of embeddings with the eigenspace instability measure, and pick the
// predicted-most-stable one — without training any downstream model. We
// then train the downstream models anyway to show the pick was good.
//
// Build & run:  ./build/examples/select_under_budget
#include <iostream>

#include "core/selection.hpp"
#include "pipeline/pipeline.hpp"
#include "util/table.hpp"

int main() {
  using namespace anchor;
  using pipeline::Pipeline;

  pipeline::PipelineConfig config;  // bench-scale defaults
  config.dims = {8, 16, 32, 64};
  config.precisions = {1, 2, 4, 8, 16, 32};
  config.seeds = {1};
  config.reference_dim = 64;
  Pipeline pipe(config, "anchor-cache");

  const embed::Algo algo = embed::Algo::kCbow;
  const std::size_t budget_bits_per_word = 64;

  std::cout << "Memory budget: " << budget_bits_per_word << " bits/word\n"
            << "Candidates and their eigenspace instability measure:\n\n";
  TextTable table({"dim", "bits", "EIS (lower = stabler)",
                   "actual SST-2 disagreement %"});

  double best_eis = 1e300;
  std::size_t best_dim = 0;
  int best_bits = 0;
  double best_di = 0.0, oracle_di = 1e300;
  for (const std::size_t dim : config.dims) {
    for (const int bits : config.precisions) {
      if (dim * static_cast<std::size_t>(bits) != budget_bits_per_word) {
        continue;
      }
      const double eis = pipe.measures(algo, dim, bits, 1)[0];
      // Ground truth (the selection itself never needs this):
      const double di = pipe.downstream_instability("sst2", algo, dim, bits, 1);
      table.add_row({std::to_string(dim), std::to_string(bits),
                     format_double(eis, 4), format_double(di, 2)});
      if (eis < best_eis) {
        best_eis = eis;
        best_dim = dim;
        best_bits = bits;
        best_di = di;
      }
      oracle_di = std::min(oracle_di, di);
    }
  }
  table.print(std::cout);

  std::cout << "\nEIS selects d=" << best_dim << ", b=" << best_bits
            << " → downstream instability " << format_double(best_di, 2)
            << "% (oracle: " << format_double(oracle_di, 2) << "%, gap "
            << format_double(best_di - oracle_di, 2) << "%)\n";
  return 0;
}
