// Compression-method tradeoffs on one embedding pair: uniform quantization
// (the paper's choice), scalar k-means (Andrews, 2016), and product
// quantization, compared on reconstruction distortion, bits per word,
// downstream accuracy, and downstream *instability*.
//
// Takeaway mirroring §2.3: the fancier compressors buy distortion, not a
// materially different stability picture — which is why the paper (and this
// library's pipeline) standardize on uniform quantization.
//
// Build & run:  ./build/examples/compression_tradeoffs
#include <iostream>

#include "compress/kmeans.hpp"
#include "compress/pq.hpp"
#include "compress/quantize.hpp"
#include "core/instability.hpp"
#include "model/linear_bow.hpp"
#include "pipeline/pipeline.hpp"
#include "util/table.hpp"

namespace {

using anchor::embed::Embedding;

double distortion(const Embedding& original, const Embedding& compressed) {
  double acc = 0.0;
  for (std::size_t i = 0; i < original.data.size(); ++i) {
    const double d =
        static_cast<double>(original.data[i]) - compressed.data[i];
    acc += d * d;
  }
  return acc / static_cast<double>(original.data.size());
}

}  // namespace

int main() {
  using namespace anchor;
  using pipeline::Pipeline;

  pipeline::PipelineConfig config;
  Pipeline pipe(config, "anchor-cache");
  const std::size_t dim = 32;
  const auto [x17, x18] = pipe.aligned_pair(embed::Algo::kCbow, dim, 1);
  const auto& ds = pipe.sentiment_dataset("sst2");

  const auto evaluate = [&](const Embedding& c17, const Embedding& c18) {
    model::LinearBowConfig mc;
    const model::LinearBowClassifier m17(c17, ds.train_sentences,
                                         ds.train_labels, mc);
    const model::LinearBowClassifier m18(c18, ds.train_sentences,
                                         ds.train_labels, mc);
    const auto p17 = m17.predict_all(ds.test_sentences);
    const auto p18 = m18.predict_all(ds.test_sentences);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < p17.size(); ++i) {
      correct += p17[i] == ds.test_labels[i] ? 1 : 0;
    }
    return std::pair{core::prediction_disagreement_pct(p17, p18),
                     100.0 * static_cast<double>(correct) /
                         static_cast<double>(p17.size())};
  };

  std::cout << "Compression-method tradeoffs (CBOW dim=" << dim
            << ", 2 bits/entry budget, shared codebooks per §C.2):\n\n";
  TextTable table({"method", "bits/word", "distortion (MSE)",
                   "accuracy'17 %", "instability %"});

  const int bits = 2;

  // Uniform quantization, shared clip threshold.
  compress::QuantizeConfig qc;
  qc.bits = bits;
  const auto u17 = compress::uniform_quantize(x17, qc);
  qc.clip_override = u17.clip;
  const auto u18 = compress::uniform_quantize(x18, qc);
  {
    const auto [di, acc] = evaluate(u17.embedding, u18.embedding);
    table.add_row({"uniform", std::to_string(dim * bits),
                   format_double(distortion(x17, u17.embedding), 5),
                   format_double(acc, 1), format_double(di, 1)});
  }

  // Scalar k-means, shared codebook.
  compress::KmeansConfig kc;
  kc.bits = bits;
  const auto k17 = compress::kmeans_quantize(x17, kc);
  kc.codebook_override = k17.codebook;
  const auto k18 = compress::kmeans_quantize(x18, kc);
  {
    const auto [di, acc] = evaluate(k17.embedding, k18.embedding);
    table.add_row({"k-means", std::to_string(dim * bits),
                   format_double(k17.distortion, 5), format_double(acc, 1),
                   format_double(di, 1)});
  }

  // Product quantization at the same bits/word: 8 sub-vectors × 8-bit codes
  // = 64 bits/word = dim·2.
  compress::PqConfig pc;
  pc.num_subvectors = 8;
  pc.bits = 8;
  const auto q17 = compress::pq_quantize(x17, pc);
  pc.codebooks_override = q17.codebooks;
  const auto q18 = compress::pq_quantize(x18, pc);
  {
    const auto [di, acc] = evaluate(q17.embedding, q18.embedding);
    table.add_row({"product quant.",
                   std::to_string(q17.bits_per_word()),
                   format_double(q17.distortion, 5), format_double(acc, 1),
                   format_double(di, 1)});
  }

  table.print(std::cout);
  std::cout << "\nLower distortion from the learned codebooks, comparable "
            << "stability —\nthe paper's simple-compressor choice (§2.3) "
            << "is the right default here too.\n";
  return 0;
}
